//! The NP receiver — a sans-io state machine.
//!
//! Feed it every message seen on the multicast group via
//! [`NpReceiver::handle`], call [`NpReceiver::on_timer`] whenever
//! [`NpReceiver::next_deadline`] passes, and perform the
//! [`ReceiverAction`]s it returns (send a message, observe a decoded
//! group, observe completion). `now` is any monotonic clock in seconds.
//!
//! The receiver stores data and parity packets of each group until `k`
//! have arrived ([`pm_rse::GroupDecoder`]), reconstructs, and answers
//! sender polls through slotting-and-damping NAK suppression
//! ([`pm_net::NakSuppressor`]): `NAK(i, l)` with `l` the number of packets
//! still missing — per-group feedback rather than per-packet, one of NP's
//! two key reductions over N2.

use std::collections::BTreeMap;

use bytes::Bytes;

use pm_net::suppression::NakSuppressor;
use pm_net::Message;
use pm_obs::{Event, Histogram, Obs, Role};
use pm_rse::{CacheStats, CodeSpec, GroupDecoder, InsertOutcome, RseDecoder};

use crate::costs::CostCounters;
use crate::error::ProtocolError;
use crate::session::SessionPlan;

/// What the caller must do after feeding the receiver an event.
#[derive(Debug, Clone, PartialEq)]
pub enum ReceiverAction {
    /// Multicast this message.
    Send(Message),
    /// Group `group` has just been fully decoded.
    GroupDecoded {
        /// The decoded transmission group.
        group: u32,
    },
    /// Every group of the session is decoded; [`NpReceiver::take_data`]
    /// yields the byte stream. Emitted exactly once.
    Complete,
}

/// Per-group reception state.
enum GroupState {
    /// Still collecting packets.
    Collecting(GroupDecoder),
    /// Decoded; further packets are unneeded receptions.
    Decoded,
}

/// NP receiver state machine.
pub struct NpReceiver {
    id: u32,
    session: u32,
    plan: Option<SessionPlan>,
    groups: BTreeMap<u32, GroupState>,
    decoded: BTreeMap<u32, Vec<Bytes>>,
    decoders: BTreeMap<(u16, u16), RseDecoder>,
    suppressor: NakSuppressor,
    /// Last poll round seen per group (recovery NAKs echo it).
    poll_rounds: BTreeMap<u32, u16>,
    /// Highest group id observed in a packet or poll (groups beyond it
    /// have presumably not been transmitted yet).
    max_group_seen: Option<u32>,
    /// Announces heard since the last packet/poll (>= 2 means the sender
    /// is idle and everything has been transmitted at least once).
    quiet_announces: u32,
    /// A poll has been seen: the sender runs a feedback protocol (NP).
    /// Feedback-free senders (the carousel) never poll, and receivers must
    /// then stay silent rather than NAK into the void.
    saw_poll: bool,
    counters: CostCounters,
    complete_emitted: bool,
    fin_seen: bool,
    obs: Obs,
    /// Histogram wired into lazily-created decoders (nanoseconds/decode).
    decode_timer: Option<Histogram>,
}

impl NpReceiver {
    /// A receiver with identity `id` joining session `session`.
    /// `nak_slot` is the suppression slot width `Ts` (seconds); `seed`
    /// randomises the intra-slot jitter.
    ///
    /// # Panics
    /// Panics unless `nak_slot > 0`.
    pub fn new(id: u32, session: u32, nak_slot: f64, seed: u64) -> Self {
        NpReceiver {
            id,
            session,
            plan: None,
            groups: BTreeMap::new(),
            decoded: BTreeMap::new(),
            decoders: BTreeMap::new(),
            suppressor: NakSuppressor::new(nak_slot, seed ^ (id as u64) << 17),
            poll_rounds: BTreeMap::new(),
            max_group_seen: None,
            quiet_announces: 0,
            saw_poll: false,
            counters: CostCounters::default(),
            complete_emitted: false,
            fin_seen: false,
            obs: Obs::null(),
            decode_timer: None,
        }
    }

    /// Emit structured events to `obs` (a `session_start` marks the
    /// attachment point). The NAK suppressor shares the recorder, so
    /// `nak_scheduled`/`nak_suppressed` land in the same trace.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.suppressor.set_obs(obs.clone());
        self.obs = obs;
        self.obs.emit(0.0, || Event::SessionStart {
            role: Role::Receiver,
            session: self.session,
            groups: 0,
            bytes: 0,
        });
        self
    }

    /// Record per-call decode latency into `hist` (applies to decoders
    /// created from here on — call before traffic arrives).
    pub fn set_decode_timer(&mut self, hist: Histogram) {
        self.decode_timer = Some(hist);
    }

    /// Aggregated inverse-cache hit/miss counts across this receiver's
    /// decoders.
    pub fn decode_cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for dec in self.decoders.values() {
            let s = dec.cache_stats();
            total.hits += s.hits;
            total.misses += s.misses;
        }
        total
    }

    /// The receiver's identity.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Session plan, once learned from an announce.
    pub fn plan(&self) -> Option<&SessionPlan> {
        self.plan.as_ref()
    }

    /// Processing counters so far.
    pub fn counters(&self) -> &CostCounters {
        &self.counters
    }

    /// True once every group is decoded (requires a plan).
    pub fn is_complete(&self) -> bool {
        match &self.plan {
            Some(p) => self.decoded.len() as u64 == p.groups as u64,
            None => false,
        }
    }

    /// True if the sender has closed the session.
    pub fn fin_seen(&self) -> bool {
        self.fin_seen
    }

    /// Groups decoded so far.
    pub fn groups_decoded(&self) -> usize {
        self.decoded.len()
    }

    /// Earliest NAK deadline, if any.
    pub fn next_deadline(&self) -> Option<f64> {
        self.suppressor.next_deadline()
    }

    /// Reassemble and return the transfer once complete.
    ///
    /// # Errors
    /// [`ProtocolError::Inconsistent`] if called before completion.
    pub fn take_data(&self) -> Result<Vec<u8>, ProtocolError> {
        let plan = self
            .plan
            .as_ref()
            .ok_or_else(|| ProtocolError::Inconsistent("no session plan yet".into()))?;
        plan.reassemble(&self.decoded)
    }

    fn decoder_for(&mut self, spec: CodeSpec) -> Result<&RseDecoder, ProtocolError> {
        let key = (spec.k() as u16, spec.n() as u16);
        if let std::collections::btree_map::Entry::Vacant(e) = self.decoders.entry(key) {
            let mut dec = RseDecoder::new(spec)?;
            if let Some(hist) = &self.decode_timer {
                dec.set_timer(hist.clone());
            }
            e.insert(dec);
        }
        Ok(&self.decoders[&key])
    }

    fn completion_actions(&mut self, actions: &mut Vec<ReceiverAction>, now: f64) {
        if self.is_complete() && !self.complete_emitted {
            self.complete_emitted = true;
            self.counters.feedback_sent += 1;
            self.obs.emit(now, || Event::DoneSent {
                session: self.session,
                receiver: self.id,
            });
            self.obs.emit(now, || Event::TransferComplete {
                session: self.session,
                groups: self.plan.map(|p| p.groups).unwrap_or(0),
            });
            actions.push(ReceiverAction::Send(Message::Done {
                session: self.session,
                receiver: self.id,
            }));
            actions.push(ReceiverAction::Complete);
        }
    }

    /// Feed one received message.
    ///
    /// # Errors
    /// [`ProtocolError`] on geometry conflicts (a corrupted or hostile
    /// stream); the session should be abandoned.
    pub fn handle(
        &mut self,
        msg: &Message,
        now: f64,
    ) -> Result<Vec<ReceiverAction>, ProtocolError> {
        if msg.session() != self.session {
            return Ok(Vec::new());
        }
        let mut actions = Vec::new();
        match msg {
            Message::Packet {
                group,
                index,
                k,
                n,
                payload,
                ..
            } => {
                self.counters.packets_received += 1;
                self.obs.emit(now, || {
                    if index < k {
                        Event::DataRecv {
                            session: self.session,
                            group: *group,
                            index: *index,
                        }
                    } else {
                        Event::ParityRecv {
                            session: self.session,
                            group: *group,
                            index: *index,
                        }
                    }
                });
                self.max_group_seen = Some(self.max_group_seen.unwrap_or(0).max(*group));
                self.quiet_announces = 0;
                // First packet of a group defines its geometry; the
                // CodeSpec constructor revalidates what the wire allowed.
                if !self.groups.contains_key(group) {
                    let state = match CodeSpec::new(*k as usize, (*n - *k) as usize) {
                        Ok(spec) => GroupState::Collecting(GroupDecoder::new(spec)),
                        Err(e) => return Err(e.into()),
                    };
                    self.groups.insert(*group, state);
                }
                let decodable = match self.groups.get_mut(group).expect("inserted above") {
                    GroupState::Decoded => {
                        self.counters.unneeded_receptions += 1;
                        false
                    }
                    GroupState::Collecting(gd) => {
                        if gd.spec().k() != *k as usize || gd.spec().n() != *n as usize {
                            return Err(ProtocolError::Inconsistent(format!(
                                "group {group} geometry changed: ({k},{n}) vs ({},{})",
                                gd.spec().k(),
                                gd.spec().n()
                            )));
                        }
                        match gd.insert(*index as usize, payload.clone())? {
                            InsertOutcome::Decodable => true,
                            InsertOutcome::Duplicate | InsertOutcome::Unneeded => {
                                self.counters.unneeded_receptions += 1;
                                false
                            }
                            InsertOutcome::Stored => false,
                        }
                    }
                };
                if decodable {
                    let gd = match self.groups.insert(*group, GroupState::Decoded) {
                        Some(GroupState::Collecting(gd)) => gd,
                        _ => unreachable!("checked Collecting above"),
                    };
                    let spec = *gd.spec();
                    let missing = gd.missing_data().len() as u64;
                    let (packets, cache_delta) = {
                        let decoder = self.decoder_for(spec)?;
                        let before = decoder.cache_stats();
                        let packets = gd.reconstruct(decoder)?;
                        let after = decoder.cache_stats();
                        (
                            packets,
                            CacheStats {
                                hits: after.hits - before.hits,
                                misses: after.misses - before.misses,
                            },
                        )
                    };
                    for _ in 0..cache_delta.hits {
                        self.obs.emit(now, || Event::DecodeCacheHit {
                            k: spec.k() as u16,
                            n: spec.n() as u16,
                        });
                    }
                    for _ in 0..cache_delta.misses {
                        self.obs.emit(now, || Event::DecodeCacheMiss {
                            k: spec.k() as u16,
                            n: spec.n() as u16,
                        });
                    }
                    self.counters.packets_decoded += missing;
                    self.counters.unneeded_receptions += gd.unneeded_receptions();
                    self.decoded.insert(*group, packets);
                    self.suppressor.cancel(*group);
                    self.obs.emit(now, || Event::GroupDecoded {
                        session: self.session,
                        group: *group,
                        recovered: missing,
                    });
                    actions.push(ReceiverAction::GroupDecoded { group: *group });
                    self.completion_actions(&mut actions, now);
                }
            }
            Message::Poll {
                group, sent, round, ..
            } => {
                self.counters.feedback_received += 1;
                self.obs.emit(now, || Event::PollRecv {
                    session: self.session,
                    group: *group,
                    sent: *sent,
                    round: *round,
                });
                self.max_group_seen = Some(self.max_group_seen.unwrap_or(0).max(*group));
                self.quiet_announces = 0;
                self.saw_poll = true;
                if self.complete_emitted {
                    // Our Done may have been lost; remind the sender.
                    self.counters.feedback_sent += 1;
                    self.obs.emit(now, || Event::DoneSent {
                        session: self.session,
                        receiver: self.id,
                    });
                    actions.push(ReceiverAction::Send(Message::Done {
                        session: self.session,
                        receiver: self.id,
                    }));
                } else {
                    let needed = match self.groups.get(group) {
                        Some(GroupState::Decoded) => 0,
                        Some(GroupState::Collecting(gd)) => gd.needed() as u16,
                        // Whole round lost: we need everything that was
                        // sent (we cannot know more without the geometry).
                        None => *sent,
                    };
                    self.counters.timers += 1; // scheduling / clearing a timer
                    self.poll_rounds.insert(*group, *round);
                    self.suppressor.on_poll(*group, *round, *sent, needed, now);
                }
            }
            Message::Nak { group, needed, .. } => {
                // Overheard another receiver's NAK: damping.
                self.counters.feedback_received += 1;
                let before = self.suppressor.pending_count();
                self.suppressor.on_nak_heard(*group, *needed);
                if self.suppressor.pending_count() < before {
                    self.counters.feedback_suppressed += 1;
                }
            }
            Message::Announce { .. } => {
                let plan = SessionPlan::from_announce(msg)?;
                match &self.plan {
                    Some(existing) if *existing != plan => {
                        return Err(ProtocolError::Inconsistent(
                            "announce contradicts the known session plan".into(),
                        ));
                    }
                    Some(_) => {}
                    None => self.plan = Some(plan),
                }
                let was_complete = self.complete_emitted;
                self.completion_actions(&mut actions, now);
                if was_complete {
                    // A keep-alive announce after we finished means the
                    // sender is still waiting on someone — possibly us,
                    // if our Done was lost or corrupted. Remind it.
                    self.counters.feedback_sent += 1;
                    self.obs.emit(now, || Event::DoneSent {
                        session: self.session,
                        receiver: self.id,
                    });
                    actions.push(ReceiverAction::Send(Message::Done {
                        session: self.session,
                        receiver: self.id,
                    }));
                }
                // An announce while we are incomplete doubles as a
                // recovery heartbeat: if a whole repair round (parities +
                // poll) was lost, nothing else would ever re-solicit our
                // feedback. Schedule slot-0 NAKs for groups still missing
                // packets; normal damping applies if other receivers
                // answer first. Two gates stop premature demand: groups
                // beyond the highest one seen have probably not been sent
                // yet, unless repeated quiet announces show the sender is
                // idle with nothing left to transmit.
                self.quiet_announces += 1;
                // Recovery NAKs only make sense toward a feedback-driven
                // sender: either we have seen a poll (NP), or the sender
                // has gone idle-announcing (so it is waiting on us).
                let feedback_driven = self.saw_poll || self.quiet_announces >= 2;
                if !self.complete_emitted && feedback_driven {
                    if let Some(plan) = self.plan {
                        for g in 0..plan.groups {
                            let transmitted = self.max_group_seen.is_some_and(|m| g <= m);
                            if !transmitted && self.quiet_announces < 2 {
                                continue;
                            }
                            if self.suppressor.is_pending(g) {
                                continue;
                            }
                            let needed = match self.groups.get(&g) {
                                Some(GroupState::Decoded) => 0,
                                Some(GroupState::Collecting(gd)) => gd.needed() as u16,
                                None => plan.group_k(g) as u16,
                            };
                            if needed == 0 {
                                continue;
                            }
                            let round = self.poll_rounds.get(&g).copied().unwrap_or(1);
                            self.counters.timers += 1;
                            self.suppressor.on_poll(g, round, needed, needed, now);
                        }
                    }
                }
            }
            Message::Fin { .. } => {
                self.obs.emit(now, || Event::FinRecv {
                    session: self.session,
                });
                self.fin_seen = true;
            }
            // Another receiver finishing, an N2 NAK, or an (unexpected
            // here) raw FEC-layer frame: not ours to act on.
            Message::Done { .. } | Message::NakPacket { .. } | Message::FecFrame { .. } => {}
        }
        Ok(actions)
    }

    /// Fire due NAK timers.
    pub fn on_timer(&mut self, now: f64) -> Vec<ReceiverAction> {
        let mut actions = Vec::new();
        for due in self.suppressor.take_due(now) {
            self.counters.feedback_sent += 1;
            self.counters.timers += 1;
            self.obs.emit(now, || Event::NakSent {
                session: self.session,
                group: due.group,
                needed: due.needed,
                round: due.round,
            });
            actions.push(ReceiverAction::Send(Message::Nak {
                session: self.session,
                group: due.group,
                needed: due.needed,
                round: due.round,
            }));
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_rse::RseEncoder;

    const SESSION: u32 = 11;

    /// Packets of one transmission group (data or parities).
    type Groups = Vec<Vec<Bytes>>;

    /// Build plan + packets + parities for a tiny transfer.
    fn setup(bytes: usize, k: usize, h: usize) -> (SessionPlan, Vec<u8>, Groups, Groups) {
        let data: Vec<u8> = (0..bytes).map(|i| (i % 251) as u8).collect();
        let plan = SessionPlan::new(SESSION, bytes as u64, k, h, 16).unwrap();
        let groups = plan.split(&data);
        let parities: Vec<Vec<Bytes>> = groups
            .iter()
            .map(|g| {
                let spec = CodeSpec::new(g.len(), h).unwrap();
                let enc = RseEncoder::new(spec).unwrap();
                enc.encode_all(g)
                    .unwrap()
                    .into_iter()
                    .map(Bytes::from)
                    .collect()
            })
            .collect();
        (plan, data, groups, parities)
    }

    fn packet(plan: &SessionPlan, group: u32, index: usize, payload: Bytes) -> Message {
        let gk = plan.group_k(group) as u16;
        Message::Packet {
            session: SESSION,
            group,
            index: index as u16,
            k: gk,
            n: gk + plan.h,
            payload,
        }
    }

    #[test]
    fn clean_reception_decodes_and_completes() {
        let (plan, data, groups, _) = setup(100, 3, 2);
        let mut rx = NpReceiver::new(1, SESSION, 0.01, 1);
        rx.handle(&plan.announce(), 0.0).unwrap();
        let mut completed = false;
        for (g, packets) in groups.iter().enumerate() {
            for (i, p) in packets.iter().enumerate() {
                let actions = rx
                    .handle(&packet(&plan, g as u32, i, p.clone()), 0.0)
                    .unwrap();
                completed |= actions
                    .iter()
                    .any(|a| matches!(a, ReceiverAction::Complete));
            }
        }
        assert!(completed);
        assert!(rx.is_complete());
        assert_eq!(rx.take_data().unwrap(), data);
        assert_eq!(rx.counters().packets_decoded, 0, "systematic fast path");
    }

    #[test]
    fn parity_repairs_loss() {
        let (plan, data, groups, parities) = setup(48, 3, 2);
        let mut rx = NpReceiver::new(1, SESSION, 0.01, 2);
        rx.handle(&plan.announce(), 0.0).unwrap();
        // Group 0: lose packet 1, deliver parity 0 instead.
        rx.handle(&packet(&plan, 0, 0, groups[0][0].clone()), 0.0)
            .unwrap();
        rx.handle(&packet(&plan, 0, 2, groups[0][2].clone()), 0.0)
            .unwrap();
        let actions = rx
            .handle(&packet(&plan, 0, 3, parities[0][0].clone()), 0.0)
            .unwrap();
        assert!(actions
            .iter()
            .any(|a| matches!(a, ReceiverAction::GroupDecoded { group: 0 })));
        assert!(rx.is_complete());
        assert_eq!(rx.take_data().unwrap(), data);
        assert_eq!(rx.counters().packets_decoded, 1);
    }

    #[test]
    fn poll_schedules_nak_and_decode_cancels() {
        let (plan, _, groups, _) = setup(48, 3, 2);
        let mut rx = NpReceiver::new(1, SESSION, 0.01, 3);
        rx.handle(&packet(&plan, 0, 0, groups[0][0].clone()), 0.0)
            .unwrap();
        // Poll after round 1 (3 packets sent); we still need 2.
        let poll = Message::Poll {
            session: SESSION,
            group: 0,
            sent: 3,
            round: 1,
        };
        rx.handle(&poll, 0.0).unwrap();
        let deadline = rx.next_deadline().expect("NAK scheduled");
        // Needed 2 of 3 => slot index 1.
        assert!(
            (0.01..0.02 + 1e-9).contains(&deadline),
            "deadline {deadline}"
        );
        // The NAK fires with l = 2.
        let actions = rx.on_timer(deadline);
        assert_eq!(
            actions,
            vec![ReceiverAction::Send(Message::Nak {
                session: SESSION,
                group: 0,
                needed: 2,
                round: 1
            })]
        );
        // A later decode must clear any rescheduled state.
        rx.handle(&poll, 1.0).unwrap();
        assert!(rx.next_deadline().is_some());
        rx.handle(&packet(&plan, 0, 1, groups[0][1].clone()), 1.0)
            .unwrap();
        rx.handle(&packet(&plan, 0, 2, groups[0][2].clone()), 1.0)
            .unwrap();
        assert!(
            rx.next_deadline().is_none(),
            "decode cancels the pending NAK"
        );
    }

    #[test]
    fn unknown_group_poll_naks_for_everything() {
        let mut rx = NpReceiver::new(1, SESSION, 0.01, 4);
        let poll = Message::Poll {
            session: SESSION,
            group: 5,
            sent: 7,
            round: 1,
        };
        rx.handle(&poll, 0.0).unwrap();
        let actions = rx.on_timer(10.0);
        assert_eq!(
            actions,
            vec![ReceiverAction::Send(Message::Nak {
                session: SESSION,
                group: 5,
                needed: 7,
                round: 1
            })]
        );
    }

    #[test]
    fn overheard_nak_suppresses() {
        let (plan, _, groups, _) = setup(48, 3, 2);
        let mut rx = NpReceiver::new(1, SESSION, 0.01, 5);
        rx.handle(&packet(&plan, 0, 0, groups[0][0].clone()), 0.0)
            .unwrap();
        rx.handle(
            &Message::Poll {
                session: SESSION,
                group: 0,
                sent: 3,
                round: 1,
            },
            0.0,
        )
        .unwrap();
        assert!(rx.next_deadline().is_some());
        // Another receiver NAKs for >= our need: ours is damped.
        rx.handle(
            &Message::Nak {
                session: SESSION,
                group: 0,
                needed: 3,
                round: 1,
            },
            0.001,
        )
        .unwrap();
        assert!(rx.next_deadline().is_none());
        assert_eq!(rx.counters().feedback_suppressed, 1);
    }

    #[test]
    fn done_resent_on_poll_after_completion() {
        let (plan, _, groups, _) = setup(32, 2, 1);
        let mut rx = NpReceiver::new(9, SESSION, 0.01, 6);
        rx.handle(&plan.announce(), 0.0).unwrap();
        for (g, packets) in groups.iter().enumerate() {
            for (i, p) in packets.iter().enumerate() {
                rx.handle(&packet(&plan, g as u32, i, p.clone()), 0.0)
                    .unwrap();
            }
        }
        assert!(rx.is_complete());
        let actions = rx
            .handle(
                &Message::Poll {
                    session: SESSION,
                    group: 0,
                    sent: 2,
                    round: 2,
                },
                1.0,
            )
            .unwrap();
        assert_eq!(
            actions,
            vec![ReceiverAction::Send(Message::Done {
                session: SESSION,
                receiver: 9
            })]
        );
    }

    #[test]
    fn done_resent_on_announce_after_completion() {
        let (plan, _, groups, _) = setup(32, 2, 1);
        let mut rx = NpReceiver::new(4, SESSION, 0.01, 13);
        rx.handle(&plan.announce(), 0.0).unwrap();
        for (g, packets) in groups.iter().enumerate() {
            for (i, p) in packets.iter().enumerate() {
                rx.handle(&packet(&plan, g as u32, i, p.clone()), 0.0)
                    .unwrap();
            }
        }
        assert!(rx.is_complete());
        // A keep-alive announce after completion re-solicits our Done
        // (the first one may have been lost or corrupted in flight).
        let actions = rx.handle(&plan.announce(), 5.0).unwrap();
        assert_eq!(
            actions,
            vec![ReceiverAction::Send(Message::Done {
                session: SESSION,
                receiver: 4
            })]
        );
    }

    #[test]
    fn foreign_session_ignored() {
        let mut rx = NpReceiver::new(1, SESSION, 0.01, 7);
        let foreign = Message::Poll {
            session: SESSION + 1,
            group: 0,
            sent: 3,
            round: 1,
        };
        assert!(rx.handle(&foreign, 0.0).unwrap().is_empty());
        assert_eq!(rx.counters().feedback_received, 0);
    }

    #[test]
    fn geometry_conflicts_detected() {
        let (plan, _, groups, _) = setup(48, 3, 2);
        let mut rx = NpReceiver::new(1, SESSION, 0.01, 8);
        rx.handle(&packet(&plan, 0, 0, groups[0][0].clone()), 0.0)
            .unwrap();
        // Same group, different (k, n).
        let bad = Message::Packet {
            session: SESSION,
            group: 0,
            index: 1,
            k: 4,
            n: 6,
            payload: groups[0][1].clone(),
        };
        assert!(matches!(
            rx.handle(&bad, 0.0),
            Err(ProtocolError::Inconsistent(_))
        ));
        // Conflicting announce.
        let mut rx = NpReceiver::new(1, SESSION, 0.01, 9);
        rx.handle(&plan.announce(), 0.0).unwrap();
        let other = SessionPlan::new(SESSION, 999, 4, 1, 32).unwrap();
        assert!(matches!(
            rx.handle(&other.announce(), 0.0),
            Err(ProtocolError::Inconsistent(_))
        ));
    }

    #[test]
    fn empty_session_completes_on_announce() {
        let plan = SessionPlan::new(SESSION, 0, 3, 2, 16).unwrap();
        let mut rx = NpReceiver::new(1, SESSION, 0.01, 10);
        let actions = rx.handle(&plan.announce(), 0.0).unwrap();
        assert!(actions
            .iter()
            .any(|a| matches!(a, ReceiverAction::Complete)));
        assert_eq!(rx.take_data().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn fin_recorded() {
        let mut rx = NpReceiver::new(1, SESSION, 0.01, 11);
        assert!(!rx.fin_seen());
        rx.handle(&Message::Fin { session: SESSION }, 0.0).unwrap();
        assert!(rx.fin_seen());
    }

    #[test]
    fn unneeded_receptions_counted() {
        let (plan, _, groups, parities) = setup(48, 3, 2);
        let mut rx = NpReceiver::new(1, SESSION, 0.01, 12);
        rx.handle(&plan.announce(), 0.0).unwrap();
        for (i, p) in groups[0].iter().enumerate() {
            rx.handle(&packet(&plan, 0, i, p.clone()), 0.0).unwrap();
        }
        // A parity arriving after decode is an unnecessary reception.
        rx.handle(&packet(&plan, 0, 3, parities[0][0].clone()), 0.0)
            .unwrap();
        assert_eq!(rx.counters().unneeded_receptions, 1);
    }
}
