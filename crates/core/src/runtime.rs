//! Wall-clock drivers: run a sans-io machine over a [`pm_net::Transport`].
//!
//! The drivers are deliberately simple single-threaded loops — structured
//! concurrency at the application level means one thread per endpoint,
//! joined by the caller (see the `file_multicast` example). The machines
//! never block; all waiting happens in `recv_timeout`.

use std::time::{Duration, Instant};

use pm_net::{Message, NetError, Transport};
use pm_obs::{Event, Obs, Outcome, Role};

use crate::costs::CostCounters;
use crate::error::ProtocolError;
use crate::n2::{N2Receiver, N2Sender};
use crate::receiver::{NpReceiver, ReceiverAction};
use crate::sender::{NpSender, SenderStep};
pub use crate::session::SessionReport;

/// Timing knobs of the drivers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Pacing between consecutive packet transmissions (the paper's
    /// `delta`).
    pub packet_spacing: Duration,
    /// Abort if the session makes no progress for this long.
    pub stall_timeout: Duration,
    /// How long a *complete* receiver lingers answering polls before
    /// concluding the sender's FIN was lost and returning anyway. Should
    /// exceed a few announce intervals; much shorter than `stall_timeout`.
    pub complete_linger: Duration,
    /// Hostile-network posture: corruption tolerance, send retries and
    /// receiver eviction.
    pub resilience: ResiliencePolicy,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            packet_spacing: Duration::from_micros(200),
            stall_timeout: Duration::from_secs(10),
            complete_linger: Duration::from_millis(500),
            resilience: ResiliencePolicy::default(),
        }
    }
}

/// Hostile-network posture of the drivers: how much datagram damage to
/// absorb, how hard to retry transient send failures, and when the sender
/// gives up on silent receivers.
///
/// The defaults absorb corruption essentially forever, retry sends a few
/// times, and never evict — byte damage alone cannot abort a session.
/// Eviction is opt-in because it trades completeness for liveness: with a
/// deadline set, a session facing a dead receiver finishes *degraded*
/// (see [`SessionReport::is_degraded`]) instead of stalling out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResiliencePolicy {
    /// Corrupt/undecodable datagrams tolerated — counted, reported and
    /// dropped — before the driver aborts with
    /// [`ProtocolError::Quarantined`].
    pub corrupt_quarantine: u64,
    /// Transient I/O send failures retried per message before the error
    /// becomes fatal.
    pub send_retries: u32,
    /// Backoff before the first send retry; doubles per attempt.
    pub retry_backoff: Duration,
    /// Upper bound on the per-attempt backoff.
    pub retry_backoff_cap: Duration,
    /// Sender only: once at least one receiver finished and *nothing* has
    /// been heard for this long, evict the receivers still outstanding and
    /// complete the session for the responsive population. `None` (the
    /// default) never evicts. Should comfortably exceed a few announce
    /// intervals and stay below `stall_timeout`, which remains the
    /// backstop when *no* receiver ever finishes.
    pub eviction_timeout: Option<Duration>,
    /// Seed of the deterministic retry-backoff jitter.
    pub retry_seed: u64,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            corrupt_quarantine: 10_000,
            send_retries: 3,
            retry_backoff: Duration::from_millis(1),
            retry_backoff_cap: Duration::from_millis(20),
            eviction_timeout: None,
            retry_seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// splitmix64: the standard 64-bit seed mixer (drives retry jitter).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Driver-side resilience bookkeeping: damage counters plus the jitter
/// RNG, wrapped around every transport call the drivers make.
struct ResilienceState {
    policy: ResiliencePolicy,
    corrupt_dropped: u64,
    send_retries: u64,
    rng: u64,
}

impl ResilienceState {
    fn new(policy: ResiliencePolicy) -> Self {
        ResilienceState {
            policy,
            corrupt_dropped: 0,
            send_retries: 0,
            rng: splitmix64(policy.retry_seed),
        }
    }

    /// `recv_timeout` with damage absorption: a recoverable error (decode
    /// failure or checksum mismatch) kills one datagram, not the session —
    /// count it, report it, and treat the interval as quiet. Past the
    /// quarantine threshold the link is hostile beyond use and the session
    /// aborts with a typed error.
    fn recv<T: Transport>(
        &mut self,
        transport: &mut T,
        timeout: Duration,
        now: f64,
        obs: &Obs,
    ) -> Result<Option<Message>, ProtocolError> {
        match transport.recv_timeout(timeout) {
            Ok(msg) => Ok(msg),
            Err(e) if e.is_recoverable() => {
                self.corrupt_dropped += 1;
                let total = self.corrupt_dropped;
                obs.emit(now, || Event::CorruptDropped { total });
                if total >= self.policy.corrupt_quarantine {
                    Err(ProtocolError::Quarantined {
                        corrupt_dropped: total,
                    })
                } else {
                    Ok(None)
                }
            }
            Err(e) => Err(e.into()),
        }
    }

    /// `send` with bounded retries: transient I/O failures back off
    /// exponentially (capped, deterministically jittered) and try again;
    /// anything else — or exhaustion — is fatal.
    fn send<T: Transport>(
        &mut self,
        transport: &mut T,
        msg: &Message,
        now: f64,
        obs: &Obs,
    ) -> Result<(), ProtocolError> {
        let mut attempt = 0u32;
        loop {
            match transport.send(msg) {
                Ok(()) => return Ok(()),
                Err(NetError::Io(_)) if attempt < self.policy.send_retries => {
                    attempt += 1;
                    self.send_retries += 1;
                    obs.emit(now, || Event::SendRetry { attempt });
                    let exp = attempt.saturating_sub(1).min(16);
                    let base = self
                        .policy
                        .retry_backoff
                        .saturating_mul(1u32 << exp)
                        .min(self.policy.retry_backoff_cap);
                    self.rng = splitmix64(self.rng);
                    let half_span = (base.as_nanos() / 2) as u64;
                    let jitter = if half_span == 0 {
                        0
                    } else {
                        self.rng % (half_span + 1)
                    };
                    std::thread::sleep(base + Duration::from_nanos(jitter));
                }
                Err(e) => return Err(e.into()),
            }
        }
    }
}

/// Sender-side protocol machine, abstracted over NP/N2.
pub trait SenderMachine: Send {
    /// Decide the next action.
    fn next_step(&mut self, now: f64) -> SenderStep;
    /// Feed one received message.
    ///
    /// # Errors
    /// Protocol-level failures abort the session.
    fn handle(&mut self, msg: &Message, now: f64) -> Result<(), ProtocolError>;
    /// True once FIN went out.
    fn is_finished(&self) -> bool;
    /// Work counters.
    fn counters(&self) -> &CostCounters;
    /// Identities of receivers that reported completion, ascending.
    fn done_ids(&self) -> Vec<u32>;
    /// Receivers still outstanding under known-receivers completion.
    fn outstanding(&self) -> u32;
    /// Give up on outstanding receivers (lower the completion target to
    /// the responsive population); returns how many were evicted.
    fn evict_outstanding(&mut self) -> u32;
}

/// Receiver-side protocol machine, abstracted over NP/N2.
pub trait ReceiverMachine: Send {
    /// Feed one received message.
    ///
    /// # Errors
    /// Protocol-level failures abort the session.
    fn handle(&mut self, msg: &Message, now: f64) -> Result<Vec<ReceiverAction>, ProtocolError>;
    /// Fire due timers.
    fn on_timer(&mut self, now: f64) -> Vec<ReceiverAction>;
    /// Earliest timer deadline.
    fn next_deadline(&self) -> Option<f64>;
    /// All groups decoded.
    fn is_complete(&self) -> bool;
    /// Sender closed the session.
    fn fin_seen(&self) -> bool;
    /// The reassembled transfer.
    ///
    /// # Errors
    /// If called before completion.
    fn take_data(&self) -> Result<Vec<u8>, ProtocolError>;
    /// Work counters.
    fn counters(&self) -> &CostCounters;
}

impl SenderMachine for NpSender {
    fn next_step(&mut self, now: f64) -> SenderStep {
        NpSender::next_step(self, now)
    }
    fn handle(&mut self, msg: &Message, now: f64) -> Result<(), ProtocolError> {
        NpSender::handle(self, msg, now)
    }
    fn is_finished(&self) -> bool {
        NpSender::is_finished(self)
    }
    fn counters(&self) -> &CostCounters {
        NpSender::counters(self)
    }
    fn done_ids(&self) -> Vec<u32> {
        NpSender::done_ids(self)
    }
    fn outstanding(&self) -> u32 {
        NpSender::outstanding(self)
    }
    fn evict_outstanding(&mut self) -> u32 {
        NpSender::evict_outstanding(self)
    }
}

impl SenderMachine for N2Sender {
    fn next_step(&mut self, now: f64) -> SenderStep {
        N2Sender::next_step(self, now)
    }
    fn handle(&mut self, msg: &Message, now: f64) -> Result<(), ProtocolError> {
        N2Sender::handle(self, msg, now)
    }
    fn is_finished(&self) -> bool {
        N2Sender::is_finished(self)
    }
    fn counters(&self) -> &CostCounters {
        N2Sender::counters(self)
    }
    fn done_ids(&self) -> Vec<u32> {
        N2Sender::done_ids(self)
    }
    fn outstanding(&self) -> u32 {
        N2Sender::outstanding(self)
    }
    fn evict_outstanding(&mut self) -> u32 {
        N2Sender::evict_outstanding(self)
    }
}

impl ReceiverMachine for NpReceiver {
    fn handle(&mut self, msg: &Message, now: f64) -> Result<Vec<ReceiverAction>, ProtocolError> {
        NpReceiver::handle(self, msg, now)
    }
    fn on_timer(&mut self, now: f64) -> Vec<ReceiverAction> {
        NpReceiver::on_timer(self, now)
    }
    fn next_deadline(&self) -> Option<f64> {
        NpReceiver::next_deadline(self)
    }
    fn is_complete(&self) -> bool {
        NpReceiver::is_complete(self)
    }
    fn fin_seen(&self) -> bool {
        NpReceiver::fin_seen(self)
    }
    fn take_data(&self) -> Result<Vec<u8>, ProtocolError> {
        NpReceiver::take_data(self)
    }
    fn counters(&self) -> &CostCounters {
        NpReceiver::counters(self)
    }
}

impl ReceiverMachine for N2Receiver {
    fn handle(&mut self, msg: &Message, now: f64) -> Result<Vec<ReceiverAction>, ProtocolError> {
        N2Receiver::handle(self, msg, now)
    }
    fn on_timer(&mut self, now: f64) -> Vec<ReceiverAction> {
        N2Receiver::on_timer(self, now)
    }
    fn next_deadline(&self) -> Option<f64> {
        N2Receiver::next_deadline(self)
    }
    fn is_complete(&self) -> bool {
        N2Receiver::is_complete(self)
    }
    fn fin_seen(&self) -> bool {
        N2Receiver::fin_seen(self)
    }
    fn take_data(&self) -> Result<Vec<u8>, ProtocolError> {
        N2Receiver::take_data(self)
    }
    fn counters(&self) -> &CostCounters {
        N2Receiver::counters(self)
    }
}

/// Result of a completed receiver run.
#[derive(Debug, Clone)]
pub struct ReceiverReport {
    /// The received byte stream.
    pub data: Vec<u8>,
    /// Work counters at session end.
    pub counters: CostCounters,
    /// Wall-clock duration until completion.
    pub elapsed: Duration,
    /// Corrupt datagrams counted-and-dropped by the driver.
    pub corrupt_dropped: u64,
}

/// Last message that counted as session progress, rendered as the event
/// it corresponds to on the wire (for [`ProtocolError::Stalled`] context).
fn progress_event(msg: &Message, sent: bool) -> Event {
    let kind = msg.obs_kind();
    if sent {
        Event::NetSent { kind }
    } else {
        Event::NetRecv { kind }
    }
}

/// Drive a sender machine to completion.
///
/// # Errors
/// Protocol errors from the machine, fatal transport failures,
/// [`ProtocolError::Quarantined`] when corruption exceeds the resilience
/// policy's tolerance, or [`ProtocolError::Stalled`] when nothing happens
/// for the configured stall timeout.
pub fn drive_sender<S: SenderMachine, T: Transport>(
    machine: &mut S,
    transport: &mut T,
    rt: &RuntimeConfig,
) -> Result<SessionReport, ProtocolError> {
    drive_sender_obs(machine, transport, rt, &Obs::null())
}

/// [`drive_sender`] with runtime lifecycle events (`stall_timeout`,
/// `receiver_evicted`, `session_end`) emitted to `obs`. Per-message
/// events come from the machine and transport, not the driver.
///
/// # Errors
/// Same as [`drive_sender`]; `Stalled` errors carry the last event that
/// counted as progress.
pub fn drive_sender_obs<S: SenderMachine, T: Transport>(
    machine: &mut S,
    transport: &mut T,
    rt: &RuntimeConfig,
    obs: &Obs,
) -> Result<SessionReport, ProtocolError> {
    let start = Instant::now();
    let mut last_progress = start;
    // The eviction clock is stricter than the stall clock: it resets only
    // on *receiver liveness* (a NAK, or a Done that grows the done set)
    // and on our own data transmissions — never on duplicate Dones or
    // announce echoes, which would let one chatty receiver postpone
    // eviction of a dead one forever.
    let mut last_liveness = start;
    let mut last_event: Option<Event> = None;
    let mut res = ResilienceState::new(rt.resilience);
    let mut evicted_total: u32 = 0;
    loop {
        let now = start.elapsed().as_secs_f64();
        match machine.next_step(now) {
            SenderStep::Finished => {
                let outcome = if evicted_total > 0 {
                    Outcome::Degraded
                } else {
                    Outcome::Completed
                };
                obs.emit(now, || Event::SessionEnd {
                    role: Role::Sender,
                    outcome,
                });
                return Ok(SessionReport {
                    counters: *machine.counters(),
                    elapsed: start.elapsed(),
                    completed: machine.done_ids(),
                    evicted: evicted_total,
                    corrupt_dropped: res.corrupt_dropped,
                    send_retries: res.send_retries,
                });
            }
            SenderStep::Transmit(msg) => {
                // Keep-alive re-announces are not progress; without this a
                // sender with zero receivers would re-announce forever
                // instead of stalling out.
                let is_keepalive = matches!(msg, Message::Announce { .. });
                res.send(transport, &msg, now, obs)?;
                if !is_keepalive {
                    last_progress = Instant::now();
                    last_liveness = Instant::now();
                    last_event = Some(progress_event(&msg, true));
                }
                // Pace transmissions while staying responsive to feedback.
                let pace_deadline = Instant::now() + rt.packet_spacing;
                loop {
                    let left = pace_deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        break;
                    }
                    let now = start.elapsed().as_secs_f64();
                    match res.recv(transport, left, now, obs)? {
                        Some(incoming) => {
                            let outstanding_before = machine.outstanding();
                            machine.handle(&incoming, start.elapsed().as_secs_f64())?;
                            last_progress = Instant::now();
                            if receiver_liveness(&incoming, outstanding_before, machine) {
                                last_liveness = Instant::now();
                            }
                            last_event = Some(progress_event(&incoming, false));
                        }
                        None => break,
                    }
                }
            }
            SenderStep::WaitUntil(t) => {
                let idle = Instant::now().duration_since(last_progress);
                // Graceful degradation: once part of the population has
                // finished and the rest stay silent past the eviction
                // deadline, complete for the responsive receivers rather
                // than stalling the whole session.
                if let Some(deadline) = rt.resilience.eviction_timeout {
                    let quiet = Instant::now().duration_since(last_liveness);
                    if quiet > deadline
                        && machine.outstanding() > 0
                        && !machine.done_ids().is_empty()
                    {
                        let evicted = machine.evict_outstanding();
                        if evicted > 0 {
                            evicted_total += evicted;
                            let completed = machine.done_ids().len() as u32;
                            obs.emit(now, || Event::ReceiverEvicted { evicted, completed });
                            last_progress = Instant::now();
                            continue;
                        }
                    }
                }
                if idle > rt.stall_timeout {
                    let waited = idle.as_secs_f64();
                    obs.emit(now, || Event::StallTimeout {
                        role: Role::Sender,
                        waited_secs: waited,
                    });
                    obs.emit(now, || Event::SessionEnd {
                        role: Role::Sender,
                        outcome: Outcome::Stalled,
                    });
                    return Err(ProtocolError::Stalled {
                        waited_secs: waited,
                        last_progress: last_event,
                    });
                }
                let wait = Duration::from_secs_f64((t - now).max(0.0))
                    .min(Duration::from_millis(50))
                    .max(Duration::from_micros(100));
                if let Some(incoming) = res.recv(transport, wait, now, obs)? {
                    let outstanding_before = machine.outstanding();
                    machine.handle(&incoming, start.elapsed().as_secs_f64())?;
                    last_progress = Instant::now();
                    if receiver_liveness(&incoming, outstanding_before, machine) {
                        last_liveness = Instant::now();
                    }
                    last_event = Some(progress_event(&incoming, false));
                }
            }
        }
    }
}

/// Whether an incoming message proves an *unfinished* receiver is still
/// out there working: a NAK (repair demand), or a Done that grew the done
/// set. Duplicate Dones, announce/data echoes (self-delivered multicast on
/// UDP) and foreign traffic don't count — they must not postpone eviction
/// of a receiver that has actually died.
fn receiver_liveness<S: SenderMachine>(
    msg: &Message,
    outstanding_before: u32,
    machine: &S,
) -> bool {
    match msg {
        Message::Nak { .. } | Message::NakPacket { .. } => true,
        Message::Done { .. } => machine.outstanding() < outstanding_before,
        _ => false,
    }
}

/// Drive a receiver machine until the transfer is complete *and* the
/// sender has closed the session (so late polls still get `Done` answers),
/// or until the sender disappears.
///
/// # Errors
/// [`ProtocolError::SenderGone`] if FIN arrives before completion,
/// [`ProtocolError::Stalled`] when nothing happens for the stall timeout
/// (unless the transfer is already complete — then the lost FIN is
/// forgiven and the data returned).
pub fn drive_receiver<R: ReceiverMachine, T: Transport>(
    machine: &mut R,
    transport: &mut T,
    rt: &RuntimeConfig,
) -> Result<ReceiverReport, ProtocolError> {
    drive_receiver_obs(machine, transport, rt, &Obs::null())
}

/// [`drive_receiver`] with runtime lifecycle events (`stall_timeout`,
/// `linger_expired`, `session_end`) emitted to `obs`. Per-message events
/// come from the machine and transport, not the driver.
///
/// # Errors
/// Same as [`drive_receiver`]; `Stalled` errors carry the last event that
/// counted as progress.
pub fn drive_receiver_obs<R: ReceiverMachine, T: Transport>(
    machine: &mut R,
    transport: &mut T,
    rt: &RuntimeConfig,
    obs: &Obs,
) -> Result<ReceiverReport, ProtocolError> {
    let start = Instant::now();
    let mut last_progress = start;
    let mut last_event: Option<Event> = None;
    let mut res = ResilienceState::new(rt.resilience);
    let mut outbound: Vec<Message> = Vec::new();
    loop {
        let now = start.elapsed().as_secs_f64();

        // Fire due NAK timers.
        for action in machine.on_timer(now) {
            if let ReceiverAction::Send(m) = action {
                outbound.push(m);
            }
        }
        for m in outbound.drain(..) {
            res.send(transport, &m, now, obs)?;
            last_progress = Instant::now();
            last_event = Some(progress_event(&m, true));
        }

        if machine.fin_seen() {
            return if machine.is_complete() {
                obs.emit(now, || Event::SessionEnd {
                    role: Role::Receiver,
                    outcome: Outcome::Completed,
                });
                Ok(ReceiverReport {
                    data: machine.take_data()?,
                    counters: *machine.counters(),
                    elapsed: start.elapsed(),
                    corrupt_dropped: res.corrupt_dropped,
                })
            } else {
                obs.emit(now, || Event::SessionEnd {
                    role: Role::Receiver,
                    outcome: Outcome::SenderGone,
                });
                Err(ProtocolError::SenderGone { groups_missing: 1 })
            };
        }

        let idle = Instant::now().duration_since(last_progress);
        if machine.is_complete() && idle > rt.complete_linger {
            // FIN was lost but the data is whole; stop lingering.
            obs.emit(now, || Event::LingerExpired {
                waited_secs: idle.as_secs_f64(),
            });
            obs.emit(now, || Event::SessionEnd {
                role: Role::Receiver,
                outcome: Outcome::Completed,
            });
            return Ok(ReceiverReport {
                data: machine.take_data()?,
                counters: *machine.counters(),
                elapsed: start.elapsed(),
                corrupt_dropped: res.corrupt_dropped,
            });
        }
        if idle > rt.stall_timeout {
            let waited = idle.as_secs_f64();
            obs.emit(now, || Event::StallTimeout {
                role: Role::Receiver,
                waited_secs: waited,
            });
            obs.emit(now, || Event::SessionEnd {
                role: Role::Receiver,
                outcome: Outcome::Stalled,
            });
            return Err(ProtocolError::Stalled {
                waited_secs: waited,
                last_progress: last_event,
            });
        }

        // Sleep until the next NAK deadline (or a short poll tick).
        let timeout = match machine.next_deadline() {
            Some(d) => Duration::from_secs_f64((d - now).max(0.0)).min(Duration::from_millis(20)),
            None => Duration::from_millis(20),
        }
        .max(Duration::from_micros(100));
        if let Some(msg) = res.recv(transport, timeout, now, obs)? {
            let now = start.elapsed().as_secs_f64();
            for action in machine.handle(&msg, now)? {
                if let ReceiverAction::Send(m) = action {
                    outbound.push(m);
                }
            }
            last_progress = Instant::now();
            last_event = Some(progress_event(&msg, false));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CompletionPolicy, NpConfig};
    use pm_net::MemHub;

    fn config(recv: u32) -> NpConfig {
        let mut c = NpConfig::small(CompletionPolicy::KnownReceivers(recv));
        c.k = 4;
        c.h = 8;
        c.payload_len = 64;
        c.nak_slot = 0.001;
        c
    }

    fn rt() -> RuntimeConfig {
        RuntimeConfig {
            packet_spacing: Duration::from_micros(50),
            stall_timeout: Duration::from_secs(5),
            complete_linger: Duration::from_millis(300),
            ..RuntimeConfig::default()
        }
    }

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 17 % 253) as u8).collect()
    }

    #[test]
    fn np_lossless_end_to_end() {
        let hub = MemHub::new();
        let bytes = payload(3000);
        let mut sender_tp = hub.join();
        let mut recv_tp = hub.join();
        let data = bytes.clone();
        let sender = std::thread::spawn(move || {
            let mut s = NpSender::new(1, &data, config(1)).unwrap();
            drive_sender(&mut s, &mut sender_tp, &rt()).unwrap()
        });
        let mut r = NpReceiver::new(7, 1, 0.001, 3);
        let report = drive_receiver(&mut r, &mut recv_tp, &rt()).unwrap();
        let sender_report = sender.join().unwrap();
        assert_eq!(report.data, bytes);
        assert!(sender_report.counters.data_sent > 0);
        assert_eq!(
            sender_report.counters.repairs_sent, 0,
            "lossless needs no parities"
        );
    }

    #[test]
    fn n2_lossless_end_to_end() {
        let hub = MemHub::new();
        let bytes = payload(2000);
        let mut sender_tp = hub.join();
        let mut recv_tp = hub.join();
        let data = bytes.clone();
        let sender = std::thread::spawn(move || {
            let mut s = N2Sender::new(2, &data, config(1)).unwrap();
            drive_sender(&mut s, &mut sender_tp, &rt()).unwrap()
        });
        let mut r = N2Receiver::new(8, 2, 0.001, 4);
        let report = drive_receiver(&mut r, &mut recv_tp, &rt()).unwrap();
        sender.join().unwrap();
        assert_eq!(report.data, bytes);
    }

    #[test]
    fn receiver_stall_without_sender() {
        let hub = MemHub::new();
        let mut tp = hub.join();
        let mut r = NpReceiver::new(1, 1, 0.001, 5);
        let fast = RuntimeConfig {
            packet_spacing: Duration::from_micros(50),
            stall_timeout: Duration::from_millis(100),
            complete_linger: Duration::from_millis(300),
            ..RuntimeConfig::default()
        };
        match drive_receiver(&mut r, &mut tp, &fast) {
            Err(ProtocolError::Stalled { .. }) => {}
            other => panic!("expected stall, got {other:?}"),
        }
    }

    #[test]
    fn quarantine_trips_on_relentless_corruption() {
        // A hub where every datagram the receiver-side driver pulls is
        // corrupt: after `corrupt_quarantine` drops the session aborts
        // with the typed error instead of spinning forever.
        let hub = MemHub::new();
        let feeder = hub.join();
        let mut tp = hub.join();
        let mut r = NpReceiver::new(1, 1, 0.001, 5);
        let mut cfg = rt();
        cfg.stall_timeout = Duration::from_secs(30);
        cfg.resilience.corrupt_quarantine = 5;
        let driver = std::thread::spawn(move || drive_receiver(&mut r, &mut tp, &cfg));
        // Keep injecting damaged-but-ours datagrams until the driver quits.
        let mut raw = Message::Fin { session: 1 }.encode().to_vec();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        let raw = bytes::Bytes::from(raw);
        let verdict = loop {
            feeder.send_raw(raw.clone());
            if driver.is_finished() {
                break driver.join().expect("driver must not panic");
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        match verdict {
            Err(ProtocolError::Quarantined { corrupt_dropped }) => {
                assert_eq!(corrupt_dropped, 5);
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
    }

    #[test]
    fn sender_evicts_silent_receiver_and_degrades() {
        // Two receivers announced, one alive: with an eviction deadline
        // the sender completes for the responsive one and reports the
        // straggler instead of stalling out.
        let hub = MemHub::new();
        let bytes = payload(1500);
        let mut sender_tp = hub.join();
        let mut recv_tp = hub.join();
        let data = bytes.clone();
        let sender = std::thread::spawn(move || {
            let mut s = NpSender::new(5, &data, config(2)).unwrap();
            let mut cfg = rt();
            cfg.resilience.eviction_timeout = Some(Duration::from_millis(250));
            drive_sender(&mut s, &mut sender_tp, &cfg).unwrap()
        });
        let mut r = NpReceiver::new(7, 5, 0.001, 3);
        let report = drive_receiver(&mut r, &mut recv_tp, &rt()).unwrap();
        let session = sender.join().unwrap();
        assert_eq!(report.data, bytes);
        assert!(session.is_degraded());
        assert_eq!(session.evicted, 1);
        assert_eq!(session.completed, vec![7]);
    }

    #[test]
    fn sender_stall_without_receivers() {
        let hub = MemHub::new();
        let mut tp = hub.join();
        let mut s = NpSender::new(3, &payload(500), config(1)).unwrap();
        let fast = RuntimeConfig {
            packet_spacing: Duration::from_micros(50),
            stall_timeout: Duration::from_millis(150),
            complete_linger: Duration::from_millis(300),
            ..RuntimeConfig::default()
        };
        match drive_sender(&mut s, &mut tp, &fast) {
            Err(ProtocolError::Stalled { .. }) => {}
            other => panic!("expected stall, got {other:?}"),
        }
    }
}
