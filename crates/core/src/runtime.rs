//! Wall-clock drivers: run a sans-io machine over a [`pm_net::Transport`].
//!
//! The drivers are deliberately simple single-threaded loops — structured
//! concurrency at the application level means one thread per endpoint,
//! joined by the caller (see the `file_multicast` example). The machines
//! never block; all waiting happens in `recv_timeout`.

use std::time::{Duration, Instant};

use pm_net::{Message, Transport};
use pm_obs::{Event, Obs, Outcome, Role};

use crate::costs::CostCounters;
use crate::error::ProtocolError;
use crate::n2::{N2Receiver, N2Sender};
use crate::receiver::{NpReceiver, ReceiverAction};
use crate::sender::{NpSender, SenderStep};

/// Timing knobs of the drivers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Pacing between consecutive packet transmissions (the paper's
    /// `delta`).
    pub packet_spacing: Duration,
    /// Abort if the session makes no progress for this long.
    pub stall_timeout: Duration,
    /// How long a *complete* receiver lingers answering polls before
    /// concluding the sender's FIN was lost and returning anyway. Should
    /// exceed a few announce intervals; much shorter than `stall_timeout`.
    pub complete_linger: Duration,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            packet_spacing: Duration::from_micros(200),
            stall_timeout: Duration::from_secs(10),
            complete_linger: Duration::from_millis(500),
        }
    }
}

/// Sender-side protocol machine, abstracted over NP/N2.
pub trait SenderMachine: Send {
    /// Decide the next action.
    fn next_step(&mut self, now: f64) -> SenderStep;
    /// Feed one received message.
    ///
    /// # Errors
    /// Protocol-level failures abort the session.
    fn handle(&mut self, msg: &Message, now: f64) -> Result<(), ProtocolError>;
    /// True once FIN went out.
    fn is_finished(&self) -> bool;
    /// Work counters.
    fn counters(&self) -> &CostCounters;
}

/// Receiver-side protocol machine, abstracted over NP/N2.
pub trait ReceiverMachine: Send {
    /// Feed one received message.
    ///
    /// # Errors
    /// Protocol-level failures abort the session.
    fn handle(&mut self, msg: &Message, now: f64) -> Result<Vec<ReceiverAction>, ProtocolError>;
    /// Fire due timers.
    fn on_timer(&mut self, now: f64) -> Vec<ReceiverAction>;
    /// Earliest timer deadline.
    fn next_deadline(&self) -> Option<f64>;
    /// All groups decoded.
    fn is_complete(&self) -> bool;
    /// Sender closed the session.
    fn fin_seen(&self) -> bool;
    /// The reassembled transfer.
    ///
    /// # Errors
    /// If called before completion.
    fn take_data(&self) -> Result<Vec<u8>, ProtocolError>;
    /// Work counters.
    fn counters(&self) -> &CostCounters;
}

impl SenderMachine for NpSender {
    fn next_step(&mut self, now: f64) -> SenderStep {
        NpSender::next_step(self, now)
    }
    fn handle(&mut self, msg: &Message, now: f64) -> Result<(), ProtocolError> {
        NpSender::handle(self, msg, now)
    }
    fn is_finished(&self) -> bool {
        NpSender::is_finished(self)
    }
    fn counters(&self) -> &CostCounters {
        NpSender::counters(self)
    }
}

impl SenderMachine for N2Sender {
    fn next_step(&mut self, now: f64) -> SenderStep {
        N2Sender::next_step(self, now)
    }
    fn handle(&mut self, msg: &Message, now: f64) -> Result<(), ProtocolError> {
        N2Sender::handle(self, msg, now)
    }
    fn is_finished(&self) -> bool {
        N2Sender::is_finished(self)
    }
    fn counters(&self) -> &CostCounters {
        N2Sender::counters(self)
    }
}

impl ReceiverMachine for NpReceiver {
    fn handle(&mut self, msg: &Message, now: f64) -> Result<Vec<ReceiverAction>, ProtocolError> {
        NpReceiver::handle(self, msg, now)
    }
    fn on_timer(&mut self, now: f64) -> Vec<ReceiverAction> {
        NpReceiver::on_timer(self, now)
    }
    fn next_deadline(&self) -> Option<f64> {
        NpReceiver::next_deadline(self)
    }
    fn is_complete(&self) -> bool {
        NpReceiver::is_complete(self)
    }
    fn fin_seen(&self) -> bool {
        NpReceiver::fin_seen(self)
    }
    fn take_data(&self) -> Result<Vec<u8>, ProtocolError> {
        NpReceiver::take_data(self)
    }
    fn counters(&self) -> &CostCounters {
        NpReceiver::counters(self)
    }
}

impl ReceiverMachine for N2Receiver {
    fn handle(&mut self, msg: &Message, now: f64) -> Result<Vec<ReceiverAction>, ProtocolError> {
        N2Receiver::handle(self, msg, now)
    }
    fn on_timer(&mut self, now: f64) -> Vec<ReceiverAction> {
        N2Receiver::on_timer(self, now)
    }
    fn next_deadline(&self) -> Option<f64> {
        N2Receiver::next_deadline(self)
    }
    fn is_complete(&self) -> bool {
        N2Receiver::is_complete(self)
    }
    fn fin_seen(&self) -> bool {
        N2Receiver::fin_seen(self)
    }
    fn take_data(&self) -> Result<Vec<u8>, ProtocolError> {
        N2Receiver::take_data(self)
    }
    fn counters(&self) -> &CostCounters {
        N2Receiver::counters(self)
    }
}

/// Result of a completed sender run.
#[derive(Debug, Clone, Copy)]
pub struct SenderReport {
    /// Work counters at session end.
    pub counters: CostCounters,
    /// Wall-clock duration of the session.
    pub elapsed: Duration,
}

/// Result of a completed receiver run.
#[derive(Debug, Clone)]
pub struct ReceiverReport {
    /// The received byte stream.
    pub data: Vec<u8>,
    /// Work counters at session end.
    pub counters: CostCounters,
    /// Wall-clock duration until completion.
    pub elapsed: Duration,
}

/// Last message that counted as session progress, rendered as the event
/// it corresponds to on the wire (for [`ProtocolError::Stalled`] context).
fn progress_event(msg: &Message, sent: bool) -> Event {
    let kind = msg.obs_kind();
    if sent {
        Event::NetSent { kind }
    } else {
        Event::NetRecv { kind }
    }
}

/// Drive a sender machine to completion.
///
/// # Errors
/// Protocol errors from the machine, transport failures, or
/// [`ProtocolError::Stalled`] when nothing happens for the configured
/// stall timeout.
pub fn drive_sender<S: SenderMachine, T: Transport>(
    machine: &mut S,
    transport: &mut T,
    rt: &RuntimeConfig,
) -> Result<SenderReport, ProtocolError> {
    drive_sender_obs(machine, transport, rt, &Obs::null())
}

/// [`drive_sender`] with runtime lifecycle events (`stall_timeout`,
/// `session_end`) emitted to `obs`. Per-message events come from the
/// machine and transport, not the driver.
///
/// # Errors
/// Same as [`drive_sender`]; `Stalled` errors carry the last event that
/// counted as progress.
pub fn drive_sender_obs<S: SenderMachine, T: Transport>(
    machine: &mut S,
    transport: &mut T,
    rt: &RuntimeConfig,
    obs: &Obs,
) -> Result<SenderReport, ProtocolError> {
    let start = Instant::now();
    let mut last_progress = start;
    let mut last_event: Option<Event> = None;
    loop {
        let now = start.elapsed().as_secs_f64();
        match machine.next_step(now) {
            SenderStep::Finished => {
                obs.emit(now, || Event::SessionEnd {
                    role: Role::Sender,
                    outcome: Outcome::Completed,
                });
                return Ok(SenderReport {
                    counters: *machine.counters(),
                    elapsed: start.elapsed(),
                });
            }
            SenderStep::Transmit(msg) => {
                // Keep-alive re-announces are not progress; without this a
                // sender with zero receivers would re-announce forever
                // instead of stalling out.
                let is_keepalive = matches!(msg, Message::Announce { .. });
                transport.send(&msg)?;
                if !is_keepalive {
                    last_progress = Instant::now();
                    last_event = Some(progress_event(&msg, true));
                }
                // Pace transmissions while staying responsive to feedback.
                let pace_deadline = Instant::now() + rt.packet_spacing;
                loop {
                    let left = pace_deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        break;
                    }
                    match transport.recv_timeout(left)? {
                        Some(incoming) => {
                            machine.handle(&incoming, start.elapsed().as_secs_f64())?;
                            last_progress = Instant::now();
                            last_event = Some(progress_event(&incoming, false));
                        }
                        None => break,
                    }
                }
            }
            SenderStep::WaitUntil(t) => {
                let now_i = Instant::now();
                if now_i.duration_since(last_progress) > rt.stall_timeout {
                    let waited = now_i.duration_since(last_progress).as_secs_f64();
                    obs.emit(now, || Event::StallTimeout {
                        role: Role::Sender,
                        waited_secs: waited,
                    });
                    obs.emit(now, || Event::SessionEnd {
                        role: Role::Sender,
                        outcome: Outcome::Stalled,
                    });
                    return Err(ProtocolError::Stalled {
                        waited_secs: waited,
                        last_progress: last_event,
                    });
                }
                let wait = Duration::from_secs_f64((t - now).max(0.0))
                    .min(Duration::from_millis(50))
                    .max(Duration::from_micros(100));
                if let Some(incoming) = transport.recv_timeout(wait)? {
                    machine.handle(&incoming, start.elapsed().as_secs_f64())?;
                    last_progress = Instant::now();
                    last_event = Some(progress_event(&incoming, false));
                }
            }
        }
    }
}

/// Drive a receiver machine until the transfer is complete *and* the
/// sender has closed the session (so late polls still get `Done` answers),
/// or until the sender disappears.
///
/// # Errors
/// [`ProtocolError::SenderGone`] if FIN arrives before completion,
/// [`ProtocolError::Stalled`] when nothing happens for the stall timeout
/// (unless the transfer is already complete — then the lost FIN is
/// forgiven and the data returned).
pub fn drive_receiver<R: ReceiverMachine, T: Transport>(
    machine: &mut R,
    transport: &mut T,
    rt: &RuntimeConfig,
) -> Result<ReceiverReport, ProtocolError> {
    drive_receiver_obs(machine, transport, rt, &Obs::null())
}

/// [`drive_receiver`] with runtime lifecycle events (`stall_timeout`,
/// `linger_expired`, `session_end`) emitted to `obs`. Per-message events
/// come from the machine and transport, not the driver.
///
/// # Errors
/// Same as [`drive_receiver`]; `Stalled` errors carry the last event that
/// counted as progress.
pub fn drive_receiver_obs<R: ReceiverMachine, T: Transport>(
    machine: &mut R,
    transport: &mut T,
    rt: &RuntimeConfig,
    obs: &Obs,
) -> Result<ReceiverReport, ProtocolError> {
    let start = Instant::now();
    let mut last_progress = start;
    let mut last_event: Option<Event> = None;
    let mut outbound: Vec<Message> = Vec::new();
    loop {
        let now = start.elapsed().as_secs_f64();

        // Fire due NAK timers.
        for action in machine.on_timer(now) {
            if let ReceiverAction::Send(m) = action {
                outbound.push(m);
            }
        }
        for m in outbound.drain(..) {
            transport.send(&m)?;
            last_progress = Instant::now();
            last_event = Some(progress_event(&m, true));
        }

        if machine.fin_seen() {
            return if machine.is_complete() {
                obs.emit(now, || Event::SessionEnd {
                    role: Role::Receiver,
                    outcome: Outcome::Completed,
                });
                Ok(ReceiverReport {
                    data: machine.take_data()?,
                    counters: *machine.counters(),
                    elapsed: start.elapsed(),
                })
            } else {
                obs.emit(now, || Event::SessionEnd {
                    role: Role::Receiver,
                    outcome: Outcome::SenderGone,
                });
                Err(ProtocolError::SenderGone { groups_missing: 1 })
            };
        }

        let idle = Instant::now().duration_since(last_progress);
        if machine.is_complete() && idle > rt.complete_linger {
            // FIN was lost but the data is whole; stop lingering.
            obs.emit(now, || Event::LingerExpired {
                waited_secs: idle.as_secs_f64(),
            });
            obs.emit(now, || Event::SessionEnd {
                role: Role::Receiver,
                outcome: Outcome::Completed,
            });
            return Ok(ReceiverReport {
                data: machine.take_data()?,
                counters: *machine.counters(),
                elapsed: start.elapsed(),
            });
        }
        if idle > rt.stall_timeout {
            let waited = idle.as_secs_f64();
            obs.emit(now, || Event::StallTimeout {
                role: Role::Receiver,
                waited_secs: waited,
            });
            obs.emit(now, || Event::SessionEnd {
                role: Role::Receiver,
                outcome: Outcome::Stalled,
            });
            return Err(ProtocolError::Stalled {
                waited_secs: waited,
                last_progress: last_event,
            });
        }

        // Sleep until the next NAK deadline (or a short poll tick).
        let timeout = match machine.next_deadline() {
            Some(d) => Duration::from_secs_f64((d - now).max(0.0)).min(Duration::from_millis(20)),
            None => Duration::from_millis(20),
        }
        .max(Duration::from_micros(100));
        if let Some(msg) = transport.recv_timeout(timeout)? {
            let now = start.elapsed().as_secs_f64();
            for action in machine.handle(&msg, now)? {
                if let ReceiverAction::Send(m) = action {
                    outbound.push(m);
                }
            }
            last_progress = Instant::now();
            last_event = Some(progress_event(&msg, false));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CompletionPolicy, NpConfig};
    use pm_net::MemHub;

    fn config(recv: u32) -> NpConfig {
        let mut c = NpConfig::small(CompletionPolicy::KnownReceivers(recv));
        c.k = 4;
        c.h = 8;
        c.payload_len = 64;
        c.nak_slot = 0.001;
        c
    }

    fn rt() -> RuntimeConfig {
        RuntimeConfig {
            packet_spacing: Duration::from_micros(50),
            stall_timeout: Duration::from_secs(5),
            complete_linger: Duration::from_millis(300),
        }
    }

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 17 % 253) as u8).collect()
    }

    #[test]
    fn np_lossless_end_to_end() {
        let hub = MemHub::new();
        let bytes = payload(3000);
        let mut sender_tp = hub.join();
        let mut recv_tp = hub.join();
        let data = bytes.clone();
        let sender = std::thread::spawn(move || {
            let mut s = NpSender::new(1, &data, config(1)).unwrap();
            drive_sender(&mut s, &mut sender_tp, &rt()).unwrap()
        });
        let mut r = NpReceiver::new(7, 1, 0.001, 3);
        let report = drive_receiver(&mut r, &mut recv_tp, &rt()).unwrap();
        let sender_report = sender.join().unwrap();
        assert_eq!(report.data, bytes);
        assert!(sender_report.counters.data_sent > 0);
        assert_eq!(
            sender_report.counters.repairs_sent, 0,
            "lossless needs no parities"
        );
    }

    #[test]
    fn n2_lossless_end_to_end() {
        let hub = MemHub::new();
        let bytes = payload(2000);
        let mut sender_tp = hub.join();
        let mut recv_tp = hub.join();
        let data = bytes.clone();
        let sender = std::thread::spawn(move || {
            let mut s = N2Sender::new(2, &data, config(1)).unwrap();
            drive_sender(&mut s, &mut sender_tp, &rt()).unwrap()
        });
        let mut r = N2Receiver::new(8, 2, 0.001, 4);
        let report = drive_receiver(&mut r, &mut recv_tp, &rt()).unwrap();
        sender.join().unwrap();
        assert_eq!(report.data, bytes);
    }

    #[test]
    fn receiver_stall_without_sender() {
        let hub = MemHub::new();
        let mut tp = hub.join();
        let mut r = NpReceiver::new(1, 1, 0.001, 5);
        let fast = RuntimeConfig {
            packet_spacing: Duration::from_micros(50),
            stall_timeout: Duration::from_millis(100),
            complete_linger: Duration::from_millis(300),
        };
        match drive_receiver(&mut r, &mut tp, &fast) {
            Err(ProtocolError::Stalled { .. }) => {}
            other => panic!("expected stall, got {other:?}"),
        }
    }

    #[test]
    fn sender_stall_without_receivers() {
        let hub = MemHub::new();
        let mut tp = hub.join();
        let mut s = NpSender::new(3, &payload(500), config(1)).unwrap();
        let fast = RuntimeConfig {
            packet_spacing: Duration::from_micros(50),
            stall_timeout: Duration::from_millis(150),
            complete_linger: Duration::from_millis(300),
        };
        match drive_sender(&mut s, &mut tp, &fast) {
            Err(ProtocolError::Stalled { .. }) => {}
            other => panic!("expected stall, got {other:?}"),
        }
    }
}
