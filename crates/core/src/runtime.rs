//! Wall-clock drivers: run a sans-io machine over a [`pm_net::Transport`].
//!
//! The drivers are deliberately simple single-threaded loops — structured
//! concurrency at the application level means one thread per endpoint,
//! joined by the caller (see the `file_multicast` example). The machines
//! never block; all waiting happens in `recv_timeout`.

use std::time::{Duration, Instant};

use pm_net::{Message, NetError, Transport};
use pm_obs::{Event, FlightRecorder, Obs, Outcome, Role};

use crate::costs::CostCounters;
use crate::error::ProtocolError;
use crate::n2::{N2Receiver, N2Sender};
use crate::receiver::{NpReceiver, ReceiverAction};
use crate::sender::{NpSender, SenderStep};
pub use crate::session::SessionReport;

/// Timing knobs of the drivers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Pacing between consecutive packet transmissions (the paper's
    /// `delta`).
    pub packet_spacing: Duration,
    /// Abort if the session makes no progress for this long.
    pub stall_timeout: Duration,
    /// How long a *complete* receiver lingers answering polls before
    /// concluding the sender's FIN was lost and returning anyway. Should
    /// exceed a few announce intervals; much shorter than `stall_timeout`.
    pub complete_linger: Duration,
    /// Hostile-network posture: corruption tolerance, send retries and
    /// receiver eviction.
    pub resilience: ResiliencePolicy,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            packet_spacing: Duration::from_micros(200),
            stall_timeout: Duration::from_secs(10),
            complete_linger: Duration::from_millis(500),
            resilience: ResiliencePolicy::default(),
        }
    }
}

/// Hostile-network posture of the drivers: how much datagram damage to
/// absorb, how hard to retry transient send failures, and when the sender
/// gives up on silent receivers.
///
/// The defaults absorb corruption essentially forever, retry sends a few
/// times, and never evict — byte damage alone cannot abort a session.
/// Eviction is opt-in because it trades completeness for liveness: with a
/// deadline set, a session facing a dead receiver finishes *degraded*
/// (see [`SessionReport::is_degraded`]) instead of stalling out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResiliencePolicy {
    /// Corrupt/undecodable datagrams tolerated — counted, reported and
    /// dropped — before the driver aborts with
    /// [`ProtocolError::Quarantined`].
    pub corrupt_quarantine: u64,
    /// Transient I/O send failures retried per message before the error
    /// becomes fatal.
    pub send_retries: u32,
    /// Backoff before the first send retry; doubles per attempt.
    pub retry_backoff: Duration,
    /// Upper bound on the per-attempt backoff.
    pub retry_backoff_cap: Duration,
    /// Sender only: once at least one receiver finished and *nothing* has
    /// been heard for this long, evict the receivers still outstanding and
    /// complete the session for the responsive population. `None` (the
    /// default) never evicts. Should comfortably exceed a few announce
    /// intervals and stay below `stall_timeout`, which remains the
    /// backstop when *no* receiver ever finishes.
    pub eviction_timeout: Option<Duration>,
    /// Seed of the deterministic retry-backoff jitter.
    pub retry_seed: u64,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            corrupt_quarantine: 10_000,
            send_retries: 3,
            retry_backoff: Duration::from_millis(1),
            retry_backoff_cap: Duration::from_millis(20),
            eviction_timeout: None,
            retry_seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// splitmix64: the standard 64-bit seed mixer (drives retry jitter).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Clock-agnostic resilience accounting shared by the blocking drivers and
/// the event-driven multiplexer (`pm-mux`): damage counters plus the
/// deterministic jitter RNG, wrapped around every transport interaction.
///
/// The core never sleeps and never reads a clock — it *classifies*
/// outcomes and *computes* backoff durations; the caller owns all waiting
/// (a blocking driver waits on `recv_timeout`, the multiplexer schedules a
/// timer-wheel entry). That split is what lets one resilience policy serve
/// both runtimes with identical semantics.
#[derive(Debug, Clone)]
pub struct ResilienceCore {
    policy: ResiliencePolicy,
    corrupt_dropped: u64,
    send_retries: u64,
    rng: u64,
}

impl ResilienceCore {
    /// Fresh accounting state under `policy`.
    pub fn new(policy: ResiliencePolicy) -> Self {
        ResilienceCore {
            policy,
            corrupt_dropped: 0,
            send_retries: 0,
            rng: splitmix64(policy.retry_seed),
        }
    }

    /// The policy this state enforces.
    pub fn policy(&self) -> &ResiliencePolicy {
        &self.policy
    }

    /// Corrupt datagrams counted-and-dropped so far.
    pub fn corrupt_dropped(&self) -> u64 {
        self.corrupt_dropped
    }

    /// Transient send failures retried so far.
    pub fn send_retries(&self) -> u64 {
        self.send_retries
    }

    /// Classify one receive outcome with damage absorption: a recoverable
    /// error (decode failure or checksum mismatch) kills one datagram, not
    /// the session — count it, report it, and treat the interval as quiet.
    /// Past the quarantine threshold the link is hostile beyond use and
    /// the session aborts with a typed error.
    ///
    /// # Errors
    /// [`ProtocolError::Quarantined`] past the corruption budget; fatal
    /// transport errors pass through.
    pub fn absorb_recv(
        &mut self,
        outcome: Result<Option<Message>, NetError>,
        now: f64,
        obs: &Obs,
    ) -> Result<Option<Message>, ProtocolError> {
        match outcome {
            Ok(msg) => Ok(msg),
            Err(e) if e.is_recoverable() => {
                self.corrupt_dropped += 1;
                let total = self.corrupt_dropped;
                obs.emit(now, || Event::CorruptDropped { total });
                if total >= self.policy.corrupt_quarantine {
                    Err(ProtocolError::Quarantined {
                        corrupt_dropped: total,
                    })
                } else {
                    Ok(None)
                }
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Record one retry of a transient send failure and return how long to
    /// back off before re-attempting (`attempt` is 1-based): exponential
    /// in the attempt number, capped by the policy, plus an *unbiased*
    /// uniform jitter in `[0, base/2]` so colliding retriers decorrelate.
    pub fn retry_backoff(&mut self, attempt: u32, now: f64, obs: &Obs) -> Duration {
        self.send_retries += 1;
        obs.emit(now, || Event::SendRetry { attempt });
        let exp = attempt.saturating_sub(1).min(16);
        let base = self
            .policy
            .retry_backoff
            .saturating_mul(1u32 << exp)
            .min(self.policy.retry_backoff_cap);
        let half_span = (base.as_nanos() / 2) as u64;
        base + Duration::from_nanos(self.bounded(half_span.saturating_add(1)))
    }

    /// Uniform sample in `[0, n)` via Lemire's nearly-divisionless
    /// rejection method — unlike `rng % n`, every outcome is exactly
    /// equally likely. `n` must be nonzero.
    fn bounded(&mut self, n: u64) -> u64 {
        let threshold = n.wrapping_neg() % n;
        loop {
            self.rng = splitmix64(self.rng);
            let m = u128::from(self.rng) * u128::from(n);
            if m as u64 >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Blocking-driver shell over [`ResilienceCore`]: supplies the waiting the
/// core deliberately doesn't do.
struct ResilienceState {
    core: ResilienceCore,
}

impl ResilienceState {
    fn new(policy: ResiliencePolicy) -> Self {
        ResilienceState {
            core: ResilienceCore::new(policy),
        }
    }

    fn recv<T: Transport>(
        &mut self,
        transport: &mut T,
        timeout: Duration,
        now: f64,
        obs: &Obs,
    ) -> Result<Option<Message>, ProtocolError> {
        let outcome = transport.recv_timeout(timeout);
        self.core.absorb_recv(outcome, now, obs)
    }

    /// `send` with bounded retries. Transient I/O failures back off
    /// exponentially (capped, deterministically jittered) — but the driver
    /// keeps *receiving* through the backoff window instead of sleeping
    /// through it: incoming datagrams land in `inbox` for the caller to
    /// handle, so a flaky uplink cannot freeze feedback processing or blow
    /// through a pacing deadline. Anything non-transient — or retry
    /// exhaustion — is fatal.
    fn send<T: Transport>(
        &mut self,
        transport: &mut T,
        msg: &Message,
        start: Instant,
        obs: &Obs,
        inbox: &mut Vec<Message>,
    ) -> Result<(), ProtocolError> {
        let mut attempt = 0u32;
        loop {
            match transport.send(msg) {
                Ok(()) => return Ok(()),
                Err(NetError::Io(_)) if attempt < self.core.policy().send_retries => {
                    attempt += 1;
                    let now = start.elapsed().as_secs_f64();
                    let backoff = self.core.retry_backoff(attempt, now, obs);
                    // Deadline-based waiting: stay on the receive path for
                    // the whole backoff instead of `thread::sleep`ing.
                    let until = Instant::now() + backoff;
                    loop {
                        let left = until.saturating_duration_since(Instant::now());
                        if left.is_zero() {
                            break;
                        }
                        let now = start.elapsed().as_secs_f64();
                        if let Some(m) = self.recv(transport, left, now, obs)? {
                            inbox.push(m);
                        }
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
    }
}

/// Convert a machine-reported wakeup delta (seconds from now) into a
/// bounded wait the driver can actually sleep. Total over every float
/// input: `NaN` and non-positive deltas clamp to `floor` (wake
/// immediately-ish), `+inf` and oversized deltas clamp to `ceil` — a
/// misbehaving machine can delay the driver, never panic it (naive
/// `Duration::from_secs_f64` panics on non-finite input).
pub fn clamp_wait(delta_secs: f64, floor: Duration, ceil: Duration) -> Duration {
    if delta_secs.is_nan() || delta_secs <= 0.0 {
        return floor;
    }
    if delta_secs >= ceil.as_secs_f64() {
        return ceil;
    }
    Duration::from_secs_f64(delta_secs).clamp(floor, ceil)
}

/// Sender-side protocol machine, abstracted over NP/N2.
pub trait SenderMachine: Send {
    /// Decide the next action.
    fn next_step(&mut self, now: f64) -> SenderStep;
    /// Feed one received message.
    ///
    /// # Errors
    /// Protocol-level failures abort the session.
    fn handle(&mut self, msg: &Message, now: f64) -> Result<(), ProtocolError>;
    /// True once FIN went out.
    fn is_finished(&self) -> bool;
    /// Work counters.
    fn counters(&self) -> &CostCounters;
    /// How many receivers reported completion. Allocation-free — this is
    /// what hot driver loops should poll; `done_ids` is for reports.
    fn done_count(&self) -> usize;
    /// Identities of receivers that reported completion, ascending.
    fn done_ids(&self) -> Vec<u32>;
    /// Receivers still outstanding under known-receivers completion.
    fn outstanding(&self) -> u32;
    /// Give up on outstanding receivers (lower the completion target to
    /// the responsive population); returns how many were evicted.
    fn evict_outstanding(&mut self) -> u32;
    /// Receiver/feedback-dependent sender state in bytes (the
    /// `sender.state_bytes_per_receiver` gauge's numerator). Machines
    /// without such bookkeeping report 0.
    fn state_bytes(&self) -> usize {
        0
    }
}

/// Receiver-side protocol machine, abstracted over NP/N2.
pub trait ReceiverMachine: Send {
    /// Feed one received message.
    ///
    /// # Errors
    /// Protocol-level failures abort the session.
    fn handle(&mut self, msg: &Message, now: f64) -> Result<Vec<ReceiverAction>, ProtocolError>;
    /// Fire due timers.
    fn on_timer(&mut self, now: f64) -> Vec<ReceiverAction>;
    /// Earliest timer deadline.
    fn next_deadline(&self) -> Option<f64>;
    /// All groups decoded.
    fn is_complete(&self) -> bool;
    /// Sender closed the session.
    fn fin_seen(&self) -> bool;
    /// The reassembled transfer.
    ///
    /// # Errors
    /// If called before completion.
    fn take_data(&self) -> Result<Vec<u8>, ProtocolError>;
    /// Work counters.
    fn counters(&self) -> &CostCounters;
}

impl SenderMachine for NpSender {
    fn next_step(&mut self, now: f64) -> SenderStep {
        NpSender::next_step(self, now)
    }
    fn handle(&mut self, msg: &Message, now: f64) -> Result<(), ProtocolError> {
        NpSender::handle(self, msg, now)
    }
    fn is_finished(&self) -> bool {
        NpSender::is_finished(self)
    }
    fn counters(&self) -> &CostCounters {
        NpSender::counters(self)
    }
    fn done_count(&self) -> usize {
        NpSender::done_count(self)
    }
    fn done_ids(&self) -> Vec<u32> {
        NpSender::done_ids(self)
    }
    fn outstanding(&self) -> u32 {
        NpSender::outstanding(self)
    }
    fn evict_outstanding(&mut self) -> u32 {
        NpSender::evict_outstanding(self)
    }
    fn state_bytes(&self) -> usize {
        NpSender::state_bytes(self)
    }
}

impl SenderMachine for N2Sender {
    fn next_step(&mut self, now: f64) -> SenderStep {
        N2Sender::next_step(self, now)
    }
    fn handle(&mut self, msg: &Message, now: f64) -> Result<(), ProtocolError> {
        N2Sender::handle(self, msg, now)
    }
    fn is_finished(&self) -> bool {
        N2Sender::is_finished(self)
    }
    fn counters(&self) -> &CostCounters {
        N2Sender::counters(self)
    }
    fn done_count(&self) -> usize {
        N2Sender::done_count(self)
    }
    fn done_ids(&self) -> Vec<u32> {
        N2Sender::done_ids(self)
    }
    fn outstanding(&self) -> u32 {
        N2Sender::outstanding(self)
    }
    fn evict_outstanding(&mut self) -> u32 {
        N2Sender::evict_outstanding(self)
    }
    fn state_bytes(&self) -> usize {
        N2Sender::state_bytes(self)
    }
}

impl ReceiverMachine for NpReceiver {
    fn handle(&mut self, msg: &Message, now: f64) -> Result<Vec<ReceiverAction>, ProtocolError> {
        NpReceiver::handle(self, msg, now)
    }
    fn on_timer(&mut self, now: f64) -> Vec<ReceiverAction> {
        NpReceiver::on_timer(self, now)
    }
    fn next_deadline(&self) -> Option<f64> {
        NpReceiver::next_deadline(self)
    }
    fn is_complete(&self) -> bool {
        NpReceiver::is_complete(self)
    }
    fn fin_seen(&self) -> bool {
        NpReceiver::fin_seen(self)
    }
    fn take_data(&self) -> Result<Vec<u8>, ProtocolError> {
        NpReceiver::take_data(self)
    }
    fn counters(&self) -> &CostCounters {
        NpReceiver::counters(self)
    }
}

impl ReceiverMachine for N2Receiver {
    fn handle(&mut self, msg: &Message, now: f64) -> Result<Vec<ReceiverAction>, ProtocolError> {
        N2Receiver::handle(self, msg, now)
    }
    fn on_timer(&mut self, now: f64) -> Vec<ReceiverAction> {
        N2Receiver::on_timer(self, now)
    }
    fn next_deadline(&self) -> Option<f64> {
        N2Receiver::next_deadline(self)
    }
    fn is_complete(&self) -> bool {
        N2Receiver::is_complete(self)
    }
    fn fin_seen(&self) -> bool {
        N2Receiver::fin_seen(self)
    }
    fn take_data(&self) -> Result<Vec<u8>, ProtocolError> {
        N2Receiver::take_data(self)
    }
    fn counters(&self) -> &CostCounters {
        N2Receiver::counters(self)
    }
}

/// Result of a completed receiver run.
#[derive(Debug, Clone)]
pub struct ReceiverReport {
    /// The received byte stream.
    pub data: Vec<u8>,
    /// Work counters at session end.
    pub counters: CostCounters,
    /// Wall-clock duration until completion.
    pub elapsed: Duration,
    /// Corrupt datagrams counted-and-dropped by the driver.
    pub corrupt_dropped: u64,
}

/// Last message that counted as session progress, rendered as the event
/// it corresponds to on the wire (for [`ProtocolError::Stalled`] context).
fn progress_event(msg: &Message, sent: bool) -> Event {
    let kind = msg.obs_kind();
    if sent {
        Event::NetSent { kind }
    } else {
        Event::NetRecv { kind }
    }
}

/// Drive a sender machine to completion.
///
/// # Errors
/// Protocol errors from the machine, fatal transport failures,
/// [`ProtocolError::Quarantined`] when corruption exceeds the resilience
/// policy's tolerance, or [`ProtocolError::Stalled`] when nothing happens
/// for the configured stall timeout.
pub fn drive_sender<S: SenderMachine, T: Transport>(
    machine: &mut S,
    transport: &mut T,
    rt: &RuntimeConfig,
) -> Result<SessionReport, ProtocolError> {
    drive_sender_obs(machine, transport, rt, &Obs::null())
}

/// [`drive_sender`] with runtime lifecycle events (`stall_timeout`,
/// `receiver_evicted`, `session_end`) emitted to `obs`. Per-message
/// events come from the machine and transport, not the driver.
///
/// # Errors
/// Same as [`drive_sender`]; `Stalled` errors carry the last event that
/// counted as progress.
pub fn drive_sender_obs<S: SenderMachine, T: Transport>(
    machine: &mut S,
    transport: &mut T,
    rt: &RuntimeConfig,
    obs: &Obs,
) -> Result<SessionReport, ProtocolError> {
    let start = Instant::now();
    let mut last_progress = start;
    // The eviction clock is stricter than the stall clock: it resets only
    // on *receiver liveness* — feedback the machine absorbed from an
    // unfinished receiver (see [`absorb_feedback`]) — never on our own
    // transmissions, duplicate Dones or announce echoes. Resetting it on
    // our own sends would make eviction unreachable for any sender that
    // transmits continuously (the carousel never yields `WaitUntil`), and
    // chatty-but-ignored traffic must not postpone eviction of a receiver
    // that actually died.
    let mut last_liveness = start;
    let mut last_event: Option<Event> = None;
    let mut res = ResilienceState::new(rt.resilience);
    let mut inbox: Vec<Message> = Vec::new();
    let mut evicted_total: u32 = 0;
    loop {
        let now = start.elapsed().as_secs_f64();
        // Graceful degradation, checked on *every* step — not only when
        // the machine goes idle: once part of the population has finished
        // and the rest stay silent past the eviction deadline, complete
        // for the responsive receivers rather than stalling the whole
        // session. A sender pinned in back-to-back `Transmit` steps (the
        // carousel under a NAK storm) evicts exactly as promptly as an
        // idle one.
        if let Some(deadline) = rt.resilience.eviction_timeout {
            let quiet = Instant::now().duration_since(last_liveness);
            if quiet > deadline && machine.outstanding() > 0 && machine.done_count() > 0 {
                let evicted = machine.evict_outstanding();
                if evicted > 0 {
                    evicted_total += evicted;
                    let completed = machine.done_count() as u32;
                    obs.emit(now, || Event::ReceiverEvicted { evicted, completed });
                    last_progress = Instant::now();
                    last_liveness = Instant::now();
                    continue;
                }
            }
        }
        match machine.next_step(now) {
            SenderStep::Finished => {
                let outcome = if evicted_total > 0 {
                    Outcome::Degraded
                } else {
                    Outcome::Completed
                };
                obs.emit(now, || Event::SessionEnd {
                    role: Role::Sender,
                    outcome,
                });
                return Ok(SessionReport {
                    counters: *machine.counters(),
                    elapsed: start.elapsed(),
                    completed: machine.done_ids(),
                    evicted: evicted_total,
                    corrupt_dropped: res.core.corrupt_dropped(),
                    send_retries: res.core.send_retries(),
                    postmortem: None,
                });
            }
            SenderStep::Transmit(msg) => {
                // Keep-alive re-announces are not progress; without this a
                // sender with zero receivers would re-announce forever
                // instead of stalling out.
                let is_keepalive = matches!(msg, Message::Announce { .. });
                res.send(transport, &msg, start, obs, &mut inbox)?;
                if !is_keepalive {
                    last_progress = Instant::now();
                    last_event = Some(progress_event(&msg, true));
                }
                // Datagrams that arrived while a retry backoff was being
                // waited out are feedback like any other: handle them
                // before pacing so a flaky uplink can't starve the NAK
                // path.
                for incoming in inbox.drain(..) {
                    let now = start.elapsed().as_secs_f64();
                    if absorb_feedback(machine, &incoming, now)? {
                        last_liveness = Instant::now();
                    }
                    last_progress = Instant::now();
                    last_event = Some(progress_event(&incoming, false));
                }
                // Pace transmissions while staying responsive to feedback.
                let pace_deadline = Instant::now() + rt.packet_spacing;
                loop {
                    let left = pace_deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        break;
                    }
                    let now = start.elapsed().as_secs_f64();
                    match res.recv(transport, left, now, obs)? {
                        Some(incoming) => {
                            let now = start.elapsed().as_secs_f64();
                            if absorb_feedback(machine, &incoming, now)? {
                                last_liveness = Instant::now();
                            }
                            last_progress = Instant::now();
                            last_event = Some(progress_event(&incoming, false));
                        }
                        None => break,
                    }
                }
            }
            SenderStep::WaitUntil(t) => {
                let idle = Instant::now().duration_since(last_progress);
                if idle > rt.stall_timeout {
                    let waited = idle.as_secs_f64();
                    obs.emit(now, || Event::StallTimeout {
                        role: Role::Sender,
                        waited_secs: waited,
                    });
                    obs.emit(now, || Event::SessionEnd {
                        role: Role::Sender,
                        outcome: Outcome::Stalled,
                    });
                    return Err(ProtocolError::Stalled {
                        waited_secs: waited,
                        last_progress: last_event,
                    });
                }
                let wait = clamp_wait(
                    t - now,
                    Duration::from_micros(100),
                    Duration::from_millis(50),
                );
                if let Some(incoming) = res.recv(transport, wait, now, obs)? {
                    let now = start.elapsed().as_secs_f64();
                    if absorb_feedback(machine, &incoming, now)? {
                        last_liveness = Instant::now();
                    }
                    last_progress = Instant::now();
                    last_event = Some(progress_event(&incoming, false));
                }
            }
        }
    }
}

/// Label a driver error for postmortem artifacts (`"quarantined"`,
/// `"stalled"`, `"sender_gone"`, or `"failed"`).
pub fn error_outcome(err: &ProtocolError) -> &'static str {
    match err {
        ProtocolError::Quarantined { .. } => "quarantined",
        ProtocolError::Stalled { .. } => "stalled",
        ProtocolError::SenderGone { .. } => "sender_gone",
        _ => "failed",
    }
}

/// [`drive_sender_obs`] with a session flight recorder: when the session
/// ends degraded, quarantined, or with any other error, the recorder's
/// ring is frozen into a [`Postmortem`] — attached to the
/// [`SessionReport`] on the degraded path, returned alongside the error
/// otherwise (errors carry no report to attach to).
///
/// `flight` only supplies the postmortem; it sees events solely through
/// `obs`, so tee it in (`obs.tee(flight)`) — and give the *machine* the
/// teed handle too — before calling, or the ring stays empty.
///
/// # Errors
/// Same as [`drive_sender_obs`].
pub fn drive_sender_flight<S: SenderMachine, T: Transport>(
    machine: &mut S,
    transport: &mut T,
    rt: &RuntimeConfig,
    obs: &Obs,
    flight: &FlightRecorder,
) -> (
    Result<SessionReport, ProtocolError>,
    Option<pm_obs::Postmortem>,
) {
    match drive_sender_obs(machine, transport, rt, obs) {
        Ok(mut report) => {
            if report.is_degraded() {
                let pm = flight.postmortem(Role::Sender.as_str(), "degraded", None);
                report.postmortem = Some(pm.clone());
                (Ok(report), Some(pm))
            } else {
                (Ok(report), None)
            }
        }
        Err(e) => {
            let pm = flight.postmortem(Role::Sender.as_str(), error_outcome(&e), None);
            (Err(e), Some(pm))
        }
    }
}

/// [`drive_receiver_obs`] with a session flight recorder: any error
/// outcome (stall, quarantine, sender gone) freezes the ring into a
/// [`Postmortem`]. Completed receivers produce none — a receiver has no
/// degraded-but-ok state. Same tee caveat as [`drive_sender_flight`].
///
/// # Errors
/// Same as [`drive_receiver_obs`].
pub fn drive_receiver_flight<R: ReceiverMachine, T: Transport>(
    machine: &mut R,
    transport: &mut T,
    rt: &RuntimeConfig,
    obs: &Obs,
    flight: &FlightRecorder,
) -> (
    Result<ReceiverReport, ProtocolError>,
    Option<pm_obs::Postmortem>,
) {
    match drive_receiver_obs(machine, transport, rt, obs) {
        Ok(report) => (Ok(report), None),
        Err(e) => {
            let pm = flight.postmortem(Role::Receiver.as_str(), error_outcome(&e), None);
            (Err(e), Some(pm))
        }
    }
}

/// Feed one incoming message to a sender machine and report whether it
/// proved an *unfinished* receiver is still out there working — the signal
/// the eviction clock resets on.
///
/// The classification is machine-informed, not wire-informed: a NAK counts
/// only if the machine actually absorbed it as feedback (the carousel
/// ignores NAKs by design, so a NAK storm must not keep its dead receivers
/// unevictable), and a Done counts only if it grew the done population
/// (duplicate Dones and announce/data echoes from self-delivered multicast
/// must not postpone eviction of a receiver that actually died).
///
/// # Errors
/// Protocol errors from the machine's `handle`.
pub fn absorb_feedback<S: SenderMachine + ?Sized>(
    machine: &mut S,
    msg: &Message,
    now: f64,
) -> Result<bool, ProtocolError> {
    let done_before = machine.done_count();
    let feedback_before = machine.counters().feedback_received;
    machine.handle(msg, now)?;
    Ok(match msg {
        Message::Nak { .. } | Message::NakPacket { .. } => {
            machine.counters().feedback_received > feedback_before
        }
        Message::Done { .. } => machine.done_count() > done_before,
        _ => false,
    })
}

/// Drive a receiver machine until the transfer is complete *and* the
/// sender has closed the session (so late polls still get `Done` answers),
/// or until the sender disappears.
///
/// # Errors
/// [`ProtocolError::SenderGone`] if FIN arrives before completion,
/// [`ProtocolError::Stalled`] when nothing happens for the stall timeout
/// (unless the transfer is already complete — then the lost FIN is
/// forgiven and the data returned).
pub fn drive_receiver<R: ReceiverMachine, T: Transport>(
    machine: &mut R,
    transport: &mut T,
    rt: &RuntimeConfig,
) -> Result<ReceiverReport, ProtocolError> {
    drive_receiver_obs(machine, transport, rt, &Obs::null())
}

/// [`drive_receiver`] with runtime lifecycle events (`stall_timeout`,
/// `linger_expired`, `session_end`) emitted to `obs`. Per-message events
/// come from the machine and transport, not the driver.
///
/// # Errors
/// Same as [`drive_receiver`]; `Stalled` errors carry the last event that
/// counted as progress.
pub fn drive_receiver_obs<R: ReceiverMachine, T: Transport>(
    machine: &mut R,
    transport: &mut T,
    rt: &RuntimeConfig,
    obs: &Obs,
) -> Result<ReceiverReport, ProtocolError> {
    let start = Instant::now();
    let mut last_progress = start;
    let mut last_event: Option<Event> = None;
    let mut res = ResilienceState::new(rt.resilience);
    let mut outbound: Vec<Message> = Vec::new();
    let mut inbox: Vec<Message> = Vec::new();
    loop {
        let now = start.elapsed().as_secs_f64();

        // Fire due NAK timers.
        for action in machine.on_timer(now) {
            if let ReceiverAction::Send(m) = action {
                outbound.push(m);
            }
        }
        for m in std::mem::take(&mut outbound) {
            res.send(transport, &m, start, obs, &mut inbox)?;
            last_progress = Instant::now();
            last_event = Some(progress_event(&m, true));
        }
        // Datagrams that arrived while a retry backoff was being waited
        // out; their responses go out on the next loop turn.
        for msg in inbox.drain(..) {
            let now = start.elapsed().as_secs_f64();
            for action in machine.handle(&msg, now)? {
                if let ReceiverAction::Send(m) = action {
                    outbound.push(m);
                }
            }
            last_progress = Instant::now();
            last_event = Some(progress_event(&msg, false));
        }

        if machine.fin_seen() {
            return if machine.is_complete() {
                obs.emit(now, || Event::SessionEnd {
                    role: Role::Receiver,
                    outcome: Outcome::Completed,
                });
                Ok(ReceiverReport {
                    data: machine.take_data()?,
                    counters: *machine.counters(),
                    elapsed: start.elapsed(),
                    corrupt_dropped: res.core.corrupt_dropped(),
                })
            } else {
                obs.emit(now, || Event::SessionEnd {
                    role: Role::Receiver,
                    outcome: Outcome::SenderGone,
                });
                Err(ProtocolError::SenderGone { groups_missing: 1 })
            };
        }

        let idle = Instant::now().duration_since(last_progress);
        if machine.is_complete() && idle > rt.complete_linger {
            // FIN was lost but the data is whole; stop lingering.
            obs.emit(now, || Event::LingerExpired {
                waited_secs: idle.as_secs_f64(),
            });
            obs.emit(now, || Event::SessionEnd {
                role: Role::Receiver,
                outcome: Outcome::Completed,
            });
            return Ok(ReceiverReport {
                data: machine.take_data()?,
                counters: *machine.counters(),
                elapsed: start.elapsed(),
                corrupt_dropped: res.core.corrupt_dropped(),
            });
        }
        if idle > rt.stall_timeout {
            let waited = idle.as_secs_f64();
            obs.emit(now, || Event::StallTimeout {
                role: Role::Receiver,
                waited_secs: waited,
            });
            obs.emit(now, || Event::SessionEnd {
                role: Role::Receiver,
                outcome: Outcome::Stalled,
            });
            return Err(ProtocolError::Stalled {
                waited_secs: waited,
                last_progress: last_event,
            });
        }

        // Sleep until the next NAK deadline (or a short poll tick).
        let timeout = match machine.next_deadline() {
            Some(d) => clamp_wait(
                d - now,
                Duration::from_micros(100),
                Duration::from_millis(20),
            ),
            None => Duration::from_millis(20),
        };
        if let Some(msg) = res.recv(transport, timeout, now, obs)? {
            let now = start.elapsed().as_secs_f64();
            for action in machine.handle(&msg, now)? {
                if let ReceiverAction::Send(m) = action {
                    outbound.push(m);
                }
            }
            last_progress = Instant::now();
            last_event = Some(progress_event(&msg, false));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CompletionPolicy, NpConfig};
    use pm_net::MemHub;

    fn config(recv: u32) -> NpConfig {
        let mut c = NpConfig::small(CompletionPolicy::KnownReceivers(recv));
        c.k = 4;
        c.h = 8;
        c.payload_len = 64;
        c.nak_slot = 0.001;
        c
    }

    fn rt() -> RuntimeConfig {
        RuntimeConfig {
            packet_spacing: Duration::from_micros(50),
            stall_timeout: Duration::from_secs(5),
            complete_linger: Duration::from_millis(300),
            ..RuntimeConfig::default()
        }
    }

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 17 % 253) as u8).collect()
    }

    #[test]
    fn np_lossless_end_to_end() {
        let hub = MemHub::new();
        let bytes = payload(3000);
        let mut sender_tp = hub.join();
        let mut recv_tp = hub.join();
        let data = bytes.clone();
        let sender = std::thread::spawn(move || {
            let mut s = NpSender::new(1, &data, config(1)).unwrap();
            drive_sender(&mut s, &mut sender_tp, &rt()).unwrap()
        });
        let mut r = NpReceiver::new(7, 1, 0.001, 3);
        let report = drive_receiver(&mut r, &mut recv_tp, &rt()).unwrap();
        let sender_report = sender.join().unwrap();
        assert_eq!(report.data, bytes);
        assert!(sender_report.counters.data_sent > 0);
        assert_eq!(
            sender_report.counters.repairs_sent, 0,
            "lossless needs no parities"
        );
    }

    #[test]
    fn n2_lossless_end_to_end() {
        let hub = MemHub::new();
        let bytes = payload(2000);
        let mut sender_tp = hub.join();
        let mut recv_tp = hub.join();
        let data = bytes.clone();
        let sender = std::thread::spawn(move || {
            let mut s = N2Sender::new(2, &data, config(1)).unwrap();
            drive_sender(&mut s, &mut sender_tp, &rt()).unwrap()
        });
        let mut r = N2Receiver::new(8, 2, 0.001, 4);
        let report = drive_receiver(&mut r, &mut recv_tp, &rt()).unwrap();
        sender.join().unwrap();
        assert_eq!(report.data, bytes);
    }

    #[test]
    fn receiver_stall_without_sender() {
        let hub = MemHub::new();
        let mut tp = hub.join();
        let mut r = NpReceiver::new(1, 1, 0.001, 5);
        let fast = RuntimeConfig {
            packet_spacing: Duration::from_micros(50),
            stall_timeout: Duration::from_millis(100),
            complete_linger: Duration::from_millis(300),
            ..RuntimeConfig::default()
        };
        match drive_receiver(&mut r, &mut tp, &fast) {
            Err(ProtocolError::Stalled { .. }) => {}
            other => panic!("expected stall, got {other:?}"),
        }
    }

    #[test]
    fn quarantine_trips_on_relentless_corruption() {
        // A hub where every datagram the receiver-side driver pulls is
        // corrupt: after `corrupt_quarantine` drops the session aborts
        // with the typed error instead of spinning forever.
        let hub = MemHub::new();
        let feeder = hub.join();
        let mut tp = hub.join();
        let mut r = NpReceiver::new(1, 1, 0.001, 5);
        let mut cfg = rt();
        cfg.stall_timeout = Duration::from_secs(30);
        cfg.resilience.corrupt_quarantine = 5;
        let driver = std::thread::spawn(move || drive_receiver(&mut r, &mut tp, &cfg));
        // Keep injecting damaged-but-ours datagrams until the driver quits.
        let mut raw = Message::Fin { session: 1 }.encode().to_vec();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        let raw = bytes::Bytes::from(raw);
        let verdict = loop {
            feeder.send_raw(raw.clone());
            if driver.is_finished() {
                break driver.join().expect("driver must not panic");
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        match verdict {
            Err(ProtocolError::Quarantined { corrupt_dropped }) => {
                assert_eq!(corrupt_dropped, 5);
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
    }

    #[test]
    fn sender_evicts_silent_receiver_and_degrades() {
        // Two receivers announced, one alive: with an eviction deadline
        // the sender completes for the responsive one and reports the
        // straggler instead of stalling out.
        let hub = MemHub::new();
        let bytes = payload(1500);
        let mut sender_tp = hub.join();
        let mut recv_tp = hub.join();
        let data = bytes.clone();
        let sender = std::thread::spawn(move || {
            let mut s = NpSender::new(5, &data, config(2)).unwrap();
            let mut cfg = rt();
            cfg.resilience.eviction_timeout = Some(Duration::from_millis(250));
            drive_sender(&mut s, &mut sender_tp, &cfg).unwrap()
        });
        let mut r = NpReceiver::new(7, 5, 0.001, 3);
        let report = drive_receiver(&mut r, &mut recv_tp, &rt()).unwrap();
        let session = sender.join().unwrap();
        assert_eq!(report.data, bytes);
        assert!(session.is_degraded());
        assert_eq!(session.evicted, 1);
        assert_eq!(session.completed, vec![7]);
    }

    #[test]
    fn clamp_wait_is_total_over_hostile_floats() {
        let floor = Duration::from_micros(100);
        let ceil = Duration::from_millis(50);
        // NaN and non-positive deltas wake immediately-ish at the floor.
        assert_eq!(clamp_wait(f64::NAN, floor, ceil), floor);
        assert_eq!(clamp_wait(f64::NEG_INFINITY, floor, ceil), floor);
        assert_eq!(clamp_wait(-1.0, floor, ceil), floor);
        assert_eq!(clamp_wait(0.0, floor, ceil), floor);
        assert_eq!(clamp_wait(1e-9, floor, ceil), floor);
        // Oversized and infinite deltas cap at the ceiling.
        assert_eq!(clamp_wait(f64::INFINITY, floor, ceil), ceil);
        assert_eq!(clamp_wait(1e300, floor, ceil), ceil);
        assert_eq!(clamp_wait(3600.0, floor, ceil), ceil);
        // In-range deltas pass through.
        assert_eq!(clamp_wait(0.001, floor, ceil), Duration::from_millis(1));
    }

    #[test]
    fn driver_survives_nan_wakeup_time() {
        // A machine returning a NaN (or infinite) wakeup must delay the
        // driver by at most the tick ceiling, never panic it.
        struct NanMachine {
            steps: u32,
            counters: CostCounters,
        }
        impl SenderMachine for NanMachine {
            fn next_step(&mut self, _now: f64) -> SenderStep {
                self.steps += 1;
                match self.steps {
                    1 => SenderStep::WaitUntil(f64::NAN),
                    2 => SenderStep::WaitUntil(f64::INFINITY),
                    _ => SenderStep::Finished,
                }
            }
            fn handle(&mut self, _msg: &Message, _now: f64) -> Result<(), ProtocolError> {
                Ok(())
            }
            fn is_finished(&self) -> bool {
                self.steps >= 3
            }
            fn counters(&self) -> &CostCounters {
                &self.counters
            }
            fn done_count(&self) -> usize {
                0
            }
            fn done_ids(&self) -> Vec<u32> {
                Vec::new()
            }
            fn outstanding(&self) -> u32 {
                0
            }
            fn evict_outstanding(&mut self) -> u32 {
                0
            }
        }
        let hub = MemHub::new();
        let mut tp = hub.join();
        let mut m = NanMachine {
            steps: 0,
            counters: CostCounters::default(),
        };
        let report = drive_sender(&mut m, &mut tp, &rt()).expect("NaN wakeup must not abort");
        assert_eq!(report.completed, Vec::<u32>::new());
    }

    #[test]
    fn retry_jitter_is_unbiased_and_deterministic() {
        let mut a = ResilienceCore::new(ResiliencePolicy::default());
        let mut b = ResilienceCore::new(ResiliencePolicy::default());
        let obs = Obs::null();
        // Same seed, same sequence of backoffs.
        for attempt in 1..=16 {
            assert_eq!(
                a.retry_backoff(attempt, 0.0, &obs),
                b.retry_backoff(attempt, 0.0, &obs)
            );
        }
        // The bounded sampler is uniform: over a span that a modulo would
        // bias hard (n just above 2^63, where `rng % n` hits the low half
        // of the range twice as often), low and high halves draw evenly.
        let n = (1u64 << 63) + 1;
        let mut low = 0u64;
        let samples = 20_000;
        for _ in 0..samples {
            let v = a.bounded(n);
            assert!(v < n);
            if v < n / 2 {
                low += 1;
            }
        }
        // A modulo-biased sampler would put ~2/3 of the mass in the low
        // half; the unbiased one stays near 1/2 (±3%, far below 2/3).
        let frac = low as f64 / samples as f64;
        assert!(
            (frac - 0.5).abs() < 0.03,
            "low-half fraction {frac} not uniform"
        );
        // Backoff stays within [base, base * 1.5] of the capped schedule.
        let mut c = ResilienceCore::new(ResiliencePolicy::default());
        let pol = ResiliencePolicy::default();
        for attempt in 1u32..=8 {
            let exp = attempt.saturating_sub(1).min(16);
            let base = pol
                .retry_backoff
                .saturating_mul(1u32 << exp)
                .min(pol.retry_backoff_cap);
            let d = c.retry_backoff(attempt, 0.0, &obs);
            assert!(d >= base && d <= base + base / 2 + Duration::from_nanos(1));
        }
    }

    /// A transport whose first `fail_sends` sends fail transiently and
    /// whose receive path is fed from a queue — exercises the
    /// backoff-without-blocking path.
    struct Flaky {
        fail_sends: u32,
        sends_seen: u32,
        incoming: std::collections::VecDeque<Message>,
    }
    impl Transport for Flaky {
        fn send(&mut self, _msg: &Message) -> Result<(), NetError> {
            self.sends_seen += 1;
            if self.fail_sends > 0 {
                self.fail_sends -= 1;
                Err(NetError::Io(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "flaky uplink",
                )))
            } else {
                Ok(())
            }
        }
        fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Message>, NetError> {
            match self.incoming.pop_front() {
                Some(m) => Ok(Some(m)),
                None => {
                    std::thread::sleep(timeout);
                    Ok(None)
                }
            }
        }
    }

    #[test]
    fn send_backoff_keeps_receiving() {
        // Two transient send failures: the driver must retry to success
        // while capturing the datagrams that arrived during the backoff
        // windows instead of sleeping through them.
        let mut res = ResilienceState::new(ResiliencePolicy {
            send_retries: 3,
            retry_backoff: Duration::from_millis(1),
            retry_backoff_cap: Duration::from_millis(4),
            ..ResiliencePolicy::default()
        });
        let mut tp = Flaky {
            fail_sends: 2,
            sends_seen: 0,
            incoming: [
                Message::Nak {
                    session: 9,
                    group: 0,
                    needed: 2,
                    round: 1,
                },
                Message::Done {
                    session: 9,
                    receiver: 4,
                },
            ]
            .into_iter()
            .collect(),
        };
        let mut inbox = Vec::new();
        let start = Instant::now();
        res.send(
            &mut tp,
            &Message::Fin { session: 9 },
            start,
            &Obs::null(),
            &mut inbox,
        )
        .expect("retries must succeed");
        assert_eq!(tp.sends_seen, 3, "two failures then success");
        assert_eq!(res.core.send_retries(), 2);
        assert_eq!(inbox.len(), 2, "backoff windows kept receiving");
        assert!(matches!(inbox[0], Message::Nak { .. }));
    }

    #[test]
    fn carousel_evicts_dead_receiver_under_nak_storm() {
        use crate::carousel::{CarouselConfig, CarouselSender, CarouselStop};
        // A carousel pinned in continuous `Transmit` steps by a NAK storm:
        // the hoisted eviction check must still fire for the receiver that
        // never reports Done, and the session must end degraded — not
        // stall, and not spin forever (the pre-fix behavior, where the
        // eviction check lived only in the unreachable `WaitUntil` arm).
        let hub = MemHub::new();
        let mut sender_tp = hub.join();
        let mut feeder = hub.join();
        let session = 77;
        let mut cfg = CarouselConfig::default_with(CarouselStop::AllDone(2));
        cfg.k = 4;
        cfg.h = 2;
        cfg.payload_len = 32;
        let data = payload(256);
        let driver = std::thread::spawn(move || {
            let mut s = CarouselSender::new(session, &data, cfg).unwrap();
            let rt = RuntimeConfig {
                packet_spacing: Duration::from_micros(20),
                stall_timeout: Duration::from_secs(20),
                complete_linger: Duration::from_millis(100),
                resilience: ResiliencePolicy {
                    eviction_timeout: Some(Duration::from_millis(200)),
                    ..ResiliencePolicy::default()
                },
            };
            drive_sender(&mut s, &mut sender_tp, &rt)
        });
        // One live receiver reports Done; the other stays silent forever
        // while junk NAKs hammer the sender.
        feeder
            .send(&Message::Done {
                session,
                receiver: 1,
            })
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        let report = loop {
            feeder
                .send(&Message::Nak {
                    session,
                    group: 0,
                    needed: 1,
                    round: 1,
                })
                .unwrap();
            if driver.is_finished() {
                break driver.join().expect("driver must not panic");
            }
            assert!(
                Instant::now() < deadline,
                "sender never evicted the dead receiver (eviction check unreachable?)"
            );
            std::thread::sleep(Duration::from_millis(1));
        };
        let report = report.expect("degraded completion, not an error");
        assert!(report.is_degraded());
        assert_eq!(report.evicted, 1);
        assert_eq!(report.completed, vec![1]);
    }

    #[test]
    fn sender_stall_without_receivers() {
        let hub = MemHub::new();
        let mut tp = hub.join();
        let mut s = NpSender::new(3, &payload(500), config(1)).unwrap();
        let fast = RuntimeConfig {
            packet_spacing: Duration::from_micros(50),
            stall_timeout: Duration::from_millis(150),
            complete_linger: Duration::from_millis(300),
            ..RuntimeConfig::default()
        };
        match drive_sender(&mut s, &mut tp, &fast) {
            Err(ProtocolError::Stalled { .. }) => {}
            other => panic!("expected stall, got {other:?}"),
        }
    }
}
