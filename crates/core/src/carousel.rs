//! Feedback-free carousel distribution — the paper's **Integrated FEC 1**
//! as a real protocol.
//!
//! Section 4.2 describes the variant: "parity packets are transmitted with
//! the same rate 1/delta immediately following the original packets. When a
//! receiver has received enough parity packets, it leaves the multicast
//! group. In this scheme no feedback is needed for loss recovery." This is
//! the satellite/broadcast-distribution mode: the sender cycles the FEC
//! blocks of the whole transfer — data first, then parities, groups
//! interleaved — and any receiver that collects `k` packets of every group
//! reconstructs the transfer and departs. Late joiners are first-class:
//! every cycle is as good as the first.
//!
//! The sender is a [`crate::runtime::SenderMachine`], so the threaded
//! runtime and the deterministic [`crate::harness`] both drive it; the
//! ordinary [`crate::NpReceiver`] is the receiver (it never gets polled, so
//! it never sends repair feedback — its only transmission is the final
//! `Done`, which [`CarouselStop::AllDone`] uses for termination and
//! [`CarouselStop::Cycles`] ignores entirely).

use bytes::Bytes;

use pm_net::Message;
use pm_rse::{CodeSpec, Interleaver, RseEncoder};

use crate::costs::CostCounters;
use crate::error::ProtocolError;
use crate::sender::SenderStep;
use crate::session::SessionPlan;

/// When the carousel stops spinning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CarouselStop {
    /// Transmit this many full cycles, then FIN. Fully feedback-free.
    Cycles(u32),
    /// Spin until this many distinct receivers reported `Done` (the only
    /// feedback used), then FIN.
    AllDone(u32),
}

/// Carousel configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CarouselConfig {
    /// Data packets per transmission group.
    pub k: usize,
    /// Parities carried per group *in every cycle*.
    pub h: usize,
    /// Payload bytes per packet.
    pub payload_len: usize,
    /// Termination rule.
    pub stop: CarouselStop,
    /// Emit a session announce every this many packets (receivers may join
    /// mid-cycle and need the geometry).
    pub announce_every: usize,
}

impl CarouselConfig {
    /// `k = 20, h = 4` (20% redundancy per cycle), announce every 50
    /// packets.
    pub fn default_with(stop: CarouselStop) -> Self {
        CarouselConfig {
            k: 20,
            h: 4,
            payload_len: 1024,
            stop,
            announce_every: 50,
        }
    }

    fn validate(&self) -> Result<(), ProtocolError> {
        if self.k == 0 || self.k + self.h > 255 {
            return Err(ProtocolError::Config(format!(
                "bad carousel geometry k={} h={}",
                self.k, self.h
            )));
        }
        if self.payload_len == 0 || self.payload_len > pm_net::wire::MAX_PAYLOAD {
            return Err(ProtocolError::Config("payload_len out of range".into()));
        }
        if self.announce_every == 0 {
            return Err(ProtocolError::Config(
                "announce_every must be positive".into(),
            ));
        }
        if let CarouselStop::Cycles(0) = self.stop {
            return Err(ProtocolError::Config("Cycles(0) transmits nothing".into()));
        }
        if let CarouselStop::AllDone(0) = self.stop {
            return Err(ProtocolError::Config("AllDone(0) is vacuous".into()));
        }
        Ok(())
    }
}

/// The carousel sender state machine.
pub struct CarouselSender {
    cfg: CarouselConfig,
    plan: SessionPlan,
    /// All packets of all groups in one interleaved transmission cycle:
    /// `(group, block_index, payload)`.
    schedule: Vec<(u32, u16, Bytes)>,
    cursor: usize,
    cycles_done: u32,
    since_announce: usize,
    done_receivers: std::collections::BTreeSet<u32>,
    counters: CostCounters,
    fin_sent: bool,
}

impl CarouselSender {
    /// Pre-encode the transfer and build the interleaved cycle schedule.
    ///
    /// # Errors
    /// Configuration or coding failures.
    pub fn new(session: u32, data: &[u8], cfg: CarouselConfig) -> Result<Self, ProtocolError> {
        cfg.validate()?;
        let plan = SessionPlan::new(session, data.len() as u64, cfg.k, cfg.h, cfg.payload_len)?;
        let groups = plan.split(data);
        let mut counters = CostCounters::default();

        // Pre-encode every group's parities (the natural carousel mode —
        // Fig. 18's pre-encoding column).
        let mut per_group: Vec<Vec<(u16, Bytes)>> = Vec::with_capacity(groups.len());
        for (g, packets) in groups.iter().enumerate() {
            let gk = plan.group_k(g as u32);
            let spec = CodeSpec::new(gk, cfg.h)?;
            let enc = RseEncoder::new(spec)?;
            let mut block: Vec<(u16, Bytes)> = packets
                .iter()
                .enumerate()
                .map(|(i, p)| (i as u16, p.clone()))
                .collect();
            for (j, parity) in enc.encode_all(packets)?.into_iter().enumerate() {
                counters.parities_encoded += 1;
                block.push(((gk + j) as u16, Bytes::from(parity)));
            }
            per_group.push(block);
        }

        // Interleave across groups: transmit position 0 of every group,
        // then position 1, ... — a loss burst of length L damages each
        // block by at most ceil(L / groups) (see `pm_rse::Interleaver`).
        let mut schedule = Vec::new();
        if !per_group.is_empty() {
            let max_len = per_group.iter().map(Vec::len).max().unwrap_or(0);
            let _guarantee = Interleaver::new(per_group.len().max(1), max_len.max(1));
            for pos in 0..max_len {
                for (g, block) in per_group.iter().enumerate() {
                    if let Some((idx, payload)) = block.get(pos) {
                        schedule.push((g as u32, *idx, payload.clone()));
                    }
                }
            }
        }
        Ok(CarouselSender {
            cfg,
            plan,
            schedule,
            cursor: 0,
            cycles_done: 0,
            since_announce: 0,
            done_receivers: std::collections::BTreeSet::new(),
            counters,
            fin_sent: false,
        })
    }

    /// Session plan.
    pub fn plan(&self) -> &SessionPlan {
        &self.plan
    }

    /// Work counters.
    pub fn counters(&self) -> &CostCounters {
        &self.counters
    }

    /// Full cycles completed so far.
    pub fn cycles_done(&self) -> u32 {
        self.cycles_done
    }

    /// True once FIN went out.
    pub fn is_finished(&self) -> bool {
        self.fin_sent
    }

    fn stop_reached(&self) -> bool {
        match self.cfg.stop {
            CarouselStop::Cycles(c) => self.cycles_done >= c,
            CarouselStop::AllDone(r) => self.done_receivers.len() as u32 >= r,
        }
    }

    /// Next action (same contract as [`crate::NpSender::next_step`]).
    pub fn next_step(&mut self, _now: f64) -> SenderStep {
        if self.fin_sent {
            return SenderStep::Finished;
        }
        if self.stop_reached() || self.schedule.is_empty() {
            self.fin_sent = true;
            return SenderStep::Transmit(Message::Fin {
                session: self.plan.session,
            });
        }
        // Periodic announce keeps late joiners informed.
        if self.since_announce == 0 {
            self.since_announce = self.cfg.announce_every;
            self.counters.feedback_sent += 1;
            return SenderStep::Transmit(self.plan.announce());
        }
        self.since_announce -= 1;
        let (group, index, payload) = self.schedule[self.cursor].clone();
        self.cursor += 1;
        if self.cursor == self.schedule.len() {
            self.cursor = 0;
            self.cycles_done += 1;
        }
        let gk = self.plan.group_k(group) as u16;
        if index < gk {
            self.counters.data_sent += 1;
        } else {
            self.counters.repairs_sent += 1;
        }
        SenderStep::Transmit(Message::Packet {
            session: self.plan.session,
            group,
            index,
            k: gk,
            n: gk + self.plan.h,
            payload,
        })
    }

    /// Feed one received message. Only `Done` matters (and only under
    /// [`CarouselStop::AllDone`]); everything else is ignored — the whole
    /// point of the scheme.
    ///
    /// # Errors
    /// None; fallible for driver symmetry.
    pub fn handle(&mut self, msg: &Message, _now: f64) -> Result<(), ProtocolError> {
        if msg.session() != self.plan.session {
            return Ok(());
        }
        if let Message::Done { receiver, .. } = msg {
            self.counters.feedback_received += 1;
            self.done_receivers.insert(*receiver);
        }
        Ok(())
    }
}

impl crate::runtime::SenderMachine for CarouselSender {
    fn next_step(&mut self, now: f64) -> SenderStep {
        CarouselSender::next_step(self, now)
    }
    fn handle(&mut self, msg: &Message, now: f64) -> Result<(), ProtocolError> {
        CarouselSender::handle(self, msg, now)
    }
    fn is_finished(&self) -> bool {
        CarouselSender::is_finished(self)
    }
    fn counters(&self) -> &CostCounters {
        CarouselSender::counters(self)
    }
    fn done_count(&self) -> usize {
        self.done_receivers.len()
    }
    fn done_ids(&self) -> Vec<u32> {
        self.done_receivers.iter().copied().collect()
    }
    fn outstanding(&self) -> u32 {
        match self.cfg.stop {
            CarouselStop::AllDone(r) => r.saturating_sub(self.done_receivers.len() as u32),
            // Cycle-bounded carousels owe nobody anything.
            CarouselStop::Cycles(_) => 0,
        }
    }
    fn evict_outstanding(&mut self) -> u32 {
        let evicted = crate::runtime::SenderMachine::outstanding(self);
        if evicted > 0 {
            self.cfg.stop = CarouselStop::AllDone(self.done_receivers.len() as u32);
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_simulation, HarnessConfig};
    use crate::receiver::NpReceiver;
    use pm_loss::IndependentLoss;

    const SESSION: u32 = 0xCA80;

    fn data(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 37 % 251) as u8).collect()
    }

    fn cfg(stop: CarouselStop) -> CarouselConfig {
        CarouselConfig {
            k: 5,
            h: 2,
            payload_len: 16,
            stop,
            announce_every: 10,
        }
    }

    /// Drain one full cycle's transmissions.
    fn drain_cycle(s: &mut CarouselSender) -> Vec<Message> {
        let mut out = Vec::new();
        let start = s.cycles_done();
        while s.cycles_done() == start && !s.is_finished() {
            match s.next_step(0.0) {
                SenderStep::Transmit(m) => out.push(m),
                other => panic!("carousel never waits: {other:?}"),
            }
        }
        out
    }

    #[test]
    fn schedule_interleaves_groups() {
        let mut s =
            CarouselSender::new(SESSION, &data(5 * 16 * 3), cfg(CarouselStop::Cycles(1))).unwrap();
        let msgs = drain_cycle(&mut s);
        // First packets after the announce alternate across the 3 groups.
        let first_groups: Vec<u32> = msgs
            .iter()
            .filter_map(|m| match m {
                Message::Packet { group, .. } => Some(*group),
                _ => None,
            })
            .take(3)
            .collect();
        assert_eq!(first_groups, vec![0, 1, 2]);
        // Exactly (k + h) * groups data+parity packets per cycle.
        let packets = msgs
            .iter()
            .filter(|m| matches!(m, Message::Packet { .. }))
            .count();
        assert_eq!(packets, (5 + 2) * 3);
        // Announces appear at the configured cadence.
        assert!(msgs.iter().any(|m| matches!(m, Message::Announce { .. })));
    }

    #[test]
    fn cycles_stop_then_fin() {
        let mut s =
            CarouselSender::new(SESSION, &data(5 * 16 * 2), cfg(CarouselStop::Cycles(2))).unwrap();
        let mut fin = false;
        for _ in 0..1000 {
            match s.next_step(0.0) {
                SenderStep::Transmit(Message::Fin { .. }) => {
                    fin = true;
                    break;
                }
                SenderStep::Transmit(_) => {}
                other => panic!("{other:?}"),
            }
        }
        assert!(fin);
        assert_eq!(s.cycles_done(), 2);
        assert!(matches!(s.next_step(0.0), SenderStep::Finished));
    }

    #[test]
    fn feedback_free_delivery_under_loss() {
        // 16 lossy receivers, zero repair feedback: the per-cycle parities
        // plus extra cycles carry everyone home.
        let r = 16usize;
        let payload = data(5 * 16 * 4);
        let mut sender =
            CarouselSender::new(SESSION, &payload, cfg(CarouselStop::Cycles(4))).unwrap();
        let mut receivers: Vec<NpReceiver> = (0..r)
            .map(|i| NpReceiver::new(i as u32, SESSION, 0.002, i as u64))
            .collect();
        let mut loss = IndependentLoss::new(r, 0.1, 99);
        let report = run_simulation(
            &mut sender,
            &mut receivers,
            &mut loss,
            &HarnessConfig::default(),
        )
        .unwrap();
        assert_eq!(
            report.completed, r,
            "all receivers decode from the carousel alone"
        );
        assert_eq!(report.naks_at_sender, 0, "no repair feedback whatsoever");
        for (i, rx) in receivers.iter().enumerate() {
            assert_eq!(rx.take_data().unwrap(), payload, "receiver {i}");
        }
    }

    #[test]
    fn all_done_stops_early() {
        // With AllDone the carousel quits as soon as the population
        // reports in — fewer cycles than the fixed-cycle worst case.
        let r = 4usize;
        let payload = data(5 * 16 * 2);
        let mut scfg = cfg(CarouselStop::AllDone(r as u32));
        scfg.h = 3;
        let mut sender = CarouselSender::new(SESSION, &payload, scfg).unwrap();
        let mut receivers: Vec<NpReceiver> = (0..r)
            .map(|i| NpReceiver::new(i as u32, SESSION, 0.002, i as u64))
            .collect();
        let mut loss = IndependentLoss::new(r, 0.05, 7);
        let report = run_simulation(
            &mut sender,
            &mut receivers,
            &mut loss,
            &HarnessConfig::default(),
        )
        .unwrap();
        assert_eq!(report.completed, r);
        assert!(
            sender.cycles_done() <= 2,
            "should stop quickly: {}",
            sender.cycles_done()
        );
    }

    #[test]
    fn empty_transfer_fins_immediately() {
        let mut s = CarouselSender::new(SESSION, &[], cfg(CarouselStop::Cycles(3))).unwrap();
        assert!(matches!(
            s.next_step(0.0),
            SenderStep::Transmit(Message::Fin { .. })
        ));
    }

    #[test]
    fn config_validation() {
        let bad = CarouselConfig {
            k: 0,
            ..cfg(CarouselStop::Cycles(1))
        };
        assert!(CarouselSender::new(SESSION, &[], bad).is_err());
        let bad = CarouselConfig {
            announce_every: 0,
            ..cfg(CarouselStop::Cycles(1))
        };
        assert!(CarouselSender::new(SESSION, &[], bad).is_err());
        let bad = cfg(CarouselStop::Cycles(0));
        assert!(CarouselSender::new(SESSION, &[], bad).is_err());
        let bad = cfg(CarouselStop::AllDone(0));
        assert!(CarouselSender::new(SESSION, &[], bad).is_err());
    }

    #[test]
    fn late_joiner_completes_from_announce_cadence() {
        // Drive manually: drop every message to the receiver during the
        // first half cycle (it "joined late"), then deliver everything.
        let payload = data(5 * 16 * 2);
        let mut s = CarouselSender::new(SESSION, &payload, cfg(CarouselStop::Cycles(3))).unwrap();
        let mut rx = NpReceiver::new(0, SESSION, 0.002, 1);
        let mut complete = false;
        let mut i = 0usize;
        loop {
            match s.next_step(0.0) {
                SenderStep::Transmit(Message::Fin { .. }) => break,
                SenderStep::Transmit(m) => {
                    i += 1;
                    if i > 10 {
                        for a in rx.handle(&m, i as f64 * 0.001).unwrap() {
                            if matches!(a, crate::receiver::ReceiverAction::Complete) {
                                complete = true;
                            }
                        }
                    }
                }
                other => panic!("{other:?}"),
            }
        }
        assert!(complete, "late joiner must catch up from later cycles");
        assert_eq!(rx.take_data().unwrap(), payload);
    }
}
