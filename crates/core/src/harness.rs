//! Deterministic event-driven harness: the *real* protocol state machines
//! (NP or N2, via the [`crate::runtime`] traits) running against a
//! simulated multicast medium — no threads, no wall clock, reproducible
//! from a seed, and fast enough for receiver populations in the thousands.
//!
//! This closes the gap between the two validation tiers the paper uses:
//! `pm-sim` simulates *idealized schemes* (Section 3's math), while the
//! threaded runtime runs the *implementation* but only at thread-count
//! scale. The harness runs the implementation itself — wire messages,
//! suppression timers, round logic — at Section 3 scale, so claims like
//! "a single NAK per round survives damping at R = 1000" are tested
//! against the actual code.
//!
//! ## Medium model
//!
//! * Multicast transmissions propagate with a fixed one-way `latency`;
//!   consecutive sender transmissions are paced `delta` apart.
//! * Per-receiver loss comes from any [`pm_loss::LossModel`] (independent,
//!   shared-tree, burst). By default, loss applies only to data-plane
//!   packets (`Message::Packet`) and control messages are delivered
//!   reliably — matching the paper's analysis assumptions ("NAKs are never
//!   lost"); set [`HarnessConfig::lossy_control`] to subject feedback to
//!   the same loss process.
//! * Receiver-to-network messages (NAKs, Done) are multicast back to the
//!   sender and to every other receiver (suppression needs to overhear
//!   them), after the same latency.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pm_loss::LossModel;
use pm_net::Message;

use crate::costs::CostCounters;
use crate::error::ProtocolError;
use crate::receiver::ReceiverAction;
use crate::runtime::{ReceiverMachine, SenderMachine};
use crate::sender::SenderStep;

/// Medium and pacing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HarnessConfig {
    /// Spacing between consecutive sender transmissions (the paper's
    /// `delta`), seconds.
    pub delta: f64,
    /// One-way propagation latency, seconds.
    pub latency: f64,
    /// Subject control messages (polls, NAKs, announces, Done, FIN) to the
    /// loss process as well. Default `false` = the paper's assumption.
    pub lossy_control: bool,
    /// Abort the run at this virtual time (safety valve), seconds.
    pub time_cap: f64,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            delta: 0.001,
            latency: 0.005,
            lossy_control: false,
            time_cap: 600.0,
        }
    }
}

/// Outcome of one harness run.
#[derive(Debug, Clone)]
pub struct SimulationReport {
    /// Virtual completion time (sender FIN), seconds.
    pub elapsed: f64,
    /// Sender work counters.
    pub sender: CostCounters,
    /// Per-receiver work counters.
    pub receivers: Vec<CostCounters>,
    /// Receivers that completed (decoded everything).
    pub completed: usize,
    /// Transmissions per data packet actually achieved, `E[M]`.
    pub transmissions_per_packet: f64,
    /// NAKs that reached the sender (feedback-implosion metric).
    pub naks_at_sender: u64,
}

/// Event kinds, ordered by time with deterministic tie-breaking.
#[derive(Debug, Clone, PartialEq)]
enum EventKind {
    /// Give the sender a step (transmission pacing or wake-up).
    SenderStep,
    /// Deliver a message to receiver `idx`.
    DeliverToReceiver { idx: usize, msg: Message },
    /// Deliver a message to the sender.
    DeliverToSender { msg: Message },
    /// Check receiver `idx`'s NAK timers.
    ReceiverTimer { idx: usize },
}

#[derive(Debug, Clone)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

/// Run one full session of `sender` against `receivers` over a simulated
/// multicast medium with per-receiver loss from `loss`.
///
/// # Errors
/// Protocol errors from the machines, or [`ProtocolError::Stalled`] if the
/// virtual time cap is reached before the sender finishes.
///
/// # Panics
/// Panics if `loss.receivers() != receivers.len()` (caller wiring bug).
pub fn run_simulation<S, R, L>(
    sender: &mut S,
    receivers: &mut [R],
    loss: &mut L,
    cfg: &HarnessConfig,
) -> Result<SimulationReport, ProtocolError>
where
    S: SenderMachine,
    R: ReceiverMachine,
    L: LossModel,
{
    assert_eq!(
        loss.receivers(),
        receivers.len(),
        "loss model population must match receiver count"
    );
    let r = receivers.len();
    let mut lost = vec![false; r];
    let mut queue: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut push =
        |queue: &mut BinaryHeap<Reverse<Event>>, seq: &mut u64, time: f64, kind: EventKind| {
            *seq += 1;
            queue.push(Reverse(Event {
                time,
                seq: *seq,
                kind,
            }));
        };
    push(&mut queue, &mut seq, 0.0, EventKind::SenderStep);

    // The sender never needs more than one pending step event; track the
    // earliest one scheduled so wake-ups don't flood the queue.
    let mut sender_step_at = 0.0f64;
    let mut naks_at_sender = 0u64;
    let mut finished_at: Option<f64> = None;

    while let Some(Reverse(ev)) = queue.pop() {
        let now = ev.time;
        if now > cfg.time_cap {
            return Err(ProtocolError::Stalled {
                waited_secs: cfg.time_cap,
                last_progress: None,
            });
        }
        match ev.kind {
            EventKind::SenderStep => {
                if ev.time < sender_step_at {
                    continue; // superseded by an earlier wake-up
                }
                match sender.next_step(now) {
                    SenderStep::Finished => {
                        finished_at = Some(now);
                        break;
                    }
                    SenderStep::Transmit(msg) => {
                        let is_data = matches!(msg, Message::Packet { .. });
                        if is_data || cfg.lossy_control {
                            loss.sample(now, &mut lost);
                        } else {
                            lost.fill(false);
                        }
                        for (idx, &l) in lost.iter().enumerate() {
                            if !l {
                                push(
                                    &mut queue,
                                    &mut seq,
                                    now + cfg.latency,
                                    EventKind::DeliverToReceiver {
                                        idx,
                                        msg: msg.clone(),
                                    },
                                );
                            }
                        }
                        sender_step_at = now + cfg.delta;
                        push(&mut queue, &mut seq, sender_step_at, EventKind::SenderStep);
                    }
                    SenderStep::WaitUntil(t) => {
                        sender_step_at = t.max(now + cfg.delta);
                        push(&mut queue, &mut seq, sender_step_at, EventKind::SenderStep);
                    }
                }
            }
            EventKind::DeliverToSender { msg } => {
                if matches!(msg, Message::Nak { .. }) {
                    naks_at_sender += 1;
                }
                sender.handle(&msg, now)?;
                // Feedback may have queued repair work: wake the sender.
                if now < sender_step_at {
                    sender_step_at = now;
                    push(&mut queue, &mut seq, now, EventKind::SenderStep);
                }
            }
            EventKind::DeliverToReceiver { idx, msg } => {
                let actions = receivers[idx].handle(&msg, now)?;
                dispatch_receiver_actions(
                    actions, idx, now, r, cfg, loss, &mut lost, &mut queue, &mut seq, &mut push,
                );
                if let Some(d) = receivers[idx].next_deadline() {
                    push(
                        &mut queue,
                        &mut seq,
                        d.max(now),
                        EventKind::ReceiverTimer { idx },
                    );
                }
            }
            EventKind::ReceiverTimer { idx } => {
                let actions = receivers[idx].on_timer(now);
                dispatch_receiver_actions(
                    actions, idx, now, r, cfg, loss, &mut lost, &mut queue, &mut seq, &mut push,
                );
                if let Some(d) = receivers[idx].next_deadline() {
                    push(
                        &mut queue,
                        &mut seq,
                        d.max(now),
                        EventKind::ReceiverTimer { idx },
                    );
                }
            }
        }
    }

    let elapsed = match finished_at {
        Some(t) => t,
        None => {
            return Err(ProtocolError::Stalled {
                waited_secs: cfg.time_cap,
                last_progress: None,
            })
        }
    };
    let sender_counters = *sender.counters();
    let tx = sender_counters.data_sent + sender_counters.repairs_sent;
    Ok(SimulationReport {
        elapsed,
        sender: sender_counters,
        receivers: receivers.iter().map(|m| *m.counters()).collect(),
        completed: receivers.iter().filter(|m| m.is_complete()).count(),
        transmissions_per_packet: tx as f64 / sender_counters.data_sent.max(1) as f64,
        naks_at_sender,
    })
}

/// Multicast a receiver's outbound messages: to the sender and to every
/// *other* receiver (suppression overhears), all after the medium latency.
#[allow(clippy::too_many_arguments)]
fn dispatch_receiver_actions<L: LossModel>(
    actions: Vec<ReceiverAction>,
    from: usize,
    now: f64,
    r: usize,
    cfg: &HarnessConfig,
    loss: &mut L,
    lost: &mut [bool],
    queue: &mut BinaryHeap<Reverse<Event>>,
    seq: &mut u64,
    push: &mut impl FnMut(&mut BinaryHeap<Reverse<Event>>, &mut u64, f64, EventKind),
) {
    for action in actions {
        let ReceiverAction::Send(msg) = action else {
            continue;
        };
        push(
            queue,
            seq,
            now + cfg.latency,
            EventKind::DeliverToSender { msg: msg.clone() },
        );
        if cfg.lossy_control {
            loss.sample(now, lost);
        } else {
            lost.fill(false);
        }
        #[allow(clippy::needless_range_loop)] // idx feeds both lost[] and the event
        for idx in 0..r {
            if idx != from && !lost[idx] {
                push(
                    queue,
                    seq,
                    now + cfg.latency,
                    EventKind::DeliverToReceiver {
                        idx,
                        msg: msg.clone(),
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CompletionPolicy, NpConfig};
    use crate::receiver::NpReceiver;
    use crate::sender::NpSender;
    use pm_loss::IndependentLoss;

    const SESSION: u32 = 0x5CA1E;

    fn config(receivers: u32, k: usize) -> NpConfig {
        let mut c = NpConfig::small(CompletionPolicy::KnownReceivers(receivers));
        c.k = k;
        c.h = 255 - k;
        c.payload_len = 8; // payload content is irrelevant to the dynamics
        c.nak_slot = 0.002;
        c.round_timeout = 0.05;
        c
    }

    fn run_np(
        r: usize,
        k: usize,
        p: f64,
        bytes: usize,
        seed: u64,
        cfg: &HarnessConfig,
    ) -> SimulationReport {
        let data: Vec<u8> = (0..bytes).map(|i| (i % 251) as u8).collect();
        let mut sender = NpSender::new(SESSION, &data, config(r as u32, k)).unwrap();
        let mut receivers: Vec<NpReceiver> = (0..r)
            .map(|i| NpReceiver::new(i as u32, SESSION, 0.002, seed + i as u64))
            .collect();
        let mut loss = IndependentLoss::new(r, p, seed);
        run_simulation(&mut sender, &mut receivers, &mut loss, cfg).unwrap()
    }

    #[test]
    fn lossless_completes_in_one_round() {
        let report = run_np(16, 5, 0.0, 400, 1, &HarnessConfig::default());
        assert_eq!(report.completed, 16);
        assert_eq!(report.sender.repairs_sent, 0);
        assert_eq!(report.naks_at_sender, 0);
        assert!((report.transmissions_per_packet - 1.0).abs() < 1e-9);
    }

    #[test]
    fn implementation_tracks_analytical_bound_at_scale() {
        // R = 200 real NpReceivers — far beyond what threads could do in a
        // unit test — with 5% loss. The protocol's achieved E[M] must land
        // near Eq. (6).
        let (r, k, p) = (200usize, 20usize, 0.05);
        let report = run_np(r, k, p, 20 * 8 * 10, 7, &HarnessConfig::default());
        assert_eq!(report.completed, r);
        let bound = pm_analysis::integrated::lower_bound(
            k,
            0,
            &pm_analysis::Population::homogeneous(p, r as u64),
        );
        assert!(
            report.transmissions_per_packet < bound * 1.30,
            "E[M] {} vs bound {bound}",
            report.transmissions_per_packet
        );
        assert!(report.transmissions_per_packet >= 1.0);
    }

    #[test]
    fn suppression_keeps_feedback_sublinear() {
        // The paper's scalability claim for NP's feedback: NAK count at
        // the sender grows far slower than R.
        let cfg = HarnessConfig {
            latency: 0.0005,
            ..Default::default()
        };
        let naks_per_r: Vec<(usize, u64)> = [10usize, 100, 400]
            .iter()
            .map(|&r| {
                let report = run_np(r, 10, 0.05, 10 * 8 * 6, 13, &cfg);
                assert_eq!(report.completed, r);
                (r, report.naks_at_sender)
            })
            .collect();
        let (r_small, naks_small) = naks_per_r[0];
        let (r_big, naks_big) = naks_per_r[2];
        let growth = naks_big as f64 / naks_small.max(1) as f64;
        let population_growth = r_big as f64 / r_small as f64;
        assert!(
            growth < population_growth / 2.0,
            "NAK growth {growth:.1}x should stay far below population growth {population_growth:.0}x ({naks_per_r:?})"
        );
    }

    #[test]
    fn lossy_control_still_converges() {
        // With control traffic subject to the same 10% loss, the recovery
        // machinery (announce heartbeats, stale-NAK quarantine) must still
        // complete the session.
        let cfg = HarnessConfig {
            lossy_control: true,
            ..Default::default()
        };
        let report = run_np(20, 10, 0.10, 10 * 8 * 4, 21, &cfg);
        assert_eq!(report.completed, 20);
    }

    #[test]
    fn time_cap_surfaces_as_stall() {
        let cfg = HarnessConfig {
            time_cap: 0.000_001,
            ..Default::default()
        };
        let data = vec![0u8; 100];
        let mut sender = NpSender::new(SESSION, &data, config(1, 5)).unwrap();
        let mut receivers = vec![NpReceiver::new(0, SESSION, 0.002, 1)];
        let mut loss = IndependentLoss::new(1, 0.0, 1);
        match run_simulation(&mut sender, &mut receivers, &mut loss, &cfg) {
            Err(ProtocolError::Stalled { .. }) => {}
            other => panic!("expected stall, got {other:?}"),
        }
    }

    #[test]
    fn n2_baseline_runs_in_harness_too() {
        use crate::n2::{N2Receiver, N2Sender};
        let r = 50usize;
        let data: Vec<u8> = (0..2000).map(|i| (i % 251) as u8).collect();
        let mut cfg = config(r as u32, 10);
        cfg.h = 0;
        let mut sender = N2Sender::new(SESSION, &data, cfg).unwrap();
        let mut receivers: Vec<N2Receiver> = (0..r)
            .map(|i| N2Receiver::new(i as u32, SESSION, 0.002, i as u64))
            .collect();
        let mut loss = IndependentLoss::new(r, 0.05, 31);
        let report = run_simulation(
            &mut sender,
            &mut receivers,
            &mut loss,
            &HarnessConfig::default(),
        )
        .unwrap();
        assert_eq!(report.completed, r);
        assert!(
            report.transmissions_per_packet > 1.0,
            "5% loss forces retransmissions"
        );
    }

    #[test]
    fn np_beats_n2_at_scale_in_the_real_implementation() {
        use crate::n2::{N2Receiver, N2Sender};
        let (r, p) = (100usize, 0.05);
        let bytes = 10 * 8 * 8;
        let np = run_np(r, 10, p, bytes, 41, &HarnessConfig::default());
        let data: Vec<u8> = (0..bytes).map(|i| (i % 251) as u8).collect();
        let mut cfg = config(r as u32, 10);
        cfg.h = 0;
        let mut sender = N2Sender::new(SESSION, &data, cfg).unwrap();
        let mut receivers: Vec<N2Receiver> = (0..r)
            .map(|i| N2Receiver::new(i as u32, SESSION, 0.002, i as u64))
            .collect();
        let mut loss = IndependentLoss::new(r, p, 41);
        let n2 = run_simulation(
            &mut sender,
            &mut receivers,
            &mut loss,
            &HarnessConfig::default(),
        )
        .unwrap();
        assert!(
            np.transmissions_per_packet < n2.transmissions_per_packet,
            "NP E[M] {} must beat N2 E[M] {}",
            np.transmissions_per_packet,
            n2.transmissions_per_packet
        );
    }
}
