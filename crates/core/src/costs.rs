//! End-host processing accounting.
//!
//! Section 5 of the paper compares N2 and NP by the *processing work* each
//! packet causes at the end hosts. The state machines increment these
//! counters as they run, and [`CostCounters::processing_time`] prices them
//! with the paper's cost table, giving a measured counterpart to the
//! analytical rates of `pm_analysis::endhost` (used by the Fig. 17/18
//! cross-checks and the protocol benchmarks).

use pm_analysis::CostModel;
use pm_obs::MetricsRegistry;

/// Event counters for one protocol endpoint (sender or receiver).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostCounters {
    /// Data packets multicast (first transmissions).
    pub data_sent: u64,
    /// Parity packets multicast (NP) or retransmitted originals (N2).
    pub repairs_sent: u64,
    /// Packets received and processed.
    pub packets_received: u64,
    /// Parity packets encoded (each costs `k * c_e`).
    pub parities_encoded: u64,
    /// Data packets reconstructed by decoding (each costs `k * c_d`).
    pub packets_decoded: u64,
    /// NAKs/polls transmitted.
    pub feedback_sent: u64,
    /// NAKs/polls received and processed.
    pub feedback_received: u64,
    /// NAKs suppressed by damping (scheduled but never sent).
    pub feedback_suppressed: u64,
    /// Timer events fired or cancelled.
    pub timers: u64,
    /// Duplicate/unneeded packet receptions (discarded).
    pub unneeded_receptions: u64,
}

impl CostCounters {
    /// Total packets multicast.
    pub fn packets_sent(&self) -> u64 {
        self.data_sent + self.repairs_sent
    }

    /// Price the counted work with a cost table; returns seconds of
    /// processing. `k` is the group size (encode/decode cost scales with
    /// it, Eqs. (15)–(16)).
    pub fn processing_time(&self, k: usize, cost: &CostModel) -> f64 {
        self.packets_sent() as f64 * cost.send_packet
            + self.packets_received as f64 * cost.recv_packet
            + self.parities_encoded as f64 * k as f64 * cost.encode_const
            + self.packets_decoded as f64 * k as f64 * cost.decode_const
            + self.feedback_sent as f64 * cost.recv_nak_send
            + self.feedback_received as f64 * cost.recv_nak_other
            + self.timers as f64 * cost.recv_timer
    }

    /// Processing rate in packets/second for a transfer of
    /// `data_packets` useful packets: the measured analogue of the paper's
    /// `Lambda`.
    ///
    /// Returns `f64::INFINITY` when no work was recorded.
    pub fn processing_rate(&self, data_packets: u64, k: usize, cost: &CostModel) -> f64 {
        let t = self.processing_time(k, cost);
        if t <= 0.0 {
            f64::INFINITY
        } else {
            data_packets as f64 / t
        }
    }

    /// Publish the counters into a [`MetricsRegistry`] under
    /// `<prefix>.<field>` names (e.g. `sender.data_sent`). Registry
    /// counters are monotone, so this `add`s the current values — call it
    /// once per endpoint at session end.
    pub fn register_into(&self, reg: &MetricsRegistry, prefix: &str) {
        let fields: [(&str, u64); 10] = [
            ("data_sent", self.data_sent),
            ("repairs_sent", self.repairs_sent),
            ("packets_received", self.packets_received),
            ("parities_encoded", self.parities_encoded),
            ("packets_decoded", self.packets_decoded),
            ("feedback_sent", self.feedback_sent),
            ("feedback_received", self.feedback_received),
            ("feedback_suppressed", self.feedback_suppressed),
            ("timers", self.timers),
            ("unneeded_receptions", self.unneeded_receptions),
        ];
        for (name, value) in fields {
            reg.counter(&format!("{prefix}.{name}")).add(value);
        }
    }

    /// Merge another endpoint's counters (e.g. summing across receivers).
    pub fn merge(&mut self, other: &CostCounters) {
        self.data_sent += other.data_sent;
        self.repairs_sent += other.repairs_sent;
        self.packets_received += other.packets_received;
        self.parities_encoded += other.parities_encoded;
        self.packets_decoded += other.packets_decoded;
        self.feedback_sent += other.feedback_sent;
        self.feedback_received += other.feedback_received;
        self.feedback_suppressed += other.feedback_suppressed;
        self.timers += other.timers;
        self.unneeded_receptions += other.unneeded_receptions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pricing_matches_hand_computation() {
        let c = CostCounters {
            data_sent: 10,
            repairs_sent: 2,
            packets_received: 0,
            parities_encoded: 2,
            packets_decoded: 0,
            feedback_sent: 0,
            feedback_received: 3,
            feedback_suppressed: 1,
            timers: 4,
            unneeded_receptions: 0,
        };
        let cost = CostModel::paper_defaults();
        let t = c.processing_time(20, &cost);
        let expect = 12.0 * cost.send_packet
            + 2.0 * 20.0 * cost.encode_const
            + 3.0 * cost.recv_nak_other
            + 4.0 * cost.recv_timer;
        assert!((t - expect).abs() < 1e-12);
        assert!(c.processing_rate(10, 20, &cost) > 0.0);
    }

    #[test]
    fn empty_counters_are_free() {
        let c = CostCounters::default();
        assert_eq!(c.processing_time(7, &CostModel::paper_defaults()), 0.0);
        assert_eq!(
            c.processing_rate(5, 7, &CostModel::paper_defaults()),
            f64::INFINITY
        );
    }

    #[test]
    fn register_into_publishes_all_fields() {
        let c = CostCounters {
            data_sent: 10,
            feedback_suppressed: 3,
            ..Default::default()
        };
        let reg = MetricsRegistry::new();
        c.register_into(&reg, "sender");
        assert_eq!(reg.counter("sender.data_sent").get(), 10);
        assert_eq!(reg.counter("sender.feedback_suppressed").get(), 3);
        assert_eq!(reg.counter("sender.timers").get(), 0);
        let text = reg.render_text();
        assert!(text.contains("sender.data_sent"));
    }

    #[test]
    fn merge_adds() {
        let mut a = CostCounters {
            data_sent: 1,
            feedback_sent: 2,
            ..Default::default()
        };
        let b = CostCounters {
            data_sent: 3,
            timers: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.data_sent, 4);
        assert_eq!(a.feedback_sent, 2);
        assert_eq!(a.timers, 5);
    }
}
