//! The NP sender — a sans-io state machine.
//!
//! The runtime drives it with a simple loop: call [`NpSender::next_step`]
//! to learn what to do (transmit a message — paced at the application's
//! packet rate —, sleep until a deadline, or stop), and feed every
//! incoming message to [`NpSender::handle`].
//!
//! Transmission follows Section 5.1: groups go out in order, each followed
//! by `POLL(i, s)`; an arriving `NAK(i, l)` *interrupts* the current group
//! (repair work is pushed to the front of the work queue), the sender
//! encodes `l` fresh parities for group `i` (or takes them from the
//! pre-encoded store), multicasts them plus a new poll, and resumes where
//! it left off. Per-group round counters make duplicate NAKs of an
//! already-serviced round harmless.
//!
//! If a pathological receiver exhausts the parity budget `h`, the sender
//! falls back to retransmitting original data packets (functionally the
//! paper's "place the packets into a new TG" — the receiver needs at most
//! `k` specific packets at that point, and originals always help).

use std::collections::{BTreeSet, VecDeque};

use bytes::Bytes;

use pm_net::Message;
use pm_obs::{Event, Histogram, Obs, Role};
use pm_rse::{CodeSpec, RseEncoder};

use crate::config::{CompletionPolicy, NpConfig};
use crate::costs::CostCounters;
use crate::error::ProtocolError;
use crate::session::SessionPlan;

/// What the runtime should do next.
#[derive(Debug, Clone, PartialEq)]
pub enum SenderStep {
    /// Multicast this message (pace data/parity packets at the send rate).
    Transmit(Message),
    /// Nothing to send; wake at the given time (or when a message
    /// arrives).
    WaitUntil(f64),
    /// Session finished (FIN already transmitted).
    Finished,
}

/// Per-group transmission state.
#[derive(Debug, Clone)]
struct GroupProgress {
    /// Current feedback round (1 = initial transmission).
    round: u16,
    /// Parities generated so far (next parity index = k + this).
    parities_used: usize,
    /// Data packets resent after parity exhaustion (round-robin cursor).
    resend_cursor: usize,
    /// When this group last had a repair serviced (recovery-NAK gate).
    last_service: f64,
}

/// NP sender state machine for one session.
pub struct NpSender {
    cfg: NpConfig,
    plan: SessionPlan,
    groups: Vec<Vec<Bytes>>,
    encoders: Vec<(CodeSpec, RseEncoder)>,
    /// Pre-encoded parities per group (full budget) when `cfg.preencode`.
    preencoded: Option<Vec<Vec<Bytes>>>,
    progress: Vec<GroupProgress>,
    queue: VecDeque<Message>,
    /// Next group whose initial round has not been scheduled yet (groups
    /// are scheduled lazily so adaptive parity can learn from feedback).
    next_group: u32,
    /// Observed round-1 NAK demand per group (0 until a NAK arrives).
    round1_demand: Vec<u16>,
    done_receivers: BTreeSet<u32>,
    counters: CostCounters,
    /// Time of the last NAK (or start) for quiescence detection.
    last_demand: f64,
    announce_due: f64,
    fin_sent: bool,
    obs: Obs,
}

impl NpSender {
    /// Build a sender for `data` under `cfg`; `session` identifies the
    /// transfer on the group.
    ///
    /// # Errors
    /// Configuration/geometry errors.
    pub fn new(session: u32, data: &[u8], cfg: NpConfig) -> Result<Self, ProtocolError> {
        cfg.validate()?;
        let plan = SessionPlan::new(session, data.len() as u64, cfg.k, cfg.h, cfg.payload_len)?;
        let groups = plan.split(data);

        // One encoder per distinct geometry (full groups + possibly a
        // short final group).
        let mut encoders: Vec<(CodeSpec, RseEncoder)> = Vec::new();
        for g in 0..plan.groups {
            let spec = CodeSpec::new(plan.group_k(g), cfg.h)?;
            if !encoders.iter().any(|(s, _)| *s == spec) {
                encoders.push((spec, RseEncoder::new(spec)?));
            }
        }

        let mut counters = CostCounters::default();
        let preencoded = if cfg.preencode {
            let mut all = Vec::with_capacity(groups.len());
            for (g, packets) in groups.iter().enumerate() {
                let spec = CodeSpec::new(plan.group_k(g as u32), cfg.h)?;
                let enc = &encoders
                    .iter()
                    .find(|(s, _)| *s == spec)
                    .expect("built above")
                    .1;
                let parities: Vec<Bytes> = enc
                    .encode_all(packets)?
                    .into_iter()
                    .map(Bytes::from)
                    .collect();
                counters.parities_encoded += parities.len() as u64;
                all.push(parities);
            }
            Some(all)
        } else {
            None
        };

        // Initial schedule: announce, then each group's data (+ proactive
        // parities) followed by its poll.
        let mut queue = VecDeque::new();
        queue.push_back(plan.announce());
        let group_count = plan.groups as usize;
        let mut sender = NpSender {
            cfg,
            plan,
            groups,
            encoders,
            preencoded,
            progress: vec![
                GroupProgress {
                    round: 1,
                    parities_used: 0,
                    resend_cursor: 0,
                    last_service: f64::NEG_INFINITY,
                };
                group_count
            ],
            queue,
            next_group: 0,
            round1_demand: vec![0; group_count],
            done_receivers: BTreeSet::new(),
            counters,
            last_demand: 0.0,
            announce_due: 0.0,
            fin_sent: false,
            obs: Obs::null(),
        };
        sender.counters.feedback_sent += 1; // the announce
        Ok(sender)
    }

    /// Emit structured events to `obs` (a `session_start` marks the
    /// attachment point).
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self.obs.emit(0.0, || Event::SessionStart {
            role: Role::Sender,
            session: self.plan.session,
            groups: self.plan.groups,
            bytes: self.plan.total_bytes,
        });
        self
    }

    /// Record per-parity encode latency into `hist` (all geometries).
    pub fn set_encode_timer(&mut self, hist: Histogram) {
        for (_, enc) in &mut self.encoders {
            enc.set_timer(hist.clone());
        }
    }

    fn geometry(&self, g: u32) -> (u16, u16) {
        let gk = self.plan.group_k(g) as u16;
        (gk, gk + self.plan.h)
    }

    fn encoder_for(&self, g: u32) -> &RseEncoder {
        let spec = CodeSpec::new(self.plan.group_k(g), self.cfg.h).expect("validated at build");
        &self
            .encoders
            .iter()
            .find(|(s, _)| *s == spec)
            .expect("built in new()")
            .1
    }

    /// Proactive parity count for the group about to be scheduled: the
    /// configured static `a`, or — under adaptive parity — the rounded-up
    /// mean of the most recent observed round-1 demands.
    fn proactive_count(&self, g: u32) -> usize {
        if !self.cfg.adaptive_parity || g == 0 {
            return self.cfg.proactive_parity.min(self.cfg.h);
        }
        let window = &self.round1_demand[(g as usize).saturating_sub(8)..g as usize];
        let sum: u32 = window.iter().map(|&d| d as u32).sum();
        let mean = (sum as f64 / window.len() as f64).ceil() as usize;
        mean.min(self.cfg.h).min(self.plan.group_k(g))
    }

    fn schedule_initial_group(&mut self, g: u32) -> Result<(), ProtocolError> {
        let (k, n) = self.geometry(g);
        for (i, payload) in self.groups[g as usize].iter().enumerate() {
            self.queue.push_back(Message::Packet {
                session: self.plan.session,
                group: g,
                index: i as u16,
                k,
                n,
                payload: payload.clone(),
            });
        }
        let a = self.proactive_count(g);
        if a > 0 {
            let parities = self.produce_parities(g, a)?;
            for msg in parities {
                self.queue.push_back(msg);
            }
        }
        self.queue.push_back(Message::Poll {
            session: self.plan.session,
            group: g,
            sent: k + a as u16,
            round: 1,
        });
        Ok(())
    }

    /// Produce `count` parity packets for group `g`, falling back to
    /// original-data retransmission once the budget is exhausted.
    fn produce_parities(&mut self, g: u32, count: usize) -> Result<Vec<Message>, ProtocolError> {
        let (k, n) = self.geometry(g);
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let pr = &mut self.progress[g as usize];
            if pr.parities_used < self.cfg.h {
                let j = pr.parities_used;
                pr.parities_used += 1;
                let payload: Bytes = match &self.preencoded {
                    Some(all) => all[g as usize][j].clone(),
                    None => {
                        self.counters.parities_encoded += 1;
                        let enc = self.encoder_for(g);
                        Bytes::from(enc.parity(j, &self.groups[g as usize])?)
                    }
                };
                out.push(Message::Packet {
                    session: self.plan.session,
                    group: g,
                    index: k + j as u16,
                    k,
                    n,
                    payload,
                });
            } else {
                // Budget exhausted: resend originals round-robin.
                let pr = &mut self.progress[g as usize];
                let i = pr.resend_cursor % self.plan.group_k(g);
                pr.resend_cursor += 1;
                out.push(Message::Packet {
                    session: self.plan.session,
                    group: g,
                    index: i as u16,
                    k,
                    n,
                    payload: self.groups[g as usize][i].clone(),
                });
            }
        }
        Ok(out)
    }

    /// Session plan (geometry of the transfer).
    pub fn plan(&self) -> &SessionPlan {
        &self.plan
    }

    /// Processing counters so far.
    pub fn counters(&self) -> &CostCounters {
        &self.counters
    }

    /// Receivers that reported completion.
    pub fn done_count(&self) -> usize {
        self.done_receivers.len()
    }

    /// Identities of the receivers that reported completion, ascending.
    pub fn done_ids(&self) -> Vec<u32> {
        self.done_receivers.iter().copied().collect()
    }

    /// Receiver-dependent sender state in bytes.
    ///
    /// The paper's scalability argument: an NP sender tracks only *who*
    /// reported `Done` — one id per receiver, no per-packet per-receiver
    /// bookkeeping — so this stays at ~4 bytes per receiver no matter how
    /// large the transfer (ROADMAP item 2's acceptance metric, exported
    /// as the `sender.state_bytes_per_receiver` gauge).
    pub fn state_bytes(&self) -> usize {
        self.done_receivers.len() * std::mem::size_of::<u32>()
    }

    /// [`Self::state_bytes`] normalised by the known receiver population
    /// (falls back to the done population under quiescence completion).
    pub fn state_bytes_per_receiver(&self) -> f64 {
        let r = match self.cfg.completion {
            CompletionPolicy::KnownReceivers(r) => r as usize,
            CompletionPolicy::Quiescence(_) => self.done_receivers.len(),
        };
        self.state_bytes() as f64 / r.max(1) as f64
    }

    /// Receivers still outstanding under
    /// [`CompletionPolicy::KnownReceivers`] (0 under quiescence, which has
    /// no roll to call).
    pub fn outstanding(&self) -> u32 {
        match self.cfg.completion {
            CompletionPolicy::KnownReceivers(r) => {
                r.saturating_sub(self.done_receivers.len() as u32)
            }
            CompletionPolicy::Quiescence(_) => 0,
        }
    }

    /// Give up on receivers that never reported `Done`: lower the
    /// known-receivers completion target to the responsive population and
    /// return how many were evicted. A no-op (returning 0) under
    /// quiescence completion or when everyone already answered.
    pub fn evict_outstanding(&mut self) -> u32 {
        let evicted = self.outstanding();
        if evicted > 0 {
            self.cfg.completion =
                CompletionPolicy::KnownReceivers(self.done_receivers.len() as u32);
        }
        evicted
    }

    /// True once FIN has been handed to the transport.
    pub fn is_finished(&self) -> bool {
        self.fin_sent
    }

    fn completion_reached(&self, now: f64) -> bool {
        match self.cfg.completion {
            CompletionPolicy::KnownReceivers(r) => self.done_receivers.len() as u32 >= r,
            CompletionPolicy::Quiescence(q) => now - self.last_demand >= q,
        }
    }

    /// Decide the next action. Call again after performing it (and pace
    /// packet transmissions at the application's send rate).
    pub fn next_step(&mut self, now: f64) -> SenderStep {
        if self.fin_sent {
            return SenderStep::Finished;
        }
        if self.queue.is_empty() && self.next_group < self.plan.groups {
            let g = self.next_group;
            self.next_group += 1;
            // Cannot fail: geometry and packet sizes were validated at
            // construction, and the parity budget arithmetic is internal.
            self.schedule_initial_group(g)
                .expect("validated group schedules");
        }
        if let Some(msg) = self.queue.pop_front() {
            match &msg {
                Message::Packet {
                    session,
                    group,
                    index,
                    k,
                    ..
                } => {
                    if index < k {
                        self.counters.data_sent += 1;
                        self.obs.emit(now, || Event::DataSent {
                            session: *session,
                            group: *group,
                            index: *index,
                        });
                    } else {
                        self.counters.repairs_sent += 1;
                        self.obs.emit(now, || Event::ParitySent {
                            session: *session,
                            group: *group,
                            index: *index,
                        });
                    }
                }
                Message::Poll {
                    session,
                    group,
                    sent,
                    round,
                } => {
                    self.counters.feedback_sent += 1;
                    self.obs.emit(now, || Event::PollSent {
                        session: *session,
                        group: *group,
                        sent: *sent,
                        round: *round,
                    });
                }
                Message::Announce { session, .. } => {
                    self.counters.feedback_sent += 1;
                    // A transmitted announce resets the keep-alive clock.
                    self.announce_due = now + self.cfg.announce_interval;
                    self.obs
                        .emit(now, || Event::AnnounceSent { session: *session });
                }
                _ => {}
            }
            return SenderStep::Transmit(msg);
        }
        if self.completion_reached(now) {
            self.fin_sent = true;
            self.obs.emit(now, || Event::FinSent {
                session: self.plan.session,
            });
            return SenderStep::Transmit(Message::Fin {
                session: self.plan.session,
            });
        }
        // Idle: keep the session discoverable and give the quiescence
        // clock a wake-up point.
        if now >= self.announce_due {
            self.announce_due = now + self.cfg.announce_interval;
            self.counters.feedback_sent += 1;
            self.obs.emit(now, || Event::AnnounceSent {
                session: self.plan.session,
            });
            return SenderStep::Transmit(self.plan.announce());
        }
        let wake = match self.cfg.completion {
            CompletionPolicy::Quiescence(q) => (self.last_demand + q).min(self.announce_due),
            CompletionPolicy::KnownReceivers(_) => self.announce_due,
        };
        SenderStep::WaitUntil(wake)
    }

    /// Feed one received message.
    ///
    /// # Errors
    /// Coding failures while producing repair parities.
    pub fn handle(&mut self, msg: &Message, now: f64) -> Result<(), ProtocolError> {
        if msg.session() != self.plan.session {
            return Ok(());
        }
        match msg {
            Message::Nak {
                group,
                needed,
                round,
                ..
            } => {
                self.counters.feedback_received += 1;
                let g = *group;
                let round_mismatch =
                    g < self.plan.groups && *round != self.progress[g as usize].round;
                self.obs.emit(now, || Event::NakRecv {
                    session: self.plan.session,
                    group: g,
                    needed: *needed,
                    round: *round,
                    stale: round_mismatch,
                });
                if g >= self.plan.groups || *needed == 0 {
                    return Ok(());
                }
                self.last_demand = now;
                let pr = &mut self.progress[g as usize];
                // A NAK echoing the current round is serviced immediately.
                // A *stale* round usually means a duplicate that escaped
                // suppression — ignored — but it can also be a recovery
                // NAK from a receiver that lost an entire repair round
                // (including its poll). Those must still be serviced or
                // the session livelocks, so stale NAKs pass once the group
                // has been quiet for a full round_timeout.
                let stale = *round != pr.round;
                if stale && now - pr.last_service < self.cfg.round_timeout {
                    return Ok(());
                }
                if *round == 1 {
                    self.round1_demand[g as usize] = self.round1_demand[g as usize].max(*needed);
                }
                let pr = &mut self.progress[g as usize];
                pr.round += 1;
                pr.last_service = now;
                let next_round = pr.round;
                let count = (*needed as usize).min(self.plan.group_k(g));
                let mut repair = self.produce_parities(g, count)?;
                self.obs.emit(now, || {
                    let parities = repair
                        .iter()
                        .filter(|m| matches!(m, Message::Packet { index, k, .. } if index >= k))
                        .count() as u16;
                    Event::RepairRound {
                        session: self.plan.session,
                        group: g,
                        round: next_round,
                        parities,
                        originals: count as u16 - parities,
                    }
                });
                repair.push(Message::Poll {
                    session: self.plan.session,
                    group: g,
                    sent: count as u16,
                    round: next_round,
                });
                // Interrupt: repair goes to the front, preserving order.
                for msg in repair.into_iter().rev() {
                    self.queue.push_front(msg);
                }
            }
            Message::Done { receiver, .. } => {
                self.counters.feedback_received += 1;
                self.obs.emit(now, || Event::DoneRecv {
                    session: self.plan.session,
                    receiver: *receiver,
                });
                self.done_receivers.insert(*receiver);
            }
            // Self-delivered traffic on UDP (our own packets/polls) and
            // receiver-side types are ignored.
            Message::Packet { .. }
            | Message::Poll { .. }
            | Message::Announce { .. }
            | Message::Fin { .. }
            | Message::NakPacket { .. }
            | Message::FecFrame { .. } => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SESSION: u32 = 21;

    fn config(recv: u32) -> NpConfig {
        let mut c = NpConfig::small(CompletionPolicy::KnownReceivers(recv));
        c.payload_len = 16;
        c.k = 3;
        c.h = 4;
        c
    }

    fn data(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 7 % 251) as u8).collect()
    }

    /// Drain transmissions until the sender goes idle; returns them.
    fn drain(sender: &mut NpSender, now: f64) -> Vec<Message> {
        let mut out = Vec::new();
        loop {
            match sender.next_step(now) {
                SenderStep::Transmit(m) => out.push(m),
                SenderStep::WaitUntil(_) | SenderStep::Finished => return out,
            }
        }
    }

    #[test]
    fn initial_schedule_order() {
        let mut s = NpSender::new(SESSION, &data(100), config(1)).unwrap();
        let msgs = drain(&mut s, 0.0);
        // 100 bytes / 16 = 7 packets; k = 3 -> groups of 3, 3, 1.
        assert!(matches!(msgs[0], Message::Announce { .. }));
        let mut polls = 0;
        let mut per_group_counts = std::collections::HashMap::new();
        for m in &msgs[1..] {
            match m {
                Message::Packet {
                    group, index, k, ..
                } => {
                    assert!(index < k, "round 1 sends only data");
                    *per_group_counts.entry(*group).or_insert(0usize) += 1;
                }
                Message::Poll { sent, .. } => {
                    polls += 1;
                    assert!(*sent > 0);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(polls, 3);
        assert_eq!(per_group_counts[&0], 3);
        assert_eq!(per_group_counts[&2], 1);
        assert_eq!(s.counters().data_sent, 7);
    }

    #[test]
    fn nak_interrupts_with_parities_and_poll() {
        let mut s = NpSender::new(SESSION, &data(100), config(1)).unwrap();
        let _ = drain(&mut s, 0.0);
        s.handle(
            &Message::Nak {
                session: SESSION,
                group: 0,
                needed: 2,
                round: 1,
            },
            0.01,
        )
        .unwrap();
        let repair = drain(&mut s, 0.01);
        assert_eq!(repair.len(), 3, "2 parities + 1 poll: {repair:?}");
        for m in &repair[..2] {
            match m {
                Message::Packet {
                    group: 0, index, k, ..
                } => assert!(index >= k),
                other => panic!("expected parity, got {other:?}"),
            }
        }
        assert_eq!(
            repair[2],
            Message::Poll {
                session: SESSION,
                group: 0,
                sent: 2,
                round: 2
            }
        );
        assert_eq!(s.counters().repairs_sent, 2);
        assert_eq!(s.counters().parities_encoded, 2);
    }

    #[test]
    fn parities_are_fresh_across_rounds() {
        let mut s = NpSender::new(SESSION, &data(48), config(1)).unwrap();
        let _ = drain(&mut s, 0.0);
        s.handle(
            &Message::Nak {
                session: SESSION,
                group: 0,
                needed: 1,
                round: 1,
            },
            0.01,
        )
        .unwrap();
        let first = drain(&mut s, 0.01);
        s.handle(
            &Message::Nak {
                session: SESSION,
                group: 0,
                needed: 1,
                round: 2,
            },
            0.02,
        )
        .unwrap();
        let second = drain(&mut s, 0.02);
        let idx = |m: &Message| match m {
            Message::Packet { index, .. } => *index,
            _ => panic!("not a packet"),
        };
        assert_ne!(
            idx(&first[0]),
            idx(&second[0]),
            "each round uses new parity indices"
        );
    }

    #[test]
    fn stale_nak_ignored() {
        let mut s = NpSender::new(SESSION, &data(48), config(1)).unwrap();
        let _ = drain(&mut s, 0.0);
        s.handle(
            &Message::Nak {
                session: SESSION,
                group: 0,
                needed: 1,
                round: 1,
            },
            0.01,
        )
        .unwrap();
        let _ = drain(&mut s, 0.01);
        // A duplicate NAK for round 1 (suppression failed) is stale now.
        s.handle(
            &Message::Nak {
                session: SESSION,
                group: 0,
                needed: 3,
                round: 1,
            },
            0.015,
        )
        .unwrap();
        assert!(
            drain(&mut s, 0.015).is_empty(),
            "stale NAK must not trigger repair"
        );
    }

    #[test]
    fn parity_exhaustion_falls_back_to_originals() {
        let mut cfg = config(1);
        cfg.h = 1;
        let mut s = NpSender::new(SESSION, &data(48), cfg).unwrap();
        let _ = drain(&mut s, 0.0);
        s.handle(
            &Message::Nak {
                session: SESSION,
                group: 0,
                needed: 3,
                round: 1,
            },
            0.01,
        )
        .unwrap();
        let repair = drain(&mut s, 0.01);
        // 3 requested, budget 1: one parity then originals.
        let kinds: Vec<bool> = repair
            .iter()
            .filter_map(|m| match m {
                Message::Packet { index, k, .. } => Some(index >= k),
                _ => None,
            })
            .collect();
        assert_eq!(kinds, vec![true, false, false]);
    }

    #[test]
    fn completion_by_known_receivers() {
        let mut s = NpSender::new(SESSION, &data(48), config(2)).unwrap();
        let _ = drain(&mut s, 0.0);
        assert!(!s.completion_reached(1.0));
        s.handle(
            &Message::Done {
                session: SESSION,
                receiver: 1,
            },
            1.0,
        )
        .unwrap();
        s.handle(
            &Message::Done {
                session: SESSION,
                receiver: 1,
            },
            1.1,
        )
        .unwrap(); // dup
        assert_eq!(s.done_count(), 1);
        s.handle(
            &Message::Done {
                session: SESSION,
                receiver: 2,
            },
            1.2,
        )
        .unwrap();
        match s.next_step(1.3) {
            SenderStep::Transmit(Message::Fin { .. }) => {}
            other => panic!("expected FIN, got {other:?}"),
        }
        assert!(matches!(s.next_step(1.4), SenderStep::Finished));
        assert!(s.is_finished());
    }

    #[test]
    fn completion_by_quiescence() {
        let mut cfg = config(1);
        cfg.completion = CompletionPolicy::Quiescence(0.5);
        let mut s = NpSender::new(SESSION, &data(48), cfg).unwrap();
        let _ = drain(&mut s, 0.0);
        // A NAK resets the quiescence clock.
        s.handle(
            &Message::Nak {
                session: SESSION,
                group: 0,
                needed: 1,
                round: 1,
            },
            0.02,
        )
        .unwrap();
        let _ = drain(&mut s, 0.02);
        if let SenderStep::Transmit(Message::Fin { .. }) = s.next_step(0.3) {
            // Still inside the window: announce or wait, but never FIN.
            panic!("premature FIN");
        }
        // Past last_demand + 0.5 with an empty queue: FIN.
        let mut fin_seen = false;
        for _ in 0..5 {
            if let SenderStep::Transmit(Message::Fin { .. }) = s.next_step(0.9) {
                fin_seen = true;
                break;
            }
        }
        assert!(fin_seen);
    }

    #[test]
    fn idle_reannounces() {
        let mut s = NpSender::new(SESSION, &data(48), config(1)).unwrap();
        let _ = drain(&mut s, 0.0);
        // First idle step at t >= announce_due re-announces.
        match s.next_step(10.0) {
            SenderStep::Transmit(Message::Announce { .. }) => {}
            other => panic!("expected re-announce, got {other:?}"),
        }
        // Immediately after, it waits.
        assert!(matches!(s.next_step(10.0), SenderStep::WaitUntil(_)));
    }

    #[test]
    fn preencode_counts_all_parities_upfront() {
        let mut cfg = config(1);
        cfg.preencode = true;
        cfg.h = 4;
        let s = NpSender::new(SESSION, &data(100), cfg).unwrap();
        // 3 groups x 4 parities.
        assert_eq!(s.counters().parities_encoded, 12);
    }

    #[test]
    fn foreign_and_self_messages_ignored() {
        let mut s = NpSender::new(SESSION, &data(48), config(1)).unwrap();
        let _ = drain(&mut s, 0.0);
        s.handle(
            &Message::Nak {
                session: SESSION + 1,
                group: 0,
                needed: 3,
                round: 1,
            },
            0.01,
        )
        .unwrap();
        s.handle(
            &Message::Poll {
                session: SESSION,
                group: 0,
                sent: 3,
                round: 1,
            },
            0.01,
        )
        .unwrap();
        assert!(drain(&mut s, 0.01).is_empty());
    }

    #[test]
    fn nak_for_unknown_group_ignored() {
        let mut s = NpSender::new(SESSION, &data(48), config(1)).unwrap();
        let _ = drain(&mut s, 0.0);
        s.handle(
            &Message::Nak {
                session: SESSION,
                group: 99,
                needed: 1,
                round: 1,
            },
            0.01,
        )
        .unwrap();
        assert!(drain(&mut s, 0.01).is_empty());
    }

    #[test]
    fn adaptive_parity_learns_from_round1_demand() {
        let mut cfg = config(1);
        cfg.adaptive_parity = true;
        cfg.h = 6;
        // 100 bytes / 16 = 7 packets; k = 3 -> groups 0,1 full, group 2
        // has 1 packet.
        let mut s = NpSender::new(SESSION, &data(100), cfg).unwrap();
        // Step until group 0's poll goes out (announce + 3 data + poll).
        let mut polls = 0;
        let mut sent = Vec::new();
        while polls == 0 {
            match s.next_step(0.0) {
                SenderStep::Transmit(m) => {
                    if matches!(m, Message::Poll { .. }) {
                        polls += 1;
                    }
                    sent.push(m);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        // Receivers report needing 2 packets in round 1.
        s.handle(
            &Message::Nak {
                session: SESSION,
                group: 0,
                needed: 2,
                round: 1,
            },
            0.001,
        )
        .unwrap();
        // Drain the repair + everything else; group 1's initial round must
        // now carry 2 proactive parities (learned demand).
        let rest = drain(&mut s, 0.002);
        let g1_parities = rest
            .iter()
            .filter(|m| matches!(m, Message::Packet { group: 1, index, k, .. } if index >= k))
            .count();
        assert_eq!(
            g1_parities, 2,
            "group 1 should carry the learned demand: {rest:?}"
        );
        // And its poll advertises k + a packets.
        let g1_poll = rest.iter().find_map(|m| match m {
            Message::Poll { group: 1, sent, .. } => Some(*sent),
            _ => None,
        });
        assert_eq!(g1_poll, Some(5), "poll sent = k + a = 3 + 2");
    }

    #[test]
    fn adaptive_parity_stays_zero_without_demand() {
        let mut cfg = config(1);
        cfg.adaptive_parity = true;
        let mut s = NpSender::new(SESSION, &data(100), cfg).unwrap();
        let msgs = drain(&mut s, 0.0);
        let parities = msgs
            .iter()
            .filter(|m| matches!(m, Message::Packet { index, k, .. } if index >= k))
            .count();
        assert_eq!(parities, 0, "no demand observed, no proactive parities");
    }

    #[test]
    fn empty_transfer_announces_and_finishes() {
        let mut s = NpSender::new(SESSION, &[], config(1)).unwrap();
        let msgs = drain(&mut s, 0.0);
        assert_eq!(msgs.len(), 1);
        assert!(matches!(msgs[0], Message::Announce { .. }));
        s.handle(
            &Message::Done {
                session: SESSION,
                receiver: 5,
            },
            0.1,
        )
        .unwrap();
        assert!(matches!(
            s.next_step(0.2),
            SenderStep::Transmit(Message::Fin { .. })
        ));
    }
}
