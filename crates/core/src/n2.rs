//! Protocol **N2** — the receiver-initiated NAK ARQ baseline
//! (Towsley, Kurose, Pingali, "A Comparison of Sender-Initiated and
//! Receiver-Initiated Reliable Multicast Protocols", JSAC '97), as used for
//! the paper's Section 5 comparison.
//!
//! Differences from NP, exactly the two the paper calls out:
//!
//! 1. **Per-packet feedback** — a receiver NAKs each missing packet
//!    (`NakPacket`), not a per-group count.
//! 2. **Retransmission of originals** — the sender resends the named data
//!    packet; a retransmission helps only receivers missing *that* packet
//!    (duplicate receptions for everyone else).
//!
//! Feedback still uses multicast NAKs with suppression (a receiver hearing
//! `NAK` for a packet it also misses cancels its own timer), so the
//! comparison isolates the parity-vs-original and per-group-vs-per-packet
//! effects.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use bytes::Bytes;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use pm_net::Message;

use crate::config::{CompletionPolicy, NpConfig};
use crate::costs::CostCounters;
use crate::error::ProtocolError;
use crate::receiver::ReceiverAction;
use crate::sender::SenderStep;
use crate::session::SessionPlan;

/// N2 sender state machine.
pub struct N2Sender {
    cfg: NpConfig,
    plan: SessionPlan,
    groups: Vec<Vec<Bytes>>,
    queue: VecDeque<Message>,
    /// Packets already retransmitted since the last poll of their group
    /// (suppresses NAK-storm duplicates within one round). Ordered maps
    /// keep servicing order independent of hasher state, so two runs with
    /// the same seed produce byte-identical transcripts (pinned by
    /// `transcripts_identical_across_runs`).
    serviced: BTreeMap<u32, BTreeSet<u16>>,
    rounds: Vec<u16>,
    done_receivers: BTreeSet<u32>,
    counters: CostCounters,
    last_demand: f64,
    announce_due: f64,
    fin_sent: bool,
}

impl N2Sender {
    /// Build an N2 sender. `cfg.h`/`cfg.proactive_parity`/`cfg.preencode`
    /// are ignored (N2 has no parities).
    ///
    /// # Errors
    /// Configuration/geometry errors.
    pub fn new(session: u32, data: &[u8], cfg: NpConfig) -> Result<Self, ProtocolError> {
        cfg.validate()?;
        // N2 blocks carry no parities: n == k on the wire.
        let plan = SessionPlan::new(session, data.len() as u64, cfg.k, 0, cfg.payload_len)?;
        let groups = plan.split(data);
        let mut queue = VecDeque::new();
        queue.push_back(plan.announce());
        let mut s = N2Sender {
            cfg,
            plan,
            groups,
            queue,
            serviced: BTreeMap::new(),
            rounds: Vec::new(),
            done_receivers: BTreeSet::new(),
            counters: CostCounters::default(),
            last_demand: 0.0,
            announce_due: 0.0,
            fin_sent: false,
        };
        s.counters.feedback_sent += 1;
        for g in 0..s.plan.groups {
            s.rounds.push(1);
            let gk = s.plan.group_k(g) as u16;
            for (i, payload) in s.groups[g as usize].iter().enumerate() {
                s.queue.push_back(Message::Packet {
                    session,
                    group: g,
                    index: i as u16,
                    k: gk,
                    n: gk,
                    payload: payload.clone(),
                });
            }
            s.queue.push_back(Message::Poll {
                session,
                group: g,
                sent: gk,
                round: 1,
            });
        }
        Ok(s)
    }

    /// Session plan.
    pub fn plan(&self) -> &SessionPlan {
        &self.plan
    }

    /// Processing counters.
    pub fn counters(&self) -> &CostCounters {
        &self.counters
    }

    /// Receivers that reported completion.
    pub fn done_count(&self) -> usize {
        self.done_receivers.len()
    }

    /// Identities of the receivers that reported completion, ascending.
    pub fn done_ids(&self) -> Vec<u32> {
        self.done_receivers.iter().copied().collect()
    }

    /// Receiver/feedback-dependent sender state in bytes: the done set
    /// plus the per-packet NAK-servicing sets that per-packet ARQ forces
    /// the sender to keep (the contrast with
    /// [`crate::NpSender::state_bytes`], where no such per-packet
    /// bookkeeping exists).
    pub fn state_bytes(&self) -> usize {
        let done = self.done_receivers.len() * std::mem::size_of::<u32>();
        let serviced: usize = self
            .serviced
            .values()
            .map(|set| std::mem::size_of::<u32>() + set.len() * std::mem::size_of::<u16>())
            .sum();
        done + serviced
    }

    /// [`Self::state_bytes`] normalised by the known receiver population
    /// (falls back to the done population under quiescence completion).
    pub fn state_bytes_per_receiver(&self) -> f64 {
        let r = match self.cfg.completion {
            CompletionPolicy::KnownReceivers(r) => r as usize,
            CompletionPolicy::Quiescence(_) => self.done_receivers.len(),
        };
        self.state_bytes() as f64 / r.max(1) as f64
    }

    /// Receivers still outstanding under
    /// [`CompletionPolicy::KnownReceivers`] (0 under quiescence).
    pub fn outstanding(&self) -> u32 {
        match self.cfg.completion {
            CompletionPolicy::KnownReceivers(r) => {
                r.saturating_sub(self.done_receivers.len() as u32)
            }
            CompletionPolicy::Quiescence(_) => 0,
        }
    }

    /// Give up on receivers that never reported `Done`: lower the
    /// known-receivers completion target to the responsive population and
    /// return how many were evicted.
    pub fn evict_outstanding(&mut self) -> u32 {
        let evicted = self.outstanding();
        if evicted > 0 {
            self.cfg.completion =
                CompletionPolicy::KnownReceivers(self.done_receivers.len() as u32);
        }
        evicted
    }

    /// True once FIN has been handed to the transport.
    pub fn is_finished(&self) -> bool {
        self.fin_sent
    }

    fn completion_reached(&self, now: f64) -> bool {
        match self.cfg.completion {
            CompletionPolicy::KnownReceivers(r) => self.done_receivers.len() as u32 >= r,
            CompletionPolicy::Quiescence(q) => now - self.last_demand >= q,
        }
    }

    /// Next action (same contract as [`crate::NpSender::next_step`]).
    pub fn next_step(&mut self, now: f64) -> SenderStep {
        if self.fin_sent {
            return SenderStep::Finished;
        }
        if let Some(msg) = self.queue.pop_front() {
            match &msg {
                Message::Packet { .. } => {
                    // First transmissions and retransmissions both carry
                    // originals; count retransmissions as repairs.
                    if self.counters.data_sent < self.plan.total_packets() {
                        self.counters.data_sent += 1;
                    } else {
                        self.counters.repairs_sent += 1;
                    }
                }
                Message::Poll { group, .. } => {
                    self.counters.feedback_sent += 1;
                    // A transmitted poll opens a new round: packets NAKed
                    // from here on deserve fresh retransmissions.
                    self.serviced.remove(group);
                }
                Message::Announce { .. } => {
                    self.counters.feedback_sent += 1;
                    // A transmitted announce resets the keep-alive clock.
                    self.announce_due = now + self.cfg.announce_interval;
                }
                _ => {}
            }
            return SenderStep::Transmit(msg);
        }
        if self.completion_reached(now) {
            self.fin_sent = true;
            return SenderStep::Transmit(Message::Fin {
                session: self.plan.session,
            });
        }
        if now >= self.announce_due {
            self.announce_due = now + self.cfg.announce_interval;
            self.counters.feedback_sent += 1;
            return SenderStep::Transmit(self.plan.announce());
        }
        let wake = match self.cfg.completion {
            CompletionPolicy::Quiescence(q) => (self.last_demand + q).min(self.announce_due),
            CompletionPolicy::KnownReceivers(_) => self.announce_due,
        };
        SenderStep::WaitUntil(wake)
    }

    /// Feed one received message.
    ///
    /// # Errors
    /// None in practice (kept fallible for driver symmetry with NP).
    pub fn handle(&mut self, msg: &Message, now: f64) -> Result<(), ProtocolError> {
        if msg.session() != self.plan.session {
            return Ok(());
        }
        match msg {
            Message::NakPacket { group, index, .. } => {
                self.counters.feedback_received += 1;
                let g = *group;
                if g >= self.plan.groups || *index as usize >= self.plan.group_k(g) {
                    return Ok(());
                }
                self.last_demand = now;
                let serviced = self.serviced.entry(g).or_default();
                if !serviced.insert(*index) {
                    return Ok(()); // already retransmitted this round
                }
                let gk = self.plan.group_k(g) as u16;
                let retransmission = Message::Packet {
                    session: self.plan.session,
                    group: g,
                    index: *index,
                    k: gk,
                    n: gk,
                    payload: self.groups[g as usize][*index as usize].clone(),
                };
                // A fresh poll follows each retransmission batch; schedule
                // one if no poll for this group is already queued.
                let round = {
                    let r = &mut self.rounds[g as usize];
                    *r += 1;
                    *r
                };
                self.queue.push_front(Message::Poll {
                    session: self.plan.session,
                    group: g,
                    sent: 1,
                    round,
                });
                self.queue.push_front(retransmission);
            }
            Message::Done { receiver, .. } => {
                self.counters.feedback_received += 1;
                self.done_receivers.insert(*receiver);
            }
            Message::Poll { group, .. } => {
                // Self-delivered poll on UDP: marks the round boundary, so
                // clear the serviced set for that group.
                self.serviced.remove(group);
            }
            _ => {}
        }
        Ok(())
    }
}

/// A pending per-packet NAK at an N2 receiver.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PendingNak {
    deadline: f64,
}

/// N2 receiver state machine.
pub struct N2Receiver {
    id: u32,
    session: u32,
    nak_slot: f64,
    plan: Option<SessionPlan>,
    /// Received data packets per group. Every collection here is ordered:
    /// NAK scheduling iterates these maps, and servicing order must be a
    /// pure function of the seed, not of per-process hasher state.
    have: BTreeMap<u32, BTreeMap<u16, Bytes>>,
    /// Expected packet count per group (from packet headers).
    group_k: BTreeMap<u32, u16>,
    decoded: BTreeMap<u32, Vec<Bytes>>,
    pending: BTreeMap<(u32, u16), PendingNak>,
    max_group_seen: Option<u32>,
    quiet_announces: u32,
    rng: ChaCha8Rng,
    counters: CostCounters,
    complete_emitted: bool,
    fin_seen: bool,
}

impl N2Receiver {
    /// A receiver with identity `id` joining session `session`; `nak_slot`
    /// scales the random NAK delay.
    ///
    /// # Panics
    /// Panics unless `nak_slot > 0`.
    pub fn new(id: u32, session: u32, nak_slot: f64, seed: u64) -> Self {
        assert!(nak_slot > 0.0, "nak_slot must be positive");
        N2Receiver {
            id,
            session,
            nak_slot,
            plan: None,
            have: BTreeMap::new(),
            group_k: BTreeMap::new(),
            decoded: BTreeMap::new(),
            pending: BTreeMap::new(),
            max_group_seen: None,
            quiet_announces: 0,
            rng: ChaCha8Rng::seed_from_u64(seed ^ (id as u64) << 13),
            counters: CostCounters::default(),
            complete_emitted: false,
            fin_seen: false,
        }
    }

    /// The receiver's identity.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Processing counters.
    pub fn counters(&self) -> &CostCounters {
        &self.counters
    }

    /// True once every group is complete (requires a plan).
    pub fn is_complete(&self) -> bool {
        match &self.plan {
            Some(p) => self.decoded.len() as u64 == p.groups as u64,
            None => false,
        }
    }

    /// True if the sender has closed the session.
    pub fn fin_seen(&self) -> bool {
        self.fin_seen
    }

    /// Earliest NAK deadline.
    pub fn next_deadline(&self) -> Option<f64> {
        self.pending
            .values()
            .map(|p| p.deadline)
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Reassemble the transfer once complete.
    ///
    /// # Errors
    /// [`ProtocolError::Inconsistent`] before completion.
    pub fn take_data(&self) -> Result<Vec<u8>, ProtocolError> {
        let plan = self
            .plan
            .as_ref()
            .ok_or_else(|| ProtocolError::Inconsistent("no session plan yet".into()))?;
        plan.reassemble(&self.decoded)
    }

    fn check_group_complete(&mut self, group: u32, actions: &mut Vec<ReceiverAction>) {
        let Some(&gk) = self.group_k.get(&group) else {
            return;
        };
        let Some(have) = self.have.get(&group) else {
            return;
        };
        if have.len() == gk as usize && !self.decoded.contains_key(&group) {
            let packets: Vec<Bytes> = have.values().cloned().collect();
            self.decoded.insert(group, packets);
            self.have.remove(&group);
            // Cancel pending NAKs for this group.
            self.pending.retain(|(g, _), _| *g != group);
            actions.push(ReceiverAction::GroupDecoded { group });
            if self.is_complete() && !self.complete_emitted {
                self.complete_emitted = true;
                self.counters.feedback_sent += 1;
                actions.push(ReceiverAction::Send(Message::Done {
                    session: self.session,
                    receiver: self.id,
                }));
                actions.push(ReceiverAction::Complete);
            }
        }
    }

    /// Feed one received message (same contract as
    /// [`crate::NpReceiver::handle`]).
    ///
    /// # Errors
    /// Geometry conflicts.
    pub fn handle(
        &mut self,
        msg: &Message,
        now: f64,
    ) -> Result<Vec<ReceiverAction>, ProtocolError> {
        if msg.session() != self.session {
            return Ok(Vec::new());
        }
        let mut actions = Vec::new();
        match msg {
            Message::Packet {
                group,
                index,
                k,
                payload,
                ..
            } => {
                self.counters.packets_received += 1;
                self.max_group_seen = Some(self.max_group_seen.unwrap_or(0).max(*group));
                self.quiet_announces = 0;
                if self.decoded.contains_key(group) {
                    self.counters.unneeded_receptions += 1;
                    return Ok(actions);
                }
                match self.group_k.get(group) {
                    Some(&gk) if gk != *k => {
                        return Err(ProtocolError::Inconsistent(format!(
                            "group {group} k changed: {k} vs {gk}"
                        )))
                    }
                    Some(_) => {}
                    None => {
                        self.group_k.insert(*group, *k);
                    }
                }
                let slot = self.have.entry(*group).or_default();
                if slot.insert(*index, payload.clone()).is_some() {
                    self.counters.unneeded_receptions += 1;
                }
                self.pending.remove(&(*group, *index));
                self.check_group_complete(*group, &mut actions);
            }
            Message::Poll { group, sent, .. } => {
                self.counters.feedback_received += 1;
                self.max_group_seen = Some(self.max_group_seen.unwrap_or(0).max(*group));
                self.quiet_announces = 0;
                if self.complete_emitted {
                    self.counters.feedback_sent += 1;
                    actions.push(ReceiverAction::Send(Message::Done {
                        session: self.session,
                        receiver: self.id,
                    }));
                } else if !self.decoded.contains_key(group) {
                    // Schedule a NAK per missing packet with random jitter.
                    let known_k = self.group_k.get(group).copied();
                    let missing: Vec<u16> = match known_k {
                        Some(gk) => {
                            let have = self.have.entry(*group).or_default();
                            (0..gk).filter(|i| !have.contains_key(i)).collect()
                        }
                        // Whole round lost: NAK the `sent` indices
                        // announced by the poll.
                        None => (0..*sent).collect(),
                    };
                    for i in missing {
                        self.counters.timers += 1;
                        let jitter: f64 =
                            self.rng.random::<f64>() * self.nak_slot * (1.0 + *sent as f64);
                        self.pending.entry((*group, i)).or_insert(PendingNak {
                            deadline: now + jitter,
                        });
                    }
                }
            }
            Message::NakPacket { group, index, .. } => {
                // Another receiver NAKed the same packet: ours is damped.
                self.counters.feedback_received += 1;
                if self.pending.remove(&(*group, *index)).is_some() {
                    self.counters.feedback_suppressed += 1;
                }
            }
            Message::Announce { .. } => {
                // N2 announces carry n == k (no parities).
                let plan = SessionPlan::from_announce(msg)?;
                match &self.plan {
                    Some(existing) if *existing != plan => {
                        return Err(ProtocolError::Inconsistent(
                            "announce contradicts the known session plan".into(),
                        ));
                    }
                    Some(_) => {}
                    None => self.plan = Some(plan),
                }
                if self.is_complete() && !self.complete_emitted {
                    self.complete_emitted = true;
                    self.counters.feedback_sent += 1;
                    actions.push(ReceiverAction::Send(Message::Done {
                        session: self.session,
                        receiver: self.id,
                    }));
                    actions.push(ReceiverAction::Complete);
                } else if !self.complete_emitted {
                    // Recovery heartbeat: re-NAK everything still missing
                    // in case an entire retransmission round (and its
                    // poll) was lost. The pending map dedupes; the same
                    // not-yet-transmitted gates as NP apply.
                    self.quiet_announces += 1;
                    if let Some(plan) = self.plan {
                        for g in 0..plan.groups {
                            if self.decoded.contains_key(&g) {
                                continue;
                            }
                            let transmitted = self.max_group_seen.is_some_and(|m| g <= m);
                            if !transmitted && self.quiet_announces < 2 {
                                continue;
                            }
                            let gk = plan.group_k(g) as u16;
                            self.group_k.entry(g).or_insert(gk);
                            let have = self.have.entry(g).or_default();
                            let missing: Vec<u16> =
                                (0..gk).filter(|i| !have.contains_key(i)).collect();
                            for i in missing {
                                let jitter: f64 = self.rng.random::<f64>() * self.nak_slot;
                                self.pending.entry((g, i)).or_insert(PendingNak {
                                    deadline: now + jitter,
                                });
                            }
                        }
                    }
                }
            }
            Message::Fin { .. } => {
                self.fin_seen = true;
            }
            Message::Nak { .. } | Message::Done { .. } | Message::FecFrame { .. } => {}
        }
        Ok(actions)
    }

    /// Fire due NAK timers.
    pub fn on_timer(&mut self, now: f64) -> Vec<ReceiverAction> {
        let mut due: Vec<(u32, u16)> = self
            .pending
            .iter()
            .filter(|(_, p)| p.deadline <= now)
            .map(|(&key, _)| key)
            .collect();
        due.sort_unstable();
        let mut actions = Vec::new();
        for key in due {
            self.pending.remove(&key);
            self.counters.feedback_sent += 1;
            self.counters.timers += 1;
            actions.push(ReceiverAction::Send(Message::NakPacket {
                session: self.session,
                group: key.0,
                index: key.1,
            }));
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SESSION: u32 = 31;

    fn config() -> NpConfig {
        let mut c = NpConfig::small(CompletionPolicy::KnownReceivers(1));
        c.k = 3;
        c.payload_len = 16;
        c
    }

    fn data(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 13 % 251) as u8).collect()
    }

    fn drain(s: &mut N2Sender, now: f64) -> Vec<Message> {
        let mut out = Vec::new();
        while let SenderStep::Transmit(m) = s.next_step(now) {
            out.push(m);
        }
        out
    }

    #[test]
    fn sender_initial_schedule_has_no_parities() {
        let mut s = N2Sender::new(SESSION, &data(100), config()).unwrap();
        let msgs = drain(&mut s, 0.0);
        for m in &msgs {
            if let Message::Packet { index, k, n, .. } = m {
                assert!(index < k, "N2 sends only originals");
                assert_eq!(k, n, "no parity space in N2 blocks");
            }
        }
        assert_eq!(s.counters().data_sent, 7);
    }

    #[test]
    fn nak_packet_triggers_named_retransmission_once() {
        let mut s = N2Sender::new(SESSION, &data(100), config()).unwrap();
        let _ = drain(&mut s, 0.0);
        let nak = Message::NakPacket {
            session: SESSION,
            group: 0,
            index: 1,
        };
        s.handle(&nak, 0.1).unwrap();
        s.handle(&nak, 0.1).unwrap(); // duplicate within the round
        let out = drain(&mut s, 0.1);
        let retx: Vec<_> = out
            .iter()
            .filter(|m| {
                matches!(
                    m,
                    Message::Packet {
                        group: 0,
                        index: 1,
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(retx.len(), 1, "dedupe within a round: {out:?}");
        assert_eq!(s.counters().repairs_sent, 1);
    }

    #[test]
    fn full_exchange_lossless() {
        let bytes = data(100);
        let mut tx = N2Sender::new(SESSION, &bytes, config()).unwrap();
        let mut rx = N2Receiver::new(1, SESSION, 0.001, 7);
        let mut complete = false;
        let mut to_sender: Vec<Message> = Vec::new();
        let mut now = 0.0;
        for _ in 0..200 {
            for m in drain(&mut tx, now) {
                for a in rx.handle(&m, now).unwrap() {
                    match a {
                        ReceiverAction::Send(r) => to_sender.push(r),
                        ReceiverAction::Complete => complete = true,
                        ReceiverAction::GroupDecoded { .. } => {}
                    }
                }
            }
            for m in std::mem::take(&mut to_sender) {
                tx.handle(&m, now).unwrap();
            }
            if tx.is_finished() {
                break;
            }
            now += 0.01;
        }
        assert!(complete);
        assert_eq!(rx.take_data().unwrap(), bytes);
        assert!(tx.is_finished());
    }

    #[test]
    fn receiver_naks_missing_packets_after_poll() {
        let bytes = data(100);
        let mut tx = N2Sender::new(SESSION, &bytes, config()).unwrap();
        let mut rx = N2Receiver::new(1, SESSION, 0.001, 9);
        // Deliver everything except group 0 packet 1.
        for m in drain(&mut tx, 0.0) {
            let skip = matches!(
                m,
                Message::Packet {
                    group: 0,
                    index: 1,
                    ..
                }
            );
            if !skip {
                let _ = rx.handle(&m, 0.0).unwrap();
            }
        }
        assert!(rx.next_deadline().is_some(), "NAK scheduled for the hole");
        let actions = rx.on_timer(f64::MAX);
        assert_eq!(
            actions,
            vec![ReceiverAction::Send(Message::NakPacket {
                session: SESSION,
                group: 0,
                index: 1
            })]
        );
    }

    #[test]
    fn overheard_nak_packet_suppresses() {
        let bytes = data(100);
        let mut tx = N2Sender::new(SESSION, &bytes, config()).unwrap();
        let mut rx = N2Receiver::new(1, SESSION, 0.001, 11);
        for m in drain(&mut tx, 0.0) {
            let skip = matches!(
                m,
                Message::Packet {
                    group: 0,
                    index: 1,
                    ..
                }
            );
            if !skip {
                let _ = rx.handle(&m, 0.0).unwrap();
            }
        }
        assert!(rx.next_deadline().is_some());
        rx.handle(
            &Message::NakPacket {
                session: SESSION,
                group: 0,
                index: 1,
            },
            0.001,
        )
        .unwrap();
        assert!(rx.next_deadline().is_none(), "identical NAK damps ours");
        assert_eq!(rx.counters().feedback_suppressed, 1);
    }

    #[test]
    fn retransmission_completes_receiver() {
        let bytes = data(100);
        let mut tx = N2Sender::new(SESSION, &bytes, config()).unwrap();
        let mut rx = N2Receiver::new(1, SESSION, 0.001, 13);
        for m in drain(&mut tx, 0.0) {
            let skip = matches!(
                m,
                Message::Packet {
                    group: 1,
                    index: 0,
                    ..
                }
            );
            if !skip {
                let _ = rx.handle(&m, 0.0).unwrap();
            }
        }
        // Fire the NAK, feed it to the sender, deliver the repair.
        let nak = match rx.on_timer(f64::MAX).pop() {
            Some(ReceiverAction::Send(m)) => m,
            other => panic!("expected NAK, got {other:?}"),
        };
        tx.handle(&nak, 0.5).unwrap();
        let mut complete = false;
        for m in drain(&mut tx, 0.5) {
            for a in rx.handle(&m, 0.5).unwrap() {
                if matches!(a, ReceiverAction::Complete) {
                    complete = true;
                }
            }
        }
        assert!(complete);
        assert_eq!(rx.take_data().unwrap(), bytes);
    }

    /// Determinism contract: the full N2 message transcript (sender and
    /// receiver sides, including the order retransmissions are serviced
    /// in) must be a pure function of the seed. This is the regression
    /// test for the `determinism-hash-iter` hazard pm-audit flags —
    /// `pending`/`serviced` lived in `HashMap`s whose iteration order
    /// varies with per-process hasher state.
    fn lossy_transcript(seed: u64) -> Vec<Message> {
        let bytes = data(300);
        let mut cfg = config();
        cfg.k = 4;
        let mut tx = N2Sender::new(SESSION, &bytes, cfg).unwrap();
        let mut rx = N2Receiver::new(1, SESSION, 0.001, seed);
        let mut transcript = Vec::new();
        let mut to_sender: Vec<Message> = Vec::new();
        let mut now = 0.0;
        let mut first_pass = true;
        for _ in 0..400 {
            for m in drain(&mut tx, now) {
                transcript.push(m.clone());
                // First transmission: drop a deterministic packet subset so
                // several NAKs race; repairs always arrive.
                let drop = first_pass
                    && matches!(
                        &m,
                        Message::Packet { group, index, .. }
                            if (*group as usize + *index as usize) % 3 == 1
                    );
                if !drop {
                    for a in rx.handle(&m, now).unwrap() {
                        if let ReceiverAction::Send(r) = a {
                            transcript.push(r.clone());
                            to_sender.push(r);
                        }
                    }
                }
            }
            first_pass = false;
            for a in rx.on_timer(now) {
                if let ReceiverAction::Send(r) = a {
                    transcript.push(r.clone());
                    to_sender.push(r);
                }
            }
            for m in std::mem::take(&mut to_sender) {
                tx.handle(&m, now).unwrap();
            }
            if tx.is_finished() {
                break;
            }
            now += 0.01;
        }
        assert!(tx.is_finished(), "exchange must converge");
        assert_eq!(rx.take_data().unwrap(), bytes);
        transcript
    }

    #[test]
    fn transcripts_identical_across_runs() {
        let a = lossy_transcript(42);
        let b = lossy_transcript(42);
        assert_eq!(a, b, "N2 servicing order must be seed-deterministic");
        // And the transcript actually contains serviced retransmissions,
        // so the equality above exercises the ordering path.
        assert!(a.iter().any(|m| matches!(m, Message::NakPacket { .. })));
    }

    #[test]
    fn unknown_group_poll_naks_announced_count() {
        let mut rx = N2Receiver::new(1, SESSION, 0.001, 15);
        rx.handle(
            &Message::Poll {
                session: SESSION,
                group: 2,
                sent: 3,
                round: 1,
            },
            0.0,
        )
        .unwrap();
        let actions = rx.on_timer(f64::MAX);
        assert_eq!(actions.len(), 3, "one NAK per announced packet");
    }
}
