//! Protocol-level errors.

use std::fmt;

use pm_net::NetError;
use pm_obs::Event;
use pm_rse::RseError;

/// Errors surfaced by the NP/N2 state machines and runtime.
#[derive(Debug)]
pub enum ProtocolError {
    /// Invalid configuration.
    Config(String),
    /// Erasure-coding failure (bad geometry, undecodable group).
    Rse(RseError),
    /// Transport failure.
    Net(NetError),
    /// The session ended (FIN received) before the transfer completed.
    SenderGone { groups_missing: usize },
    /// The runtime gave up waiting (no progress within the configured
    /// patience). Carries the last observability event that counted as
    /// progress, so post-mortems can see *where* the session died.
    Stalled {
        waited_secs: f64,
        last_progress: Option<Event>,
    },
    /// A message arrived that contradicts session state (e.g. geometry
    /// change mid-session).
    Inconsistent(String),
    /// Too many corrupt datagrams: the endpoint dropped-and-counted
    /// recoverable decode failures until the
    /// [`ResiliencePolicy`](crate::runtime::ResiliencePolicy) quarantine
    /// threshold tripped. The link is hostile beyond repair.
    Quarantined { corrupt_dropped: u64 },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            ProtocolError::Rse(e) => write!(f, "erasure coding error: {e}"),
            ProtocolError::Net(e) => write!(f, "network error: {e}"),
            ProtocolError::SenderGone { groups_missing } => {
                write!(
                    f,
                    "sender closed the session with {groups_missing} groups undelivered"
                )
            }
            ProtocolError::Stalled {
                waited_secs,
                last_progress,
            } => {
                write!(f, "no session progress for {waited_secs:.1}s")?;
                match last_progress {
                    Some(ev) => write!(f, " (last progress: {})", ev.name()),
                    None => write!(f, " (no progress was ever made)"),
                }
            }
            ProtocolError::Inconsistent(msg) => write!(f, "inconsistent session state: {msg}"),
            ProtocolError::Quarantined { corrupt_dropped } => {
                write!(
                    f,
                    "link quarantined after {corrupt_dropped} corrupt datagrams"
                )
            }
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Rse(e) => Some(e),
            ProtocolError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RseError> for ProtocolError {
    fn from(e: RseError) -> Self {
        ProtocolError::Rse(e)
    }
}

impl From<NetError> for ProtocolError {
    fn from(e: NetError) -> Self {
        ProtocolError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ProtocolError::from(RseError::NotEnoughShares { have: 1, need: 3 });
        assert!(e.to_string().contains("erasure"));
        assert!(std::error::Error::source(&e).is_some());
        let e = ProtocolError::Stalled {
            waited_secs: 2.5,
            last_progress: None,
        };
        assert!(e.to_string().contains("2.5"));
        assert!(e.to_string().contains("no progress was ever made"));
        assert!(std::error::Error::source(&e).is_none());
        let e = ProtocolError::Stalled {
            waited_secs: 1.0,
            last_progress: Some(Event::NetRecv {
                kind: pm_obs::MsgKind::Data,
            }),
        };
        assert!(e.to_string().contains("last progress: net_recv"));
        let e = ProtocolError::Quarantined {
            corrupt_dropped: 10_000,
        };
        assert!(e.to_string().contains("quarantined"));
        assert!(e.to_string().contains("10000"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
