#![forbid(unsafe_code)]
//! **Protocol NP** — reliable multicast with integrated FEC (hybrid ARQ),
//! the system contribution of *Parity-Based Loss Recovery for Reliable
//! Multicast Transmission* (Nonnenmacher, Biersack, Towsley, SIGCOMM '97)
//! — plus the classic **N2** NAK-based ARQ protocol it is evaluated
//! against.
//!
//! NP in one paragraph (paper Section 5.1): the sender splits the byte
//! stream into transmission groups of `k` data packets. Round 1 multicasts
//! a group's data followed by `POLL(i, k)`; receivers that cannot yet
//! decode group `i` schedule `NAK(i, l)` — `l` the number of packets they
//! still miss — under slotting-and-damping so ideally a single NAK carrying
//! the *maximum* demand survives. On `NAK(i, l)` the sender interrupts
//! current work, encodes (or fetches pre-encoded) `l` *parity* packets of
//! group `i`, multicasts them plus a new poll, and resumes. One parity
//! repairs *different* losses at different receivers, which is where the
//! bandwidth savings of Figs. 5–8 come from.
//!
//! The crate is structured sans-io: [`NpSender`]/[`NpReceiver`] (and
//! [`n2::N2Sender`]/[`n2::N2Receiver`]) are pure state machines consuming
//! `(Message, now)` and emitting messages to send — deterministic to test,
//! trivial to embed. [`runtime`] drives them over any
//! [`pm_net::Transport`] (in-memory hub or real UDP multicast) with
//! wall-clock pacing, and [`costs`] counts every packet/NAK/encode/decode
//! so end-host processing (Section 5's metric) can be attributed with a
//! [`pm_analysis::CostModel`]-style cost table.
//!
//! Every layer optionally emits structured [`pm_obs`] events: construct the
//! machines with `with_obs` and drive them with
//! [`runtime::drive_sender_obs`]/[`runtime::drive_receiver_obs`] to get a
//! full session trace (see `crates/obs`).

pub mod carousel;
pub mod config;
pub mod costs;
pub mod error;
pub mod harness;
pub mod n2;
pub mod receiver;
pub mod runtime;
pub mod sender;
pub mod session;

pub use carousel::{CarouselConfig, CarouselSender, CarouselStop};
pub use config::{CompletionPolicy, NpConfig};
pub use costs::CostCounters;
pub use error::ProtocolError;
pub use harness::{run_simulation, HarnessConfig, SimulationReport};
pub use receiver::{NpReceiver, ReceiverAction};
pub use runtime::{ReceiverReport, ResilienceCore, ResiliencePolicy, RuntimeConfig};
pub use sender::{NpSender, SenderStep};
pub use session::{SessionPlan, SessionReport};
