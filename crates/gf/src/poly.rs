//! Polynomials over GF(2^8).
//!
//! The paper (Eq. 1) defines the encoder through the polynomial
//! `F(X) = d_1 + d_2 X + ... + d_k X^(k-1)` whose coefficients are the data
//! symbols, with parity `p_j = F(alpha^(j-1))`. This module provides that
//! evaluation plus Lagrange interpolation (the mathematical inverse used to
//! validate the matrix decoder in tests and to implement the reference
//! polynomial codec in `pm-rse`).

use crate::gf256::Gf256;

/// A dense polynomial over GF(2^8), little-endian coefficients
/// (`coeffs[i]` multiplies `X^i`). The zero polynomial has no coefficients.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Poly {
    coeffs: Vec<Gf256>,
}

impl Poly {
    /// Polynomial from little-endian coefficients; trailing zeros trimmed.
    pub fn new(mut coeffs: Vec<Gf256>) -> Self {
        while coeffs.last() == Some(&Gf256::ZERO) {
            coeffs.pop();
        }
        Poly { coeffs }
    }

    /// Polynomial whose coefficients are raw data bytes (the paper's F(X)).
    pub fn from_bytes(data: &[u8]) -> Self {
        Poly::new(data.iter().map(|&b| Gf256(b)).collect())
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly { coeffs: Vec::new() }
    }

    /// Degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Coefficient view (little-endian, trailing zeros trimmed).
    pub fn coeffs(&self) -> &[Gf256] {
        &self.coeffs
    }

    /// Coefficient of `X^i` (zero beyond the degree).
    pub fn coeff(&self, i: usize) -> Gf256 {
        self.coeffs.get(i).copied().unwrap_or(Gf256::ZERO)
    }

    /// Horner evaluation at `x`.
    pub fn eval(&self, x: Gf256) -> Gf256 {
        let mut acc = Gf256::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// Sum of two polynomials (XOR of coefficients).
    pub fn add(&self, other: &Poly) -> Poly {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(self.coeff(i) + other.coeff(i));
        }
        Poly::new(out)
    }

    /// Product of two polynomials (schoolbook; sizes here are tiny).
    pub fn mul(&self, other: &Poly) -> Poly {
        if self.coeffs.is_empty() || other.coeffs.is_empty() {
            return Poly::zero();
        }
        let mut out = vec![Gf256::ZERO; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            for (j, &b) in other.coeffs.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        Poly::new(out)
    }

    /// Multiply every coefficient by a scalar.
    pub fn scale(&self, c: Gf256) -> Poly {
        Poly::new(self.coeffs.iter().map(|&a| a * c).collect())
    }

    /// Unique polynomial of degree `< points.len()` through the given
    /// `(x, y)` points (Lagrange interpolation).
    ///
    /// Returns `None` if two points share an `x` coordinate — the erasure
    /// decoder guarantees distinct evaluation points, so `None` here always
    /// indicates a caller bug surfaced as a recoverable error.
    pub fn interpolate(points: &[(Gf256, Gf256)]) -> Option<Poly> {
        for (i, (xi, _)) in points.iter().enumerate() {
            for (xj, _) in points.iter().skip(i + 1) {
                if xi == xj {
                    return None;
                }
            }
        }
        let mut acc = Poly::zero();
        for (i, &(xi, yi)) in points.iter().enumerate() {
            // Basis polynomial l_i(X) = prod_{j != i} (X - x_j) / (x_i - x_j)
            let mut basis = Poly::new(vec![Gf256::ONE]);
            let mut denom = Gf256::ONE;
            for (j, &(xj, _)) in points.iter().enumerate() {
                if i == j {
                    continue;
                }
                basis = basis.mul(&Poly::new(vec![xj, Gf256::ONE]));
                denom *= xi + xj; // subtraction == addition in char 2
            }
            let inv = denom.checked_inv()?;
            acc = acc.add(&basis.scale(yi * inv));
        }
        Some(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailing_zeros_trimmed() {
        let p = Poly::new(vec![Gf256(1), Gf256(0), Gf256(0)]);
        assert_eq!(p.degree(), Some(0));
        assert_eq!(Poly::zero().degree(), None);
        assert_eq!(Poly::from_bytes(&[]).degree(), None);
    }

    #[test]
    fn eval_constant_and_linear() {
        let c = Poly::from_bytes(&[7]);
        assert_eq!(c.eval(Gf256(99)), Gf256(7));
        // p(X) = 3 + 2X at X = 5: 3 + 2*5 (GF mul)
        let p = Poly::from_bytes(&[3, 2]);
        assert_eq!(p.eval(Gf256(5)), Gf256(3) + Gf256(2) * Gf256(5));
    }

    #[test]
    fn eval_at_zero_is_constant_term() {
        let p = Poly::from_bytes(&[42, 1, 2, 3]);
        assert_eq!(p.eval(Gf256::ZERO), Gf256(42));
    }

    #[test]
    fn add_is_pointwise() {
        let a = Poly::from_bytes(&[1, 2, 3]);
        let b = Poly::from_bytes(&[7, 2]);
        let s = a.add(&b);
        for x in [0u8, 1, 5, 130] {
            assert_eq!(s.eval(Gf256(x)), a.eval(Gf256(x)) + b.eval(Gf256(x)));
        }
        // Self-cancellation: a + a = 0.
        assert_eq!(a.add(&a), Poly::zero());
    }

    #[test]
    fn mul_is_pointwise() {
        let a = Poly::from_bytes(&[1, 2, 3]);
        let b = Poly::from_bytes(&[7, 0, 9]);
        let m = a.mul(&b);
        assert_eq!(m.degree(), Some(4));
        for x in [0u8, 1, 5, 130, 255] {
            assert_eq!(m.eval(Gf256(x)), a.eval(Gf256(x)) * b.eval(Gf256(x)));
        }
        assert_eq!(a.mul(&Poly::zero()), Poly::zero());
    }

    #[test]
    fn interpolation_recovers_polynomial() {
        let p = Poly::from_bytes(&[10, 20, 30, 40, 50]);
        let points: Vec<(Gf256, Gf256)> = (0..5)
            .map(|i| (Gf256::alpha_pow(i), p.eval(Gf256::alpha_pow(i))))
            .collect();
        let q = Poly::interpolate(&points).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn interpolation_with_mixed_points() {
        // Recover F(X) from 2 "data" points (evaluations at distinct x) and
        // 3 "parity" points — the erasure-decoding scenario.
        let p = Poly::from_bytes(&[1, 2, 3, 4, 5]);
        let xs = [
            Gf256(7),
            Gf256(11),
            Gf256::alpha_pow(0),
            Gf256::alpha_pow(3),
            Gf256(200),
        ];
        let pts: Vec<_> = xs.iter().map(|&x| (x, p.eval(x))).collect();
        assert_eq!(Poly::interpolate(&pts).unwrap(), p);
    }

    #[test]
    fn interpolation_rejects_duplicate_x() {
        let pts = [(Gf256(1), Gf256(2)), (Gf256(1), Gf256(3))];
        assert_eq!(Poly::interpolate(&pts), None);
    }

    #[test]
    fn paper_eq1_parity_definition() {
        // p_j = F(alpha^(j-1)) for data d_1..d_k (Eq. 1 of the paper).
        let data = [0x12u8, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde];
        let f = Poly::from_bytes(&data);
        for j in 1..=3usize {
            let pj = f.eval(Gf256::alpha_pow(j - 1));
            // Independent Horner-free computation.
            let mut expect = Gf256::ZERO;
            for (i, &d) in data.iter().enumerate() {
                expect += Gf256(d) * Gf256::alpha_pow(j - 1).pow(i as u64);
            }
            assert_eq!(pj, expect, "parity {j}");
        }
    }
}
