#![forbid(unsafe_code)]
//! Galois-field arithmetic for Reed–Solomon erasure coding.
//!
//! This crate is the arithmetic substrate for the packet-level FEC codec used
//! in the SIGCOMM '97 reproduction of *Parity-Based Loss Recovery for
//! Reliable Multicast Transmission* (Nonnenmacher, Biersack, Towsley). It
//! provides:
//!
//! * [`GfField`] — a runtime-configurable field GF(2^m) for `2 <= m <= 16`,
//!   built from exp/log tables over a primitive polynomial. The paper uses
//!   `m = 8` ("for our purposes, m = 8 will be sufficiently large"), but the
//!   generic field lets the codec support FEC blocks with `n > 255`.
//! * [`Gf256`] — a zero-cost scalar wrapper specialised to GF(2^8) with
//!   statically initialised tables, used on the hot encode/decode paths.
//! * [`mod@mul_table`] — the lazily-built, process-shared 64 KB full
//!   multiplication table (Rizzo's `gf_mul_table`) whose rows back the bulk
//!   kernels.
//! * [`mod@slice`] — bulk operations (`dst ^= c * src`) over byte slices, the
//!   inner loop of the McAuley/Rizzo-style packet coder, including the
//!   batched [`slice::mul_add_multi`] multi-source kernel.
//! * [`poly`] — polynomials over GF(2^8): Horner evaluation (the paper's
//!   Eq. 1 encoder computes parities as `p_j = F(alpha^(j-1))`) and Lagrange
//!   interpolation.
//! * [`matrix`] — dense matrices over GF(2^8): Vandermonde construction,
//!   systematisation and Gauss–Jordan inversion for the erasure decoder.
//!
//! All arithmetic is table-driven and allocation-free on the hot path.
//!
//! ```
//! use pm_gf::Gf256;
//! let a = Gf256(0x53);
//! let b = Gf256(0xCA);
//! assert_eq!(a + b, Gf256(0x53 ^ 0xCA));          // addition is XOR
//! assert_eq!((a * b) * a.checked_inv().unwrap(), b); // field inverse
//! ```

pub mod field;
pub mod gf256;
pub mod matrix;
pub mod mul_table;
pub mod poly;
pub mod slice;

pub use field::{GfError, GfField};
pub use gf256::Gf256;
pub use matrix::Matrix;
pub use mul_table::MulTable;
pub use poly::Poly;

#[cfg(test)]
mod proptests;
