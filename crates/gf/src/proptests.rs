//! Property-based tests for the field axioms and matrix identities.

use proptest::prelude::*;

use crate::gf256::Gf256;
use crate::matrix::Matrix;
use crate::poly::Poly;
use crate::slice;

fn gf() -> impl Strategy<Value = Gf256> {
    any::<u8>().prop_map(Gf256)
}

/// Deterministic pseudo-random bytes (xorshift) for destination buffers.
fn bytes_from_seed(len: usize, seed: u64) -> Vec<u8> {
    let mut s = seed | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 24) as u8
        })
        .collect()
}

proptest! {
    #[test]
    fn add_commutative_associative(a in gf(), b in gf(), c in gf()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn mul_commutative_associative(a in gf(), b in gf(), c in gf()) {
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn distributive(a in gf(), b in gf(), c in gf()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn mul_inverse_cancels(a in gf()) {
        prop_assume!(!a.is_zero());
        prop_assert_eq!(a * a.checked_inv().unwrap(), Gf256::ONE);
    }

    #[test]
    fn div_then_mul_roundtrips(a in gf(), b in gf()) {
        prop_assume!(!b.is_zero());
        prop_assert_eq!(a.checked_div(b).unwrap() * b, a);
    }

    #[test]
    fn pow_is_homomorphism(a in gf(), e1 in 0u64..1000, e2 in 0u64..1000) {
        prop_assert_eq!(a.pow(e1) * a.pow(e2), a.pow(e1 + e2));
    }

    #[test]
    fn slice_mul_add_linear(
        c1 in gf(),
        c2 in gf(),
        src in proptest::collection::vec(any::<u8>(), 1..200),
    ) {
        // (c1 + c2) * src == c1 * src + c2 * src, applied to whole slices.
        let mut lhs = vec![0u8; src.len()];
        slice::mul_add_slice(c1 + c2, &src, &mut lhs);
        let mut rhs = vec![0u8; src.len()];
        slice::mul_add_slice(c1, &src, &mut rhs);
        slice::mul_add_slice(c2, &src, &mut rhs);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn poly_eval_additive(d1 in proptest::collection::vec(any::<u8>(), 0..32),
                          d2 in proptest::collection::vec(any::<u8>(), 0..32),
                          x in gf()) {
        let p1 = Poly::from_bytes(&d1);
        let p2 = Poly::from_bytes(&d2);
        prop_assert_eq!(p1.add(&p2).eval(x), p1.eval(x) + p2.eval(x));
    }

    #[test]
    fn poly_interpolation_roundtrip(coeffs in proptest::collection::vec(any::<u8>(), 1..12)) {
        let p = Poly::from_bytes(&coeffs);
        let pts: Vec<_> = (0..coeffs.len())
            .map(|i| (Gf256::alpha_pow(i), p.eval(Gf256::alpha_pow(i))))
            .collect();
        let q = Poly::interpolate(&pts).unwrap();
        for i in 0..coeffs.len() {
            prop_assert_eq!(q.coeff(i), p.coeff(i));
        }
    }

    #[test]
    fn random_vandermonde_subsets_invert(
        k in 2usize..8,
        extra in 1usize..8,
        seed in any::<u64>(),
    ) {
        // Any k rows of an n x k Vandermonde over distinct points invert.
        let n = k + extra;
        let points: Vec<Gf256> = (0..n).map(Gf256::alpha_pow).collect();
        let v = Matrix::vandermonde(&points, k);
        // Pick k distinct rows pseudo-randomly from the seed.
        let mut rows: Vec<usize> = (0..n).collect();
        let mut s = seed.wrapping_add(1);
        for i in (1..rows.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            rows.swap(i, j);
        }
        rows.truncate(k);
        prop_assert!(v.select_rows(&rows).invert().is_ok());
    }

    #[test]
    fn matrix_inverse_involution(vals in proptest::collection::vec(any::<u8>(), 9..=9)) {
        let m = Matrix::from_fn(3, 3, |r, c| Gf256(vals[r * 3 + c]));
        if let Ok(inv) = m.invert() {
            prop_assert_eq!(inv.invert().unwrap(), m);
        }
    }

    /// Differential: the shared-table kernels are byte-identical to the
    /// scalar reference (and to the seed's per-call-row kernel) for every
    /// coefficient, including lengths straddling the 8-byte XOR fast path.
    #[test]
    fn table_kernels_match_scalar_reference(
        c in gf(),
        src in proptest::collection::vec(any::<u8>(), 0..64),
        seed in any::<u64>(),
    ) {
        let dst0 = bytes_from_seed(src.len(), seed);

        let mut table = dst0.clone();
        slice::mul_add_slice(c, &src, &mut table);
        let mut scalar = dst0.clone();
        slice::reference::mul_add_slice(c, &src, &mut scalar);
        prop_assert_eq!(&table, &scalar);
        let mut uncached = dst0.clone();
        slice::reference::mul_add_slice_uncached(c, &src, &mut uncached);
        prop_assert_eq!(&table, &uncached);

        let mut table_mul = dst0.clone();
        slice::mul_slice(c, &src, &mut table_mul);
        let mut scalar_mul = dst0.clone();
        slice::reference::mul_slice(c, &src, &mut scalar_mul);
        prop_assert_eq!(table_mul, scalar_mul);

        let mut table_scale = dst0.clone();
        slice::scale_slice(c, &mut table_scale);
        let mut scalar_scale = dst0;
        slice::reference::scale_slice(c, &mut scalar_scale);
        prop_assert_eq!(table_scale, scalar_scale);
    }

    /// Differential: the batched multi-source kernel equals sequential
    /// scalar-reference accumulation for any batch size (covering every
    /// unrolled group arm and multi-group batches).
    #[test]
    fn mul_add_multi_matches_scalar_reference(
        coeffs in proptest::collection::vec(any::<u8>(), 0..10),
        len in 0usize..48,
        seed in any::<u64>(),
    ) {
        let sources: Vec<Vec<u8>> = coeffs
            .iter()
            .enumerate()
            .map(|(i, _)| bytes_from_seed(len, seed ^ (i as u64 + 1)))
            .collect();
        let pairs: Vec<(Gf256, &[u8])> = coeffs
            .iter()
            .zip(&sources)
            .map(|(&c, s)| (Gf256(c), s.as_slice()))
            .collect();
        let dst0 = bytes_from_seed(len, seed ^ 0xD57);

        let mut batched = dst0.clone();
        slice::mul_add_multi(&pairs, &mut batched);
        let mut scalar = dst0;
        slice::reference::mul_add_multi(&pairs, &mut scalar);
        prop_assert_eq!(batched, scalar);
    }

    /// The u64 XOR fast path agrees with bytewise XOR right across the
    /// 8-byte chunk boundary.
    #[test]
    fn xor_fast_path_matches_bytewise(len in 0usize..25, seed in any::<u64>()) {
        let src = bytes_from_seed(len, seed);
        let dst0 = bytes_from_seed(len, seed ^ 0xBEEF);
        let mut fast = dst0.clone();
        slice::xor_slice(&mut fast, &src);
        let mut slow = dst0;
        for (d, s) in slow.iter_mut().zip(&src) {
            *d ^= s;
        }
        prop_assert_eq!(fast, slow);
    }

    /// The staged-u64 remainder path: XOR on subslices starting at every
    /// misaligned offset, for every remainder length 1..=7, leaves the bytes
    /// outside the window untouched and matches bytewise XOR inside it.
    #[test]
    fn xor_remainder_boundaries_match_bytewise(
        len in 0usize..41,
        off in 0usize..9,
        seed in any::<u64>(),
    ) {
        let total = off + len;
        let src = bytes_from_seed(total, seed);
        let orig = bytes_from_seed(total, seed ^ 0xF00D);
        let mut fast = orig.clone();
        slice::xor_slice(&mut fast[off..], &src[off..]);
        let mut slow = orig.clone();
        for i in off..total {
            slow[i] ^= src[i];
        }
        prop_assert_eq!(&fast[..off], &orig[..off]);
        prop_assert_eq!(fast, slow);
    }
}
