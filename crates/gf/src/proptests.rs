//! Property-based tests for the field axioms and matrix identities.

use proptest::prelude::*;

use crate::gf256::Gf256;
use crate::matrix::Matrix;
use crate::poly::Poly;
use crate::slice;

fn gf() -> impl Strategy<Value = Gf256> {
    any::<u8>().prop_map(Gf256)
}

proptest! {
    #[test]
    fn add_commutative_associative(a in gf(), b in gf(), c in gf()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn mul_commutative_associative(a in gf(), b in gf(), c in gf()) {
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn distributive(a in gf(), b in gf(), c in gf()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn mul_inverse_cancels(a in gf()) {
        prop_assume!(!a.is_zero());
        prop_assert_eq!(a * a.checked_inv().unwrap(), Gf256::ONE);
    }

    #[test]
    fn div_then_mul_roundtrips(a in gf(), b in gf()) {
        prop_assume!(!b.is_zero());
        prop_assert_eq!(a.checked_div(b).unwrap() * b, a);
    }

    #[test]
    fn pow_is_homomorphism(a in gf(), e1 in 0u64..1000, e2 in 0u64..1000) {
        prop_assert_eq!(a.pow(e1) * a.pow(e2), a.pow(e1 + e2));
    }

    #[test]
    fn slice_mul_add_linear(
        c1 in gf(),
        c2 in gf(),
        src in proptest::collection::vec(any::<u8>(), 1..200),
    ) {
        // (c1 + c2) * src == c1 * src + c2 * src, applied to whole slices.
        let mut lhs = vec![0u8; src.len()];
        slice::mul_add_slice(c1 + c2, &src, &mut lhs);
        let mut rhs = vec![0u8; src.len()];
        slice::mul_add_slice(c1, &src, &mut rhs);
        slice::mul_add_slice(c2, &src, &mut rhs);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn poly_eval_additive(d1 in proptest::collection::vec(any::<u8>(), 0..32),
                          d2 in proptest::collection::vec(any::<u8>(), 0..32),
                          x in gf()) {
        let p1 = Poly::from_bytes(&d1);
        let p2 = Poly::from_bytes(&d2);
        prop_assert_eq!(p1.add(&p2).eval(x), p1.eval(x) + p2.eval(x));
    }

    #[test]
    fn poly_interpolation_roundtrip(coeffs in proptest::collection::vec(any::<u8>(), 1..12)) {
        let p = Poly::from_bytes(&coeffs);
        let pts: Vec<_> = (0..coeffs.len())
            .map(|i| (Gf256::alpha_pow(i), p.eval(Gf256::alpha_pow(i))))
            .collect();
        let q = Poly::interpolate(&pts).unwrap();
        for i in 0..coeffs.len() {
            prop_assert_eq!(q.coeff(i), p.coeff(i));
        }
    }

    #[test]
    fn random_vandermonde_subsets_invert(
        k in 2usize..8,
        extra in 1usize..8,
        seed in any::<u64>(),
    ) {
        // Any k rows of an n x k Vandermonde over distinct points invert.
        let n = k + extra;
        let points: Vec<Gf256> = (0..n).map(Gf256::alpha_pow).collect();
        let v = Matrix::vandermonde(&points, k);
        // Pick k distinct rows pseudo-randomly from the seed.
        let mut rows: Vec<usize> = (0..n).collect();
        let mut s = seed.wrapping_add(1);
        for i in (1..rows.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            rows.swap(i, j);
        }
        rows.truncate(k);
        prop_assert!(v.select_rows(&rows).invert().is_ok());
    }

    #[test]
    fn matrix_inverse_involution(vals in proptest::collection::vec(any::<u8>(), 9..=9)) {
        let m = Matrix::from_fn(3, 3, |r, c| Gf256(vals[r * 3 + c]));
        if let Ok(inv) = m.invert() {
            prop_assert_eq!(inv.invert().unwrap(), m);
        }
    }
}
