//! Runtime-configurable Galois fields GF(2^m), `2 <= m <= 16`.
//!
//! Elements are represented as `u16` (values `< 2^m`). Addition is XOR;
//! multiplication and division go through exp/log tables generated from a
//! primitive polynomial. Table generation verifies primitivity: the powers of
//! the generator `alpha = x` must enumerate every non-zero element exactly
//! once, so a bad polynomial cannot silently produce a broken field.

use std::fmt;

/// Errors raised by field construction and arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GfError {
    /// Requested symbol width `m` outside the supported range `2..=16`.
    UnsupportedWidth(u32),
    /// Division by zero.
    DivisionByZero,
    /// An element value `>= 2^m` was passed to a field of width `m`.
    OutOfRange { value: u32, width: u32 },
    /// A matrix that must be invertible is singular.
    SingularMatrix,
    /// Operand shapes do not agree.
    DimensionMismatch { expected: usize, got: usize },
}

impl fmt::Display for GfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GfError::UnsupportedWidth(m) => {
                write!(
                    f,
                    "unsupported field width m={m}; supported range is 2..=16"
                )
            }
            GfError::DivisionByZero => write!(f, "division by zero in GF(2^m)"),
            GfError::OutOfRange { value, width } => {
                write!(f, "element {value} out of range for GF(2^{width})")
            }
            GfError::SingularMatrix => write!(f, "matrix is singular over GF(2^m)"),
            GfError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for GfError {}

/// Primitive polynomials for GF(2^m), indexed by `m` (entries 0 and 1 unused).
///
/// Bit `i` of the entry is the coefficient of `x^i`; the top bit (`x^m`) is
/// included. These are the standard minimum-weight primitive polynomials.
const PRIMITIVE_POLYS: [u32; 17] = [
    0, 0, 0x7, 0xB, 0x13, 0x25, 0x43, 0x89, 0x11D, 0x211, 0x409, 0x805, 0x1053, 0x201B, 0x4443,
    0x8003, 0x1100B,
];

/// A Galois field GF(2^m) with exp/log tables.
///
/// `exp` has length `2 * (size - 1)` so that products of logs can be looked
/// up without a modulo reduction: for non-zero `a`, `b`,
/// `a * b = exp[log[a] + log[b]]`.
#[derive(Debug, Clone)]
pub struct GfField {
    m: u32,
    size: usize,
    exp: Vec<u16>,
    log: Vec<u16>,
}

impl GfField {
    /// Construct GF(2^m). Supported widths are `2..=16`.
    ///
    /// Table construction is O(2^m) time and memory; the result should be
    /// built once and shared.
    pub fn new(m: u32) -> Result<Self, GfError> {
        if !(2..=16).contains(&m) {
            return Err(GfError::UnsupportedWidth(m));
        }
        let size = 1usize << m;
        let poly = PRIMITIVE_POLYS[m as usize];
        let mut exp = vec![0u16; 2 * (size - 1)];
        let mut log = vec![0u16; size];
        let mut x: u32 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(size - 1) {
            *e = (x & 0xffff) as u16;
            log[x as usize] = (i & 0xffff) as u16;
            x <<= 1;
            if x & (1 << m) != 0 {
                x ^= poly;
            }
        }
        // The generator must cycle through all non-zero elements and return
        // to 1; anything else means `poly` is not primitive.
        debug_assert_eq!(x, 1, "polynomial {poly:#x} is not primitive for m={m}");
        for i in 0..(size - 1) {
            exp[size - 1 + i] = exp[i];
        }
        Ok(GfField { m, size, exp, log })
    }

    /// Field width `m` (symbols are `m` bits).
    #[inline]
    pub fn width(&self) -> u32 {
        self.m
    }

    /// Number of elements, `2^m`.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Largest valid element value, `2^m - 1`. Also the multiplicative order.
    #[inline]
    pub fn max_element(&self) -> u16 {
        ((self.size - 1) & 0xffff) as u16
    }

    #[inline]
    fn check(&self, a: u16) -> Result<(), GfError> {
        if (a as usize) < self.size {
            Ok(())
        } else {
            Err(GfError::OutOfRange {
                value: u32::from(a),
                width: self.m,
            })
        }
    }

    /// Addition (= subtraction) in characteristic 2: XOR.
    #[inline]
    pub fn add(&self, a: u16, b: u16) -> u16 {
        a ^ b
    }

    /// Multiply two elements.
    ///
    /// # Panics
    /// Debug-panics if operands are out of range (callers validate inputs at
    /// the API boundary; internal use is by construction in-range).
    #[inline]
    pub fn mul(&self, a: u16, b: u16) -> u16 {
        debug_assert!((a as usize) < self.size && (b as usize) < self.size);
        if a == 0 || b == 0 {
            return 0;
        }
        self.exp[self.log[a as usize] as usize + self.log[b as usize] as usize]
    }

    /// Multiplicative inverse. Errors on zero.
    #[inline]
    pub fn inv(&self, a: u16) -> Result<u16, GfError> {
        self.check(a)?;
        if a == 0 {
            return Err(GfError::DivisionByZero);
        }
        let order = ((self.size - 1) & 0xffff) as u16;
        let l = self.log[a as usize];
        Ok(self.exp[(order - l) as usize])
    }

    /// Division `a / b`. Errors if `b == 0`.
    #[inline]
    pub fn div(&self, a: u16, b: u16) -> Result<u16, GfError> {
        self.check(a)?;
        self.check(b)?;
        if b == 0 {
            return Err(GfError::DivisionByZero);
        }
        if a == 0 {
            return Ok(0);
        }
        let order = (self.size - 1) as isize;
        let d = self.log[a as usize] as isize - self.log[b as usize] as isize;
        let d = if d < 0 { d + order } else { d };
        Ok(self.exp[d as usize])
    }

    /// `alpha^i`, where `alpha` is the primitive element and `i` is reduced
    /// modulo `2^m - 1`.
    #[inline]
    pub fn exp(&self, i: usize) -> u16 {
        self.exp[i % (self.size - 1)]
    }

    /// Discrete log base `alpha`. Errors on zero (log undefined).
    #[inline]
    pub fn log(&self, a: u16) -> Result<u16, GfError> {
        self.check(a)?;
        if a == 0 {
            return Err(GfError::DivisionByZero);
        }
        Ok(self.log[a as usize])
    }

    /// `a^e` by log/exp (e reduced mod the group order). `0^0 == 1`.
    pub fn pow(&self, a: u16, e: u64) -> u16 {
        if e == 0 {
            return 1;
        }
        if a == 0 {
            return 0;
        }
        let order = (self.size - 1) as u64;
        let l = self.log[a as usize] as u64;
        self.exp[((l * (e % order)) % order) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_unsupported_widths() {
        assert_eq!(GfField::new(0).unwrap_err(), GfError::UnsupportedWidth(0));
        assert_eq!(GfField::new(1).unwrap_err(), GfError::UnsupportedWidth(1));
        assert_eq!(GfField::new(17).unwrap_err(), GfError::UnsupportedWidth(17));
    }

    #[test]
    fn all_supported_widths_build() {
        for m in 2..=16 {
            let f = GfField::new(m).unwrap();
            assert_eq!(f.size(), 1 << m);
            assert_eq!(f.width(), m);
        }
    }

    #[test]
    fn exp_log_roundtrip_gf16() {
        let f = GfField::new(4).unwrap();
        for a in 1..16u16 {
            let l = f.log(a).unwrap();
            assert_eq!(f.exp(l as usize), a);
        }
    }

    #[test]
    fn mul_matches_schoolbook_gf16() {
        // Carry-less multiply reduced by x^4 + x + 1.
        fn slow_mul(mut a: u16, mut b: u16) -> u16 {
            let mut r = 0u16;
            while b != 0 {
                if b & 1 != 0 {
                    r ^= a;
                }
                b >>= 1;
                a <<= 1;
                if a & 0x10 != 0 {
                    a ^= 0x13;
                }
            }
            r
        }
        let f = GfField::new(4).unwrap();
        for a in 0..16u16 {
            for b in 0..16u16 {
                assert_eq!(f.mul(a, b), slow_mul(a, b), "{a} * {b}");
            }
        }
    }

    #[test]
    fn inverse_is_inverse() {
        for m in [2u32, 4, 8, 12, 16] {
            let f = GfField::new(m).unwrap();
            // Exhaustive for small fields, sampled stride for m=16.
            let stride = if m <= 8 { 1 } else { 97 };
            let mut a = 1u32;
            while a < f.size() as u32 {
                let inv = f.inv(a as u16).unwrap();
                assert_eq!(f.mul(a as u16, inv), 1, "m={m} a={a}");
                a += stride;
            }
        }
    }

    #[test]
    fn division_by_zero_errors() {
        let f = GfField::new(8).unwrap();
        assert_eq!(f.div(5, 0).unwrap_err(), GfError::DivisionByZero);
        assert_eq!(f.inv(0).unwrap_err(), GfError::DivisionByZero);
        assert_eq!(f.log(0).unwrap_err(), GfError::DivisionByZero);
    }

    #[test]
    fn out_of_range_detected() {
        let f = GfField::new(4).unwrap();
        assert!(matches!(f.div(16, 1), Err(GfError::OutOfRange { .. })));
        assert!(matches!(f.inv(255), Err(GfError::OutOfRange { .. })));
    }

    #[test]
    fn pow_basics() {
        let f = GfField::new(8).unwrap();
        assert_eq!(f.pow(0, 0), 1);
        assert_eq!(f.pow(0, 5), 0);
        assert_eq!(f.pow(7, 0), 1);
        assert_eq!(f.pow(7, 1), 7);
        assert_eq!(f.pow(2, 8), f.mul(f.pow(2, 4), f.pow(2, 4)));
        // Fermat: a^(2^m - 1) == 1 for a != 0.
        for a in 1..=255u16 {
            assert_eq!(f.pow(a, 255), 1);
        }
    }

    #[test]
    fn exp_wraps_modulo_order() {
        let f = GfField::new(8).unwrap();
        assert_eq!(f.exp(0), 1);
        assert_eq!(f.exp(255), 1);
        assert_eq!(f.exp(256), f.exp(1));
    }

    #[test]
    fn distributivity_sampled_gf256() {
        let f = GfField::new(8).unwrap();
        for a in (0..256u16).step_by(7) {
            for b in (0..256u16).step_by(11) {
                for c in (0..256u16).step_by(13) {
                    assert_eq!(f.mul(a, b ^ c), f.mul(a, b) ^ f.mul(a, c));
                }
            }
        }
    }
}
