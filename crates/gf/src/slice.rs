//! Bulk GF(256) operations over byte slices — the codec inner loop.
//!
//! A packet-level RSE coder spends essentially all of its time computing
//! `parity ^= coeff * data` over whole packets (Section 2.2 of the paper:
//! one GF(2^8) operation per byte per matrix coefficient, so encode cost is
//! proportional to `h * k * packet_len`). These routines index precomputed
//! rows of the shared 64 KB multiplication table ([`crate::mul_table`]) —
//! no per-call row construction — and take a plain `u64` XOR fast path when
//! the coefficient is 1. [`mul_add_multi`] additionally batches several
//! source packets per destination pass so each parity byte is loaded and
//! stored once per group instead of once per coefficient.
//!
//! The seed's scalar kernels are preserved verbatim in [`reference`]; the
//! differential proptests in this crate pin the table-driven kernels
//! byte-for-byte against them.

use crate::gf256::Gf256;
use crate::mul_table::mul_row;

/// `dst ^= src`, element-wise. Both slices must have equal length.
///
/// # Panics
/// Panics if the lengths differ (caller bug: packets in one FEC block must
/// have equal size).
pub fn xor_slice(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_slice length mismatch");
    // Wide XOR on 8-byte chunks; the 1..=7-byte remainder goes through one
    // more u64 via zero-padded staging buffers (XOR with the padding zeros
    // is a no-op) instead of a byte-at-a-time loop, so misaligned tails pay
    // one wide op rather than up to seven scalar ones.
    let n = dst.len();
    let chunks = n / 8;
    for i in 0..chunks {
        let o = i * 8;
        let a = u64::from_ne_bytes(dst[o..o + 8].try_into().unwrap());
        let b = u64::from_ne_bytes(src[o..o + 8].try_into().unwrap());
        dst[o..o + 8].copy_from_slice(&(a ^ b).to_ne_bytes());
    }
    if chunks * 8 < n {
        let tail = dst.split_at_mut(chunks * 8).1;
        let stail = src.split_at(chunks * 8).1;
        let mut a = [0u8; 8];
        let mut b = [0u8; 8];
        for (pad, &d) in a.iter_mut().zip(tail.iter()) {
            *pad = d;
        }
        for (pad, &s) in b.iter_mut().zip(stail) {
            *pad = s;
        }
        let x = (u64::from_ne_bytes(a) ^ u64::from_ne_bytes(b)).to_ne_bytes();
        for (d, &v) in tail.iter_mut().zip(&x) {
            *d = v;
        }
    }
}

/// `dst ^= c * src` — multiply-accumulate with a scalar coefficient.
///
/// # Panics
/// Panics if the lengths differ.
pub fn mul_add_slice(c: Gf256, src: &[u8], dst: &mut [u8]) {
    assert_eq!(dst.len(), src.len(), "mul_add_slice length mismatch");
    if c.is_zero() {
        return;
    }
    if c == Gf256::ONE {
        xor_slice(dst, src);
        return;
    }
    mul_add_row(mul_row(c), src, dst);
}

/// `dst ^= c * src` where `row` is `c`'s multiplication row
/// (`row[x] == c * x`), e.g. a row cached from [`crate::mul_table`].
///
/// This is the zero-setup variant used by callers that hold rows across
/// many packets (the RSE encoder caches one row per matrix coefficient).
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn mul_add_row(row: &[u8; 256], src: &[u8], dst: &mut [u8]) {
    assert_eq!(dst.len(), src.len(), "mul_add_row length mismatch");
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d ^= row[*s as usize];
    }
}

/// `dst ^= c1*src1 ^ c2*src2 ^ ...` — batched multiply-accumulate.
///
/// Applies up to the whole batch of `(coefficient, source)` pairs in groups
/// of at most four per destination pass, so each destination byte is read
/// and written once per group rather than once per source. This is the
/// encoder's preferred kernel: computing parity `j` over `k` data packets
/// issues `ceil(k/4)` passes instead of `k`.
///
/// Zero coefficients are skipped; unit coefficients still go through the
/// table row (`row(1)` is the identity row), keeping the inner loop branch
/// free.
///
/// # Panics
/// Panics if any source length differs from `dst.len()`.
pub fn mul_add_multi(sources: &[(Gf256, &[u8])], dst: &mut [u8]) {
    for (_, src) in sources {
        assert_eq!(dst.len(), src.len(), "mul_add_multi length mismatch");
    }
    let live: Vec<(&[u8; 256], &[u8])> = sources
        .iter()
        .filter(|(c, _)| !c.is_zero())
        .map(|(c, src)| (mul_row(*c), *src))
        .collect();
    mul_add_multi_rows(&live, dst);
}

/// Row-based variant of [`mul_add_multi`]: each source comes with its
/// coefficient's multiplication row (`row[x] == c * x`), e.g. rows cached
/// per matrix coefficient by the RSE encoder.
///
/// An all-zero row (coefficient 0) is applied as-is — callers that want the
/// skip should filter zero coefficients out, as [`mul_add_multi`] does.
///
/// # Panics
/// Panics if any source length differs from `dst.len()`.
pub fn mul_add_multi_rows(sources: &[(&[u8; 256], &[u8])], dst: &mut [u8]) {
    for (_, src) in sources {
        assert_eq!(dst.len(), src.len(), "mul_add_multi length mismatch");
    }
    // Zipped iteration keeps every lane bounds-check free; indexing a
    // `[u8; 256]` by a `u8` needs no check either.
    for group in sources.chunks(4) {
        match group {
            [(r0, s0)] => {
                for (d, &a) in dst.iter_mut().zip(s0.iter()) {
                    *d ^= r0[a as usize];
                }
            }
            [(r0, s0), (r1, s1)] => {
                for ((d, &a), &b) in dst.iter_mut().zip(s0.iter()).zip(s1.iter()) {
                    *d ^= r0[a as usize] ^ r1[b as usize];
                }
            }
            [(r0, s0), (r1, s1), (r2, s2)] => {
                for (((d, &a), &b), &e) in
                    dst.iter_mut().zip(s0.iter()).zip(s1.iter()).zip(s2.iter())
                {
                    *d ^= r0[a as usize] ^ r1[b as usize] ^ r2[e as usize];
                }
            }
            [(r0, s0), (r1, s1), (r2, s2), (r3, s3)] => {
                for ((((d, &a), &b), &e), &f) in dst
                    .iter_mut()
                    .zip(s0.iter())
                    .zip(s1.iter())
                    .zip(s2.iter())
                    .zip(s3.iter())
                {
                    *d ^= r0[a as usize] ^ r1[b as usize] ^ r2[e as usize] ^ r3[f as usize];
                }
            }
            _ => unreachable!("chunks(4) yields 1..=4 items"),
        }
    }
}

/// `dst = c * src` (overwrites `dst`).
///
/// # Panics
/// Panics if the lengths differ.
pub fn mul_slice(c: Gf256, src: &[u8], dst: &mut [u8]) {
    assert_eq!(dst.len(), src.len(), "mul_slice length mismatch");
    if c.is_zero() {
        dst.fill(0);
        return;
    }
    if c == Gf256::ONE {
        dst.copy_from_slice(src);
        return;
    }
    let row = mul_row(c);
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = row[*s as usize];
    }
}

/// Scale a slice in place: `data *= c`.
pub fn scale_slice(c: Gf256, data: &mut [u8]) {
    if c == Gf256::ONE {
        return;
    }
    if c.is_zero() {
        data.fill(0);
        return;
    }
    let row = mul_row(c);
    for d in data.iter_mut() {
        *d = row[*d as usize];
    }
}

/// Scalar reference kernels — the definitional per-byte field arithmetic.
///
/// These never touch the shared table (each byte is multiplied through the
/// exp/log scalar path), so they serve as the independent oracle for the
/// differential property tests and the "uncached" baseline in `pm-bench`.
pub mod reference {
    use crate::gf256::{fill_mul_row, Gf256};

    /// Scalar `dst ^= c * src`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn mul_add_slice(c: Gf256, src: &[u8], dst: &mut [u8]) {
        assert_eq!(dst.len(), src.len(), "mul_add_slice length mismatch");
        for (d, s) in dst.iter_mut().zip(src.iter()) {
            *d = (Gf256(*d) + c * Gf256(*s)).0;
        }
    }

    /// Scalar `dst = c * src`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn mul_slice(c: Gf256, src: &[u8], dst: &mut [u8]) {
        assert_eq!(dst.len(), src.len(), "mul_slice length mismatch");
        for (d, s) in dst.iter_mut().zip(src.iter()) {
            *d = (c * Gf256(*s)).0;
        }
    }

    /// Scalar in-place `data *= c`.
    pub fn scale_slice(c: Gf256, data: &mut [u8]) {
        for d in data.iter_mut() {
            *d = (c * Gf256(*d)).0;
        }
    }

    /// Scalar batched multiply-accumulate (sequential applications).
    ///
    /// # Panics
    /// Panics if any source length differs from `dst.len()`.
    pub fn mul_add_multi(sources: &[(Gf256, &[u8])], dst: &mut [u8]) {
        for (c, src) in sources {
            mul_add_slice(*c, src, dst);
        }
    }

    /// The seed's per-call-row kernel, kept as the "uncached" benchmark
    /// baseline: builds the 256-entry multiplication row on the stack on
    /// every invocation, then applies it.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn mul_add_slice_uncached(c: Gf256, src: &[u8], dst: &mut [u8]) {
        assert_eq!(dst.len(), src.len(), "mul_add_slice length mismatch");
        if c.is_zero() {
            return;
        }
        if c == Gf256::ONE {
            super::xor_slice(dst, src);
            return;
        }
        let mut row = [0u8; 256];
        fill_mul_row(c, &mut row);
        for (d, s) in dst.iter_mut().zip(src.iter()) {
            *d ^= row[*s as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_slice_matches_bytewise() {
        // Lengths straddling the 8-byte fast path boundary.
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 100, 1024] {
            let src: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let mut dst: Vec<u8> = (0..len).map(|i| (i * 13 + 5) as u8).collect();
            let mut expect = dst.clone();
            for (d, s) in expect.iter_mut().zip(&src) {
                *d ^= s;
            }
            xor_slice(&mut dst, &src);
            assert_eq!(dst, expect, "len={len}");
        }
    }

    #[test]
    fn mul_add_matches_reference() {
        let src: Vec<u8> = (0..300).map(|i| (i * 7 + 3) as u8).collect();
        for c in [0u8, 1, 2, 37, 255] {
            let mut dst: Vec<u8> = (0..300).map(|i| (i * 31) as u8).collect();
            let mut expect = dst.clone();
            reference::mul_add_slice(Gf256(c), &src, &mut expect);
            mul_add_slice(Gf256(c), &src, &mut dst);
            assert_eq!(dst, expect, "c={c}");
        }
    }

    #[test]
    fn mul_add_row_matches_mul_add_slice() {
        let src: Vec<u8> = (0..97).map(|i| (i * 29 + 1) as u8).collect();
        for c in [2u8, 9, 140, 255] {
            let mut via_row: Vec<u8> = (0..97).map(|i| (i * 17) as u8).collect();
            let mut via_slice = via_row.clone();
            mul_add_row(crate::mul_table::mul_row(Gf256(c)), &src, &mut via_row);
            mul_add_slice(Gf256(c), &src, &mut via_slice);
            assert_eq!(via_row, via_slice, "c={c}");
        }
    }

    #[test]
    fn mul_add_multi_matches_sequential() {
        // Batch sizes exercising every chunk arm (1..=4) plus a second pass.
        for nsrc in 0..=6usize {
            let sources: Vec<Vec<u8>> = (0..nsrc)
                .map(|j| (0..64).map(|i| (i * 7 + j * 41 + 3) as u8).collect())
                .collect();
            let coeffs: Vec<Gf256> = (0..nsrc).map(|j| Gf256((j * 61 + 2) as u8)).collect();
            let pairs: Vec<(Gf256, &[u8])> = coeffs
                .iter()
                .zip(&sources)
                .map(|(c, s)| (*c, s.as_slice()))
                .collect();
            let base: Vec<u8> = (0..64).map(|i| (i * 11) as u8).collect();

            let mut batched = base.clone();
            mul_add_multi(&pairs, &mut batched);

            let mut sequential = base.clone();
            for (c, s) in &pairs {
                mul_add_slice(*c, s, &mut sequential);
            }
            assert_eq!(batched, sequential, "nsrc={nsrc}");
        }
    }

    #[test]
    fn mul_add_multi_skips_zero_coefficients() {
        let s1 = [0xffu8; 16];
        let s2: Vec<u8> = (0..16).map(|i| (i * 3 + 1) as u8).collect();
        let base = [0xaau8; 16];
        let mut batched = base;
        mul_add_multi(&[(Gf256::ZERO, &s1[..]), (Gf256(7), &s2[..])], &mut batched);
        let mut expect = base;
        mul_add_slice(Gf256(7), &s2, &mut expect);
        assert_eq!(batched, expect);
    }

    #[test]
    fn mul_slice_then_xor_equals_mul_add() {
        let src: Vec<u8> = (0..128).map(|i| (i * 5 + 1) as u8).collect();
        let base: Vec<u8> = (0..128).map(|i| (i * 11 + 7) as u8).collect();
        for c in [0u8, 1, 9, 200] {
            let mut tmp = vec![0u8; 128];
            mul_slice(Gf256(c), &src, &mut tmp);
            let mut via_two_step = base.clone();
            xor_slice(&mut via_two_step, &tmp);
            let mut direct = base.clone();
            mul_add_slice(Gf256(c), &src, &mut direct);
            assert_eq!(via_two_step, direct, "c={c}");
        }
    }

    #[test]
    fn scale_by_inverse_roundtrips() {
        let orig: Vec<u8> = (0..500).map(|i| (i * 3 + 17) as u8).collect();
        for c in [1u8, 2, 77, 254] {
            let mut data = orig.clone();
            scale_slice(Gf256(c), &mut data);
            scale_slice(Gf256(c).checked_inv().unwrap(), &mut data);
            assert_eq!(data, orig, "c={c}");
        }
    }

    #[test]
    fn zero_coefficient_behaviour() {
        let src = vec![0xffu8; 32];
        let mut dst = vec![0xaau8; 32];
        mul_add_slice(Gf256::ZERO, &src, &mut dst);
        assert_eq!(dst, vec![0xaau8; 32], "mul_add by zero is a no-op");
        mul_slice(Gf256::ZERO, &src, &mut dst);
        assert_eq!(dst, vec![0u8; 32], "mul by zero clears");
    }

    #[test]
    fn empty_slices_are_no_ops() {
        let mut dst: Vec<u8> = vec![];
        mul_add_slice(Gf256(7), &[], &mut dst);
        mul_slice(Gf256(7), &[], &mut dst);
        scale_slice(Gf256(7), &mut dst);
        mul_add_multi(&[(Gf256(7), &[][..])], &mut dst);
        assert!(dst.is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut dst = vec![0u8; 4];
        mul_add_slice(Gf256::ONE, &[1, 2, 3], &mut dst);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mul_add_multi_mismatched_lengths_panic() {
        let mut dst = vec![0u8; 4];
        mul_add_multi(&[(Gf256::ONE, &[1, 2, 3][..])], &mut dst);
    }
}
