//! Bulk GF(256) operations over byte slices — the codec inner loop.
//!
//! A packet-level RSE coder spends essentially all of its time computing
//! `parity ^= coeff * data` over whole packets (Section 2.2 of the paper:
//! one GF(2^8) operation per byte per matrix coefficient, so encode cost is
//! proportional to `h * k * packet_len`). These routines use a 256-entry
//! per-multiplier lookup row (built once per coefficient) and a plain `u64`
//! XOR fast path when the coefficient is 1.

use crate::gf256::{fill_mul_row, Gf256};

/// `dst ^= src`, element-wise. Both slices must have equal length.
///
/// # Panics
/// Panics if the lengths differ (caller bug: packets in one FEC block must
/// have equal size).
pub fn xor_slice(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_slice length mismatch");
    // Wide XOR on aligned middle chunks; bytewise head/tail.
    let n = dst.len();
    let chunks = n / 8;
    for i in 0..chunks {
        let o = i * 8;
        let a = u64::from_ne_bytes(dst[o..o + 8].try_into().unwrap());
        let b = u64::from_ne_bytes(src[o..o + 8].try_into().unwrap());
        dst[o..o + 8].copy_from_slice(&(a ^ b).to_ne_bytes());
    }
    for i in chunks * 8..n {
        dst[i] ^= src[i];
    }
}

/// `dst ^= c * src` — multiply-accumulate with a scalar coefficient.
///
/// # Panics
/// Panics if the lengths differ.
pub fn mul_add_slice(c: Gf256, src: &[u8], dst: &mut [u8]) {
    assert_eq!(dst.len(), src.len(), "mul_add_slice length mismatch");
    if c.is_zero() {
        return;
    }
    if c == Gf256::ONE {
        xor_slice(dst, src);
        return;
    }
    let mut row = [0u8; 256];
    fill_mul_row(c, &mut row);
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d ^= row[*s as usize];
    }
}

/// `dst = c * src` (overwrites `dst`).
///
/// # Panics
/// Panics if the lengths differ.
pub fn mul_slice(c: Gf256, src: &[u8], dst: &mut [u8]) {
    assert_eq!(dst.len(), src.len(), "mul_slice length mismatch");
    if c.is_zero() {
        dst.fill(0);
        return;
    }
    if c == Gf256::ONE {
        dst.copy_from_slice(src);
        return;
    }
    let mut row = [0u8; 256];
    fill_mul_row(c, &mut row);
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = row[*s as usize];
    }
}

/// Scale a slice in place: `data *= c`.
pub fn scale_slice(c: Gf256, data: &mut [u8]) {
    if c == Gf256::ONE {
        return;
    }
    if c.is_zero() {
        data.fill(0);
        return;
    }
    let mut row = [0u8; 256];
    fill_mul_row(c, &mut row);
    for d in data.iter_mut() {
        *d = row[*d as usize];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_mul_add(c: Gf256, src: &[u8], dst: &mut [u8]) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d = (Gf256(*d) + c * Gf256(*s)).0;
        }
    }

    #[test]
    fn xor_slice_matches_bytewise() {
        // Lengths straddling the 8-byte fast path boundary.
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 100, 1024] {
            let src: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let mut dst: Vec<u8> = (0..len).map(|i| (i * 13 + 5) as u8).collect();
            let mut expect = dst.clone();
            for (d, s) in expect.iter_mut().zip(&src) {
                *d ^= s;
            }
            xor_slice(&mut dst, &src);
            assert_eq!(dst, expect, "len={len}");
        }
    }

    #[test]
    fn mul_add_matches_reference() {
        let src: Vec<u8> = (0..300).map(|i| (i * 7 + 3) as u8).collect();
        for c in [0u8, 1, 2, 37, 255] {
            let mut dst: Vec<u8> = (0..300).map(|i| (i * 31) as u8).collect();
            let mut expect = dst.clone();
            reference_mul_add(Gf256(c), &src, &mut expect);
            mul_add_slice(Gf256(c), &src, &mut dst);
            assert_eq!(dst, expect, "c={c}");
        }
    }

    #[test]
    fn mul_slice_then_xor_equals_mul_add() {
        let src: Vec<u8> = (0..128).map(|i| (i * 5 + 1) as u8).collect();
        let base: Vec<u8> = (0..128).map(|i| (i * 11 + 7) as u8).collect();
        for c in [0u8, 1, 9, 200] {
            let mut tmp = vec![0u8; 128];
            mul_slice(Gf256(c), &src, &mut tmp);
            let mut via_two_step = base.clone();
            xor_slice(&mut via_two_step, &tmp);
            let mut direct = base.clone();
            mul_add_slice(Gf256(c), &src, &mut direct);
            assert_eq!(via_two_step, direct, "c={c}");
        }
    }

    #[test]
    fn scale_by_inverse_roundtrips() {
        let orig: Vec<u8> = (0..500).map(|i| (i * 3 + 17) as u8).collect();
        for c in [1u8, 2, 77, 254] {
            let mut data = orig.clone();
            scale_slice(Gf256(c), &mut data);
            scale_slice(Gf256(c).checked_inv().unwrap(), &mut data);
            assert_eq!(data, orig, "c={c}");
        }
    }

    #[test]
    fn zero_coefficient_behaviour() {
        let src = vec![0xffu8; 32];
        let mut dst = vec![0xaau8; 32];
        mul_add_slice(Gf256::ZERO, &src, &mut dst);
        assert_eq!(dst, vec![0xaau8; 32], "mul_add by zero is a no-op");
        mul_slice(Gf256::ZERO, &src, &mut dst);
        assert_eq!(dst, vec![0u8; 32], "mul by zero clears");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut dst = vec![0u8; 4];
        mul_add_slice(Gf256::ONE, &[1, 2, 3], &mut dst);
    }
}
