//! Dense matrices over GF(2^8) for erasure encoding/decoding.
//!
//! The systematic RSE code is defined by an `n x k` generator matrix `G`
//! whose top `k` rows are the identity (data passes through untouched) and
//! whose lower `h` rows produce parities. Decoding any `k` received packets
//! reduces to inverting the `k x k` submatrix of `G` selected by the received
//! row indices — Gauss–Jordan over GF(2^8), here.

use crate::field::GfError;
use crate::gf256::Gf256;

/// A row-major dense matrix over GF(2^8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Gf256>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn zero(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix {
            rows,
            cols,
            data: vec![Gf256::ZERO; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m[(i, i)] = Gf256::ONE;
        }
        m
    }

    /// Build a matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Gf256) -> Self {
        let mut m = Matrix::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Vandermonde matrix `V[r][c] = x_r ^ c` over the given evaluation
    /// points. Any `k` rows with distinct points are linearly independent,
    /// which is exactly the MDS property the erasure code needs.
    pub fn vandermonde(points: &[Gf256], cols: usize) -> Self {
        Matrix::from_fn(points.len(), cols, |r, c| points[r].pow(c as u64))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `r` as a slice.
    pub fn row(&self, r: usize) -> &[Gf256] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    fn row_mut(&mut self, r: usize) -> &mut [Gf256] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    /// [`GfError::DimensionMismatch`] if inner dimensions disagree.
    pub fn mul(&self, rhs: &Matrix) -> Result<Matrix, GfError> {
        if self.cols != rhs.rows {
            return Err(GfError::DimensionMismatch {
                expected: self.cols,
                got: rhs.rows,
            });
        }
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for r in 0..self.rows {
            for i in 0..self.cols {
                let a = self[(r, i)];
                if a.is_zero() {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] += a * rhs[(i, c)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product.
    ///
    /// # Errors
    /// [`GfError::DimensionMismatch`] if the vector length is not `cols`.
    pub fn mul_vec(&self, v: &[Gf256]) -> Result<Vec<Gf256>, GfError> {
        if v.len() != self.cols {
            return Err(GfError::DimensionMismatch {
                expected: self.cols,
                got: v.len(),
            });
        }
        Ok((0..self.rows)
            .map(|r| {
                self.row(r)
                    .iter()
                    .zip(v)
                    .fold(Gf256::ZERO, |acc, (&a, &b)| acc + a * b)
            })
            .collect())
    }

    /// New matrix made of the selected rows (in the given order).
    ///
    /// # Panics
    /// Panics if `rows` is empty or an index is out of bounds.
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        assert!(!rows.is_empty(), "select_rows: empty selection");
        let mut m = Matrix::zero(rows.len(), self.cols);
        for (dst, &src) in rows.iter().enumerate() {
            assert!(src < self.rows, "select_rows: row {src} out of bounds");
            m.row_mut(dst).copy_from_slice(self.row(src));
        }
        m
    }

    /// Gauss–Jordan inverse.
    ///
    /// # Errors
    /// [`GfError::SingularMatrix`] if not invertible,
    /// [`GfError::DimensionMismatch`] if not square.
    pub fn invert(&self) -> Result<Matrix, GfError> {
        if self.rows != self.cols {
            return Err(GfError::DimensionMismatch {
                expected: self.rows,
                got: self.cols,
            });
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Find a pivot (any non-zero element works in a finite field).
            let pivot = (col..n)
                .find(|&r| !a[(r, col)].is_zero())
                .ok_or(GfError::SingularMatrix)?;
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            let p_inv = a[(col, col)].checked_inv().expect("pivot is non-zero");
            for c in 0..n {
                a[(col, c)] *= p_inv;
                inv[(col, c)] *= p_inv;
            }
            for r in 0..n {
                if r == col || a[(r, col)].is_zero() {
                    continue;
                }
                let factor = a[(r, col)];
                for c in 0..n {
                    let av = a[(col, c)];
                    let iv = inv[(col, c)];
                    a[(r, c)] += factor * av;
                    inv[(r, c)] += factor * iv;
                }
            }
        }
        Ok(inv)
    }

    /// Swap two rows in place.
    pub fn swap_rows(&mut self, r1: usize, r2: usize) {
        if r1 == r2 {
            return;
        }
        let (lo, hi) = (r1.min(r2), r1.max(r2));
        let (head, tail) = self.data.split_at_mut(hi * self.cols);
        head[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }

    /// Turn an `n x k` MDS generator candidate into *systematic* form: right-
    /// multiply by the inverse of its top `k x k` block so the top becomes
    /// the identity. This is how Rizzo's `fec.c` builds its generator: the
    /// result still has the property that any `k` rows are invertible, but
    /// data symbols now pass through the code unchanged.
    ///
    /// # Errors
    /// [`GfError::DimensionMismatch`] if `rows < cols`;
    /// [`GfError::SingularMatrix`] if the top block is singular (cannot
    /// happen for distinct Vandermonde points).
    pub fn systematize(&self) -> Result<Matrix, GfError> {
        if self.rows < self.cols {
            return Err(GfError::DimensionMismatch {
                expected: self.cols,
                got: self.rows,
            });
        }
        let k = self.cols;
        let top = self.select_rows(&(0..k).collect::<Vec<_>>());
        let top_inv = top.invert()?;
        self.mul(&top_inv)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = Gf256;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Gf256 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Gf256 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_matrix() -> Matrix {
        // A 3x3 Vandermonde over distinct points: guaranteed invertible.
        Matrix::vandermonde(&[Gf256(1), Gf256(2), Gf256(3)], 3)
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let m = demo_matrix();
        let i = Matrix::identity(3);
        assert_eq!(m.mul(&i).unwrap(), m);
        assert_eq!(i.mul(&m).unwrap(), m);
    }

    #[test]
    fn inverse_times_self_is_identity() {
        let m = demo_matrix();
        let inv = m.invert().unwrap();
        assert_eq!(m.mul(&inv).unwrap(), Matrix::identity(3));
        assert_eq!(inv.mul(&m).unwrap(), Matrix::identity(3));
    }

    #[test]
    fn singular_matrix_detected() {
        let mut m = Matrix::zero(2, 2);
        m[(0, 0)] = Gf256(5);
        m[(0, 1)] = Gf256(7);
        m[(1, 0)] = Gf256(5);
        m[(1, 1)] = Gf256(7);
        assert_eq!(m.invert().unwrap_err(), GfError::SingularMatrix);
    }

    #[test]
    fn non_square_inversion_errors() {
        let m = Matrix::zero(2, 3);
        assert!(matches!(m.invert(), Err(GfError::DimensionMismatch { .. })));
    }

    #[test]
    fn mul_dimension_mismatch_errors() {
        let a = Matrix::zero(2, 3);
        let b = Matrix::zero(2, 2);
        assert!(matches!(a.mul(&b), Err(GfError::DimensionMismatch { .. })));
        assert!(matches!(
            a.mul_vec(&[Gf256::ONE; 2]),
            Err(GfError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn vandermonde_any_k_rows_invertible() {
        // MDS property over a larger-than-square Vandermonde.
        let points: Vec<Gf256> = (0..8).map(|i| Gf256(i as u8 + 1)).collect();
        let v = Matrix::vandermonde(&points, 4);
        // Try several 4-row subsets, including non-contiguous ones.
        for rows in [[0usize, 1, 2, 3], [4, 5, 6, 7], [0, 2, 5, 7], [1, 3, 4, 6]] {
            let sub = v.select_rows(&rows);
            sub.invert()
                .unwrap_or_else(|_| panic!("rows {rows:?} should be invertible"));
        }
    }

    #[test]
    fn systematize_top_is_identity_and_stays_mds() {
        let points: Vec<Gf256> = (0..10).map(Gf256::alpha_pow).collect();
        let v = Matrix::vandermonde(&points, 6);
        let g = v.systematize().unwrap();
        for r in 0..6 {
            for c in 0..6 {
                let want = if r == c { Gf256::ONE } else { Gf256::ZERO };
                assert_eq!(g[(r, c)], want, "({r},{c})");
            }
        }
        // Spot-check MDS: a mixed data/parity row selection still inverts.
        let sub = g.select_rows(&[0, 7, 2, 8, 4, 9]);
        sub.invert().unwrap();
    }

    #[test]
    fn mul_vec_matches_mul() {
        let m = demo_matrix();
        let v = vec![Gf256(9), Gf256(8), Gf256(7)];
        let mv = m.mul_vec(&v).unwrap();
        let col = Matrix::from_fn(3, 1, |r, _| v[r]);
        let mm = m.mul(&col).unwrap();
        for r in 0..3 {
            assert_eq!(mv[r], mm[(r, 0)]);
        }
    }

    #[test]
    fn swap_rows_swaps() {
        let mut m = demo_matrix();
        let r0: Vec<_> = m.row(0).to_vec();
        let r2: Vec<_> = m.row(2).to_vec();
        m.swap_rows(0, 2);
        assert_eq!(m.row(0), &r2[..]);
        assert_eq!(m.row(2), &r0[..]);
        m.swap_rows(1, 1); // no-op must not panic
    }

    #[test]
    #[should_panic(expected = "dimensions must be non-zero")]
    fn zero_dimension_panics() {
        let _ = Matrix::zero(0, 3);
    }
}
