//! The full GF(2^8) multiplication table — 64 KB, built once, shared.
//!
//! The bulk slice kernels in [`crate::slice`] need a 256-entry lookup row
//! `row[x] = c * x` for each coefficient `c` they apply. The seed built that
//! row on the stack *per call*, costing 256 exp/log multiplications (and a
//! 256-byte write) before touching a single packet byte. For the RSE
//! encoder's inner loop — `h * k` coefficient applications per FEC block —
//! that row construction is pure overhead.
//!
//! [`MulTable`] instead materialises the entire 256x256 product table once
//! (Rizzo's `fec.c` keeps the same `gf_mul_table`), lazily on first use, and
//! hands out `&'static` borrows of its rows. A row borrow is a pointer copy;
//! the 64 KB table stays hot in L1/L2 across calls because every coefficient
//! of every block walks the same storage.

use crate::gf256::{fill_mul_row, Gf256};
use std::sync::OnceLock;

/// The complete GF(2^8) multiplication table: `rows[c][x] == c * x`.
///
/// Obtain the process-wide instance with [`MulTable::shared`]; rows borrowed
/// from it are `&'static` and can be cached freely (see the encoder's
/// cached coefficient rows in `pm-rse`).
pub struct MulTable {
    rows: Box<[[u8; 256]; 256]>,
}

impl MulTable {
    /// Build the table (65536 field multiplications via exp/log rows).
    fn build() -> MulTable {
        // Build on the heap: a 64 KB by-value array would transit the stack.
        let mut rows: Box<[[u8; 256]; 256]> = vec![[0u8; 256]; 256]
            .into_boxed_slice()
            .try_into()
            .expect("vec of 256 rows");
        for c in 0..256usize {
            fill_mul_row(Gf256((c & 0xff) as u8), &mut rows[c]);
        }
        MulTable { rows }
    }

    /// The lazily-initialised process-wide table.
    pub fn shared() -> &'static MulTable {
        static TABLE: OnceLock<MulTable> = OnceLock::new();
        TABLE.get_or_init(MulTable::build)
    }

    /// The multiplication row for coefficient `c`: `row[x] == c * x`.
    #[inline]
    pub fn row(&self, c: Gf256) -> &[u8; 256] {
        &self.rows[c.0 as usize]
    }
}

/// The `&'static` multiplication row for `c` from the shared table.
///
/// This is the hot-path entry point: one index into the shared 64 KB table,
/// no per-call row construction.
#[inline]
pub fn mul_row(c: Gf256) -> &'static [u8; 256] {
    MulTable::shared().row(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_row_matches_scalar_mul() {
        let t = MulTable::shared();
        for c in 0..=255u8 {
            let row = t.row(Gf256(c));
            for x in 0..=255u8 {
                assert_eq!(Gf256(row[x as usize]), Gf256(c) * Gf256(x), "row[{c}][{x}]");
            }
        }
    }

    #[test]
    fn shared_is_one_instance() {
        let a = MulTable::shared() as *const MulTable;
        let b = MulTable::shared() as *const MulTable;
        assert_eq!(a, b);
    }

    #[test]
    fn static_rows_are_borrowable_concurrently() {
        let r2 = mul_row(Gf256(2));
        let r3 = mul_row(Gf256(3));
        assert_eq!(r2[1], 2);
        assert_eq!(r3[1], 3);
        assert_eq!(r2[0], 0);
    }
}
