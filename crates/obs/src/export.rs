//! Metrics export: Prometheus text rendering, a tiny std-only HTTP
//! listener, and a snapshot-file mode for headless runs.
//!
//! [`render_prometheus`] turns a [`MetricsRegistry`] plus any extra
//! gauges (the windowed-telemetry rates from [`crate::window`]) into the
//! Prometheus text exposition format (v0.0.4): counters and gauges as-is,
//! histograms as summaries with interpolated quantiles. [`ExportServer`]
//! serves that text from a plain `std::net::TcpListener` — no HTTP crate,
//! one thread, every request re-renders. [`SnapshotFile`] writes the same
//! body to a file atomically on a session-clock interval, for runs where
//! nobody can curl.
//!
//! The renderer and snapshot writer take time only from their callers
//! (session clock), never a wall clock — pm-audit's determinism rules
//! apply to this file like any other.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::metrics::{Metric, MetricsRegistry};

/// Rewrite a dotted metric name into a Prometheus-legal one:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`, with `.` and other separators mapped to
/// `_`.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Render the registry plus `extra` `(name, value)` gauges as Prometheus
/// text. Registration order is preserved; extras follow the registry.
pub fn render_prometheus(registry: &MetricsRegistry, extra: &[(String, f64)]) -> String {
    let mut out = String::new();
    for (name, metric) in registry.entries() {
        let pname = prometheus_name(&name);
        match metric {
            Metric::Counter(c) => {
                out.push_str(&format!("# TYPE {pname} counter\n"));
                out.push_str(&format!("{pname} {}\n", c.get()));
            }
            Metric::Gauge(g) => {
                out.push_str(&format!("# TYPE {pname} gauge\n"));
                out.push_str(&format!("{pname} {}\n", g.get()));
            }
            Metric::Histogram(h) => {
                let s = h.snapshot();
                out.push_str(&format!("# TYPE {pname} summary\n"));
                for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                    out.push_str(&format!(
                        "{pname}{{quantile=\"{label}\"}} {}\n",
                        s.quantile(q)
                    ));
                }
                out.push_str(&format!("{pname}_sum {}\n", s.sum));
                out.push_str(&format!("{pname}_count {}\n", s.count));
            }
        }
    }
    for (name, value) in extra {
        let pname = prometheus_name(name);
        out.push_str(&format!("# TYPE {pname} gauge\n"));
        out.push_str(&format!("{pname} {}\n", fmt_value(*value)));
    }
    out
}

/// A one-thread HTTP listener serving whatever `render` returns.
///
/// Every connection gets a fresh rendering with status 200 and
/// `text/plain; version=0.0.4` (the Prometheus exposition content type),
/// regardless of path. Dropping the server (or calling
/// [`ExportServer::stop`]) shuts the thread down.
pub struct ExportServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ExportServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9464"`, port 0 for ephemeral) and
    /// start serving.
    pub fn serve<F>(addr: &str, render: F) -> std::io::Result<ExportServer>
    where
        F: Fn() -> String + Send + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = std::thread::Builder::new()
            .name("pm-obs-export".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(mut stream) = conn else { continue };
                    let _ = serve_one(&mut stream, &render);
                }
            })?;
        Ok(ExportServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the listener thread and wait for it to exit.
    pub fn stop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Relaxed);
            // Unblock accept() with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for ExportServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_one(stream: &mut TcpStream, render: &(impl Fn() -> String + Send)) -> std::io::Result<()> {
    // Drain the request line + headers; we answer everything the same
    // way, so parsing stops at the first blank line (or 4 KiB).
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut buf = [0u8; 1024];
    let mut seen = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                seen.extend_from_slice(&buf[..n]);
                if seen.windows(4).any(|w| w == b"\r\n\r\n") || seen.len() > 4096 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let body = render();
    let header = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Periodic snapshot-file writer for headless runs.
///
/// `tick(now, body)` writes `body` to the target path (atomic
/// write-then-rename) whenever at least `interval_secs` of session time
/// has passed since the last write. Driven entirely by the caller's
/// clock.
pub struct SnapshotFile {
    path: PathBuf,
    interval_secs: f64,
    last: Option<f64>,
}

impl SnapshotFile {
    /// A writer targeting `path` every `interval_secs` of session time.
    pub fn new(path: impl Into<PathBuf>, interval_secs: f64) -> Self {
        SnapshotFile {
            path: path.into(),
            interval_secs: interval_secs.max(0.0),
            last: None,
        }
    }

    /// The target path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Write `body` if the interval has elapsed (or on the first call).
    /// Returns `Ok(true)` when a write happened.
    pub fn tick(&mut self, now: f64, body: &str) -> std::io::Result<bool> {
        if let Some(last) = self.last {
            if now - last < self.interval_secs {
                return Ok(false);
            }
        }
        self.write(body)?;
        self.last = Some(now);
        Ok(true)
    }

    /// Unconditional atomic write (tmp file + rename).
    pub fn write(&self, body: &str) -> std::io::Result<()> {
        let tmp = self.path.with_extension("tmp");
        std::fs::write(&tmp, body)?;
        std::fs::rename(&tmp, &self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_sanitized() {
        assert_eq!(prometheus_name("sender.data_sent"), "sender_data_sent");
        assert_eq!(
            prometheus_name("farm.window.live_em"),
            "farm_window_live_em"
        );
        assert_eq!(prometheus_name("9lives"), "_lives");
        assert_eq!(prometheus_name(""), "_");
    }

    #[test]
    fn render_covers_all_metric_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("net.sent").add(42);
        reg.gauge("mux.active").set(3);
        let h = reg.histogram("decode.micros");
        for v in [10, 20, 30, 40] {
            h.record(v);
        }
        let text = render_prometheus(&reg, &[("farm.window.live_em".into(), 1.25)]);
        assert!(text.contains("# TYPE net_sent counter\nnet_sent 42\n"));
        assert!(text.contains("# TYPE mux_active gauge\nmux_active 3\n"));
        assert!(text.contains("# TYPE decode_micros summary\n"));
        assert!(text.contains("decode_micros{quantile=\"0.5\"}"));
        assert!(text.contains("decode_micros_count 4\n"));
        assert!(text.contains("decode_micros_sum 100\n"));
        assert!(text.contains("# TYPE farm_window_live_em gauge\nfarm_window_live_em 1.25\n"));
    }

    #[test]
    fn server_answers_http_with_fresh_renders() {
        let reg = MetricsRegistry::new();
        let counter = reg.counter("hits");
        let mut server =
            ExportServer::serve("127.0.0.1:0", move || render_prometheus(&reg, &[])).unwrap();
        let addr = server.local_addr();

        let fetch = |addr: SocketAddr| -> String {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap();
            out
        };

        let first = fetch(addr);
        assert!(first.starts_with("HTTP/1.1 200 OK"));
        assert!(first.contains("text/plain; version=0.0.4"));
        assert!(first.contains("hits 0\n"));

        counter.add(5);
        let second = fetch(addr);
        assert!(second.contains("hits 5\n"), "renders are live: {second}");

        server.stop();
        // Stopped server no longer accepts.
        assert!(
            TcpStream::connect(addr).is_err() || {
                // Listener may be mid-teardown; a connect that succeeds must
                // at least get no response.
                true
            }
        );
    }

    #[test]
    fn snapshot_file_respects_interval_and_is_atomic() {
        let dir = std::env::temp_dir().join("pm_obs_export_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.prom");
        let _ = std::fs::remove_file(&path);
        let mut snap = SnapshotFile::new(&path, 2.0);
        assert!(snap.tick(0.0, "a 1\n").unwrap()); // first write always lands
        assert!(!snap.tick(1.0, "a 2\n").unwrap()); // inside interval
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a 1\n");
        assert!(snap.tick(2.5, "a 3\n").unwrap());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a 3\n");
        // No stray tmp file left behind.
        assert!(!path.with_extension("tmp").exists());
        let _ = std::fs::remove_file(&path);
    }
}
