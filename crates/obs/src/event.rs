//! The shared event vocabulary.
//!
//! One typed [`Event`] enum covers every layer of the stack — protocol
//! machines (`pm-core`), transports and NAK suppression (`pm-net`), the
//! codec cache (`pm-rse`), and the scheme simulator (`pm-sim`) — so a
//! single JSONL trace tells the whole story of a run. Events are plain
//! data: construction is cheap, and with the null recorder they are never
//! constructed at all (see [`crate::Obs::emit`]).

use serde::Value;

/// Which side of the protocol an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The multicast sender.
    Sender,
    /// A multicast receiver.
    Receiver,
}

impl Role {
    /// Stable lowercase name used in traces.
    pub fn as_str(&self) -> &'static str {
        match self {
            Role::Sender => "sender",
            Role::Receiver => "receiver",
        }
    }
}

/// How a driven session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Transfer completed normally.
    Completed,
    /// Transfer completed for the responsive receivers, with silent
    /// stragglers evicted (graceful degradation).
    Degraded,
    /// The runtime gave up waiting for progress.
    Stalled,
    /// FIN arrived before the transfer completed.
    SenderGone,
    /// Any other protocol/transport failure.
    Failed,
}

impl Outcome {
    /// Stable lowercase name used in traces.
    pub fn as_str(&self) -> &'static str {
        match self {
            Outcome::Completed => "completed",
            Outcome::Degraded => "degraded",
            Outcome::Stalled => "stalled",
            Outcome::SenderGone => "sender_gone",
            Outcome::Failed => "failed",
        }
    }
}

/// Wire-message classification for transport-level events. `Data` and
/// `Parity` split `Message::Packet` by FEC-block index (`index < k` is
/// data), mirroring how the protocol itself treats packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgKind {
    /// Session announcement.
    Announce,
    /// Data packet (`index < k`).
    Data,
    /// Parity packet (`index >= k`).
    Parity,
    /// Sender poll.
    Poll,
    /// NP per-group NAK.
    Nak,
    /// N2 per-packet NAK.
    NakPacket,
    /// Receiver completion report.
    Done,
    /// Session close.
    Fin,
    /// Layered-FEC transport frame.
    FecFrame,
}

impl MsgKind {
    /// Stable lowercase name used in traces.
    pub fn as_str(&self) -> &'static str {
        match self {
            MsgKind::Announce => "announce",
            MsgKind::Data => "data",
            MsgKind::Parity => "parity",
            MsgKind::Poll => "poll",
            MsgKind::Nak => "nak",
            MsgKind::NakPacket => "nak_packet",
            MsgKind::Done => "done",
            MsgKind::Fin => "fin",
            MsgKind::FecFrame => "fec_frame",
        }
    }
}

/// One structured observability event.
///
/// Timestamps are *not* part of the event: the emitting site supplies the
/// session-relative time `t` (seconds) to [`crate::Obs::emit`], and
/// recorders pair the two. This keeps events constructible in sans-io code
/// that has no clock of its own.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    // ---- session lifecycle (pm-core machines + runtime) ----
    /// A protocol machine was constructed for a session.
    SessionStart {
        /// Sender or receiver side.
        role: Role,
        /// Session identifier.
        session: u32,
        /// Transmission groups planned (0 until a receiver learns a plan).
        groups: u32,
        /// Transfer size in bytes (0 until known).
        bytes: u64,
    },
    /// A driven session ended.
    SessionEnd {
        /// Sender or receiver side.
        role: Role,
        /// How it ended.
        outcome: Outcome,
    },
    /// The runtime aborted for lack of progress.
    StallTimeout {
        /// Which driver stalled.
        role: Role,
        /// Seconds since the last progress event.
        waited_secs: f64,
    },
    /// A complete receiver stopped lingering for a lost FIN.
    LingerExpired {
        /// Seconds the receiver lingered.
        waited_secs: f64,
    },

    // ---- sender side (pm-core) ----
    /// Announce multicast (initial or keep-alive).
    AnnounceSent {
        /// Session identifier.
        session: u32,
    },
    /// Data packet multicast.
    DataSent {
        /// Session identifier.
        session: u32,
        /// Transmission group.
        group: u32,
        /// FEC-block index (`< k`).
        index: u16,
    },
    /// Parity (or fallback original retransmission) multicast as repair.
    ParitySent {
        /// Session identifier.
        session: u32,
        /// Transmission group.
        group: u32,
        /// FEC-block index (`>= k` for true parities).
        index: u16,
    },
    /// Poll multicast after a round.
    PollSent {
        /// Session identifier.
        session: u32,
        /// Transmission group.
        group: u32,
        /// Packets sent in the round (NAK slotting parameter `s`).
        sent: u16,
        /// Round number.
        round: u16,
    },
    /// FIN multicast; the session is closing.
    FinSent {
        /// Session identifier.
        session: u32,
    },
    /// A NAK reached the sender.
    NakRecv {
        /// Session identifier.
        session: u32,
        /// Transmission group.
        group: u32,
        /// Packets the receiver still needs.
        needed: u16,
        /// Round the NAK answers.
        round: u16,
        /// True if round gating discarded it (duplicate of a serviced
        /// round).
        stale: bool,
    },
    /// The sender queued one repair round for a group.
    RepairRound {
        /// Session identifier.
        session: u32,
        /// Transmission group.
        group: u32,
        /// The new round number.
        round: u16,
        /// Fresh parities queued.
        parities: u16,
        /// Original data packets re-queued (parity budget exhausted).
        originals: u16,
    },
    /// A receiver reported completion.
    DoneRecv {
        /// Session identifier.
        session: u32,
        /// Reporting receiver.
        receiver: u32,
    },

    // ---- receiver side (pm-core) ----
    /// Data packet received.
    DataRecv {
        /// Session identifier.
        session: u32,
        /// Transmission group.
        group: u32,
        /// FEC-block index (`< k`).
        index: u16,
    },
    /// Parity packet received.
    ParityRecv {
        /// Session identifier.
        session: u32,
        /// Transmission group.
        group: u32,
        /// FEC-block index (`>= k`).
        index: u16,
    },
    /// Poll received.
    PollRecv {
        /// Session identifier.
        session: u32,
        /// Transmission group.
        group: u32,
        /// Packets sent in the round.
        sent: u16,
        /// Round number.
        round: u16,
    },
    /// A transmission group was fully decoded.
    GroupDecoded {
        /// Session identifier.
        session: u32,
        /// Transmission group.
        group: u32,
        /// Data packets reconstructed by the codec (0 on the systematic
        /// fast path).
        recovered: u64,
    },
    /// The decoder's inverse-matrix cache served a repeated loss pattern.
    DecodeCacheHit {
        /// Group size of the code.
        k: u16,
        /// Block size of the code.
        n: u16,
    },
    /// A fresh loss pattern forced an O(k^3) matrix inversion.
    DecodeCacheMiss {
        /// Group size of the code.
        k: u16,
        /// Block size of the code.
        n: u16,
    },
    /// A NAK timer fired and the NAK was multicast.
    NakSent {
        /// Session identifier.
        session: u32,
        /// Transmission group.
        group: u32,
        /// Packets still needed.
        needed: u16,
        /// Round being answered.
        round: u16,
    },
    /// This receiver reported completion.
    DoneSent {
        /// Session identifier.
        session: u32,
        /// The reporting receiver.
        receiver: u32,
    },
    /// FIN received.
    FinRecv {
        /// Session identifier.
        session: u32,
    },
    /// Every group decoded; the transfer is whole.
    TransferComplete {
        /// Session identifier.
        session: u32,
        /// Groups decoded.
        groups: u32,
    },

    // ---- NAK suppression (pm-net) ----
    /// A NAK was scheduled into its slot.
    NakScheduled {
        /// Transmission group.
        group: u32,
        /// Packets still needed.
        needed: u16,
        /// Round being answered.
        round: u16,
        /// Absolute deadline (session clock, seconds).
        deadline: f64,
    },
    /// An overheard NAK damped the scheduled one.
    NakSuppressed {
        /// Transmission group.
        group: u32,
        /// Packets this receiver still needed.
        needed: u16,
        /// Demand of the overheard NAK that covered it.
        covered_by: u16,
    },

    // ---- transports (pm-net) ----
    /// A message left through a transport.
    NetSent {
        /// Message classification.
        kind: MsgKind,
    },
    /// A message was delivered by a transport.
    NetRecv {
        /// Message classification.
        kind: MsgKind,
    },
    /// The fault injector dropped a message.
    NetDropped {
        /// Message classification.
        kind: MsgKind,
    },
    /// The fault injector duplicated a message.
    NetDuplicated {
        /// Message classification.
        kind: MsgKind,
    },
    /// The fault injector held a message back (one-packet reorder).
    NetReordered {
        /// Message classification.
        kind: MsgKind,
    },
    /// The fault injector flipped bits inside a datagram's bytes.
    NetCorrupted {
        /// Classification of the damaged message.
        kind: MsgKind,
    },
    /// The fault injector truncated a datagram.
    NetTruncated {
        /// Classification of the truncated message.
        kind: MsgKind,
    },
    /// The fault injector delivered a garbage datagram ahead of real
    /// traffic.
    NetGarbage {
        /// Length of the garbage datagram in bytes.
        bytes: u64,
    },
    /// A datagram fell inside a scheduled blackout/partition window.
    NetBlackout {
        /// Message classification.
        kind: MsgKind,
        /// True when dropped on the send path, false on receive.
        tx: bool,
    },

    // ---- resilience (pm-core runtime) ----
    /// The driver dropped a corrupt/undecodable datagram and kept going.
    CorruptDropped {
        /// Running total of dropped datagrams for this driver.
        total: u64,
    },
    /// A control-plane send failed and was retried with backoff.
    SendRetry {
        /// Retry attempt number (1-based).
        attempt: u32,
    },
    /// The sender gave up on silent receivers and completed for the
    /// responsive population.
    ReceiverEvicted {
        /// Receivers evicted as unresponsive.
        evicted: u32,
        /// Receivers that had reported completion.
        completed: u32,
    },

    // ---- simulator (pm-sim) ----
    /// One scheme/environment simulation finished.
    SimRun {
        /// Scheme label (e.g. `integrated2(k=7)`).
        scheme: String,
        /// Receiver population.
        receivers: u64,
        /// Trials averaged.
        trials: u64,
        /// Mean transmissions per data packet, `E[M]`.
        mean_m: f64,
        /// Half-width of the 95% confidence interval on `mean_m`.
        ci95: f64,
        /// Mean rounds per transmission group.
        mean_rounds: f64,
    },
    /// One simulated trial (one transmission group, or one packet for
    /// no-FEC) finished. Emitted by the parallel scheme runner at trial
    /// boundaries; `t` is the trial's *simulated* end time, not wall
    /// clock.
    SimTrial {
        /// Scheme label (e.g. `integrated2(k=7)`).
        scheme: String,
        /// Trial index within the run (also the RNG sub-seed index).
        trial: u64,
        /// Transmissions per data packet this trial contributed, `M`.
        m: f64,
        /// Rounds the trial took.
        rounds: f64,
    },

    // ---- session multiplexer (pm-mux) ----
    /// A session was added to an event-driven multiplexer.
    MuxSessionAdded {
        /// Multiplexer session slot.
        session: u32,
        /// Sender or receiver side.
        role: Role,
        /// Sessions live in the multiplexer after the add.
        active: u32,
    },
    /// A multiplexed session finished (completed, degraded, or failed)
    /// and was removed from the driver.
    MuxSessionEnded {
        /// Multiplexer session slot.
        session: u32,
        /// Sender or receiver side.
        role: Role,
        /// Sessions still live after the removal.
        active: u32,
        /// Drive steps this session consumed (the fairness unit).
        drives: u64,
    },
    /// The multiplexer's admission control refused a new session: the
    /// rolling utilization estimate was above the high-water mark (or the
    /// hard session cap was reached). The session never ran.
    MuxAdmissionRejected {
        /// The session id that was refused.
        session: u32,
        /// The side that tried to join.
        role: Role,
        /// Sessions live at the moment of refusal.
        active: u32,
        /// Rolling poll-budget utilization (1.0 = the turn budget is
        /// fully consumed) that triggered the refusal.
        utilization: f64,
    },
    /// The multiplexer's poll budget has been saturated for long enough
    /// that the overload policy considers the mux overloaded. Shedding
    /// may follow. Paired with `mux_overload_cleared`.
    MuxOverload {
        /// Sessions live when the overload was declared.
        active: u32,
        /// Rolling utilization at declaration.
        utilization: f64,
    },
    /// Utilization fell back below the high-water mark: the overload
    /// episode (begun by `mux_overload`) is over.
    MuxOverloadCleared {
        /// Sessions live when the overload cleared.
        active: u32,
        /// Rolling utilization at clearance.
        utilization: f64,
    },
    /// Sustained overload made the policy shed this session: it was
    /// removed mid-flight with a typed `Shed` outcome and a postmortem,
    /// by deterministic victim priority — not an error, the mux's
    /// graceful degradation under load.
    MuxSessionShed {
        /// The shed session.
        session: u32,
        /// Sender or receiver side.
        role: Role,
        /// Sessions still live after the shed.
        active: u32,
        /// Drive steps the session had consumed when shed.
        drives: u64,
        /// Rolling utilization that sustained the overload.
        utilization: f64,
    },

    // ---- shared-socket farm (pm-net) ----
    /// A shared-socket farm demultiplexed a datagram to a session with no
    /// registered endpoint — a stranger, or a straggler of a finished or
    /// shed session — and dropped it after counting.
    FarmUnknownDrop {
        /// The wire header's session claim (0 if the header was too
        /// damaged to carry one).
        session: u32,
    },

    // ---- telemetry (pm-obs) ----
    /// The code geometry and loss environment of a session, emitted once
    /// by trace producers that know them (harnesses, simulators, drills).
    /// `obs-analyze --compare-analysis` reruns the `pm-analysis` engine at
    /// exactly these parameters to reconcile a measured trace against the
    /// paper's analytical curves.
    SessionConfig {
        /// Session identifier.
        session: u32,
        /// Data packets per transmission group.
        k: u32,
        /// Parity budget per group.
        h: u32,
        /// Receiver population `R`.
        receivers: u32,
        /// Per-packet loss probability `p` of the environment.
        loss: f64,
        /// Codec kernel backend the producer dispatched to
        /// (`pm_simd::backend_name()`: "scalar", "avx2", "neon"), so a
        /// trace's throughput numbers are attributable to a kernel.
        backend: &'static str,
    },
    /// A windowed-telemetry sample for one session: the sliding-window
    /// rates at `t` (see `pm_obs::window`). The live counterpart of the
    /// paper's E\[M\]/cost figures.
    WindowSample {
        /// Session identifier.
        session: u32,
        /// Delivered data packets per second over the window.
        goodput_pps: f64,
        /// NAKs per second over the window.
        nak_rate: f64,
        /// Parity share of all transmissions over the window.
        repair_ratio: f64,
        /// Live E\[M\] estimate: transmissions per data packet.
        live_em: f64,
    },
}

/// Every stable event type name, in `Event` declaration order — the
/// complete trace vocabulary.
///
/// `obs-check` validates the `type` field of every trace line against
/// this list, and the `event-vocabulary` rule of `pm-audit` statically
/// cross-checks its length against the [`Event::name`] match (so adding a
/// variant without extending this list — which would make the new event
/// fail trace validation — is caught at audit time, not in production).
pub const EVENT_NAMES: [&str; 47] = [
    "session_start",
    "session_end",
    "stall_timeout",
    "linger_expired",
    "announce_sent",
    "data_sent",
    "parity_sent",
    "poll_sent",
    "fin_sent",
    "nak_recv",
    "repair_round",
    "done_recv",
    "data_recv",
    "parity_recv",
    "poll_recv",
    "group_decoded",
    "decode_cache_hit",
    "decode_cache_miss",
    "nak_sent",
    "done_sent",
    "fin_recv",
    "transfer_complete",
    "nak_scheduled",
    "nak_suppressed",
    "net_sent",
    "net_recv",
    "net_dropped",
    "net_duplicated",
    "net_reordered",
    "net_corrupted",
    "net_truncated",
    "net_garbage",
    "net_blackout",
    "corrupt_dropped",
    "send_retry",
    "receiver_evicted",
    "sim_run",
    "sim_trial",
    "mux_session_added",
    "mux_session_ended",
    "mux_admission_rejected",
    "mux_overload",
    "mux_overload_cleared",
    "mux_session_shed",
    "farm_unknown_drop",
    "session_config",
    "window_sample",
];

impl Event {
    /// Stable snake_case type name (the `type` field of a JSONL line).
    pub fn name(&self) -> &'static str {
        match self {
            Event::SessionStart { .. } => "session_start",
            Event::SessionEnd { .. } => "session_end",
            Event::StallTimeout { .. } => "stall_timeout",
            Event::LingerExpired { .. } => "linger_expired",
            Event::AnnounceSent { .. } => "announce_sent",
            Event::DataSent { .. } => "data_sent",
            Event::ParitySent { .. } => "parity_sent",
            Event::PollSent { .. } => "poll_sent",
            Event::FinSent { .. } => "fin_sent",
            Event::NakRecv { .. } => "nak_recv",
            Event::RepairRound { .. } => "repair_round",
            Event::DoneRecv { .. } => "done_recv",
            Event::DataRecv { .. } => "data_recv",
            Event::ParityRecv { .. } => "parity_recv",
            Event::PollRecv { .. } => "poll_recv",
            Event::GroupDecoded { .. } => "group_decoded",
            Event::DecodeCacheHit { .. } => "decode_cache_hit",
            Event::DecodeCacheMiss { .. } => "decode_cache_miss",
            Event::NakSent { .. } => "nak_sent",
            Event::DoneSent { .. } => "done_sent",
            Event::FinRecv { .. } => "fin_recv",
            Event::TransferComplete { .. } => "transfer_complete",
            Event::NakScheduled { .. } => "nak_scheduled",
            Event::NakSuppressed { .. } => "nak_suppressed",
            Event::NetSent { .. } => "net_sent",
            Event::NetRecv { .. } => "net_recv",
            Event::NetDropped { .. } => "net_dropped",
            Event::NetDuplicated { .. } => "net_duplicated",
            Event::NetReordered { .. } => "net_reordered",
            Event::NetCorrupted { .. } => "net_corrupted",
            Event::NetTruncated { .. } => "net_truncated",
            Event::NetGarbage { .. } => "net_garbage",
            Event::NetBlackout { .. } => "net_blackout",
            Event::CorruptDropped { .. } => "corrupt_dropped",
            Event::SendRetry { .. } => "send_retry",
            Event::ReceiverEvicted { .. } => "receiver_evicted",
            Event::SimRun { .. } => "sim_run",
            Event::SimTrial { .. } => "sim_trial",
            Event::MuxSessionAdded { .. } => "mux_session_added",
            Event::MuxSessionEnded { .. } => "mux_session_ended",
            Event::MuxAdmissionRejected { .. } => "mux_admission_rejected",
            Event::MuxOverload { .. } => "mux_overload",
            Event::MuxOverloadCleared { .. } => "mux_overload_cleared",
            Event::MuxSessionShed { .. } => "mux_session_shed",
            Event::FarmUnknownDrop { .. } => "farm_unknown_drop",
            Event::SessionConfig { .. } => "session_config",
            Event::WindowSample { .. } => "window_sample",
        }
    }

    /// The session this event belongs to, when it carries one. Wire-level
    /// and codec events (`net_*`, `decode_cache_*`, resilience counters)
    /// are unattributed and return `None` — windowed telemetry folds them
    /// into the farm-wide aggregate only.
    pub fn session(&self) -> Option<u32> {
        match self {
            Event::SessionStart { session, .. }
            | Event::AnnounceSent { session }
            | Event::FinSent { session }
            | Event::FinRecv { session }
            | Event::DataSent { session, .. }
            | Event::ParitySent { session, .. }
            | Event::DataRecv { session, .. }
            | Event::ParityRecv { session, .. }
            | Event::PollSent { session, .. }
            | Event::PollRecv { session, .. }
            | Event::NakRecv { session, .. }
            | Event::RepairRound { session, .. }
            | Event::DoneRecv { session, .. }
            | Event::DoneSent { session, .. }
            | Event::GroupDecoded { session, .. }
            | Event::NakSent { session, .. }
            | Event::TransferComplete { session, .. }
            | Event::MuxSessionAdded { session, .. }
            | Event::MuxSessionEnded { session, .. }
            | Event::MuxAdmissionRejected { session, .. }
            | Event::MuxSessionShed { session, .. }
            | Event::FarmUnknownDrop { session }
            | Event::SessionConfig { session, .. }
            | Event::WindowSample { session, .. } => Some(*session),
            _ => None,
        }
    }

    /// Render as one JSON object with the timestamp `t` and the `type`
    /// name first, then the variant's fields.
    pub fn to_json(&self, t: f64) -> Value {
        let mut m: Vec<(String, Value)> = vec![
            ("t".into(), Value::Number(t)),
            ("type".into(), Value::String(self.name().into())),
        ];
        macro_rules! num {
            ($k:expr, $v:expr) => {
                m.push(($k.into(), Value::Number($v)))
            };
        }
        match self {
            Event::SessionStart {
                role,
                session,
                groups,
                bytes,
            } => {
                m.push(("role".into(), Value::String(role.as_str().into())));
                num!("session", *session as f64);
                num!("groups", *groups as f64);
                num!("bytes", *bytes as f64);
            }
            Event::SessionEnd { role, outcome } => {
                m.push(("role".into(), Value::String(role.as_str().into())));
                m.push(("outcome".into(), Value::String(outcome.as_str().into())));
            }
            Event::StallTimeout { role, waited_secs } => {
                m.push(("role".into(), Value::String(role.as_str().into())));
                num!("waited_secs", *waited_secs);
            }
            Event::LingerExpired { waited_secs } => num!("waited_secs", *waited_secs),
            Event::AnnounceSent { session }
            | Event::FinSent { session }
            | Event::FinRecv { session } => num!("session", *session as f64),
            Event::DataSent {
                session,
                group,
                index,
            }
            | Event::ParitySent {
                session,
                group,
                index,
            }
            | Event::DataRecv {
                session,
                group,
                index,
            }
            | Event::ParityRecv {
                session,
                group,
                index,
            } => {
                num!("session", *session as f64);
                num!("group", *group as f64);
                num!("index", *index as f64);
            }
            Event::PollSent {
                session,
                group,
                sent,
                round,
            }
            | Event::PollRecv {
                session,
                group,
                sent,
                round,
            } => {
                num!("session", *session as f64);
                num!("group", *group as f64);
                num!("sent", *sent as f64);
                num!("round", *round as f64);
            }
            Event::NakRecv {
                session,
                group,
                needed,
                round,
                stale,
            } => {
                num!("session", *session as f64);
                num!("group", *group as f64);
                num!("needed", *needed as f64);
                num!("round", *round as f64);
                m.push(("stale".into(), Value::Bool(*stale)));
            }
            Event::RepairRound {
                session,
                group,
                round,
                parities,
                originals,
            } => {
                num!("session", *session as f64);
                num!("group", *group as f64);
                num!("round", *round as f64);
                num!("parities", *parities as f64);
                num!("originals", *originals as f64);
            }
            Event::DoneRecv { session, receiver } | Event::DoneSent { session, receiver } => {
                num!("session", *session as f64);
                num!("receiver", *receiver as f64);
            }
            Event::GroupDecoded {
                session,
                group,
                recovered,
            } => {
                num!("session", *session as f64);
                num!("group", *group as f64);
                num!("recovered", *recovered as f64);
            }
            Event::DecodeCacheHit { k, n } | Event::DecodeCacheMiss { k, n } => {
                num!("k", *k as f64);
                num!("n", *n as f64);
            }
            Event::NakSent {
                session,
                group,
                needed,
                round,
            } => {
                num!("session", *session as f64);
                num!("group", *group as f64);
                num!("needed", *needed as f64);
                num!("round", *round as f64);
            }
            Event::TransferComplete { session, groups } => {
                num!("session", *session as f64);
                num!("groups", *groups as f64);
            }
            Event::NakScheduled {
                group,
                needed,
                round,
                deadline,
            } => {
                num!("group", *group as f64);
                num!("needed", *needed as f64);
                num!("round", *round as f64);
                num!("deadline", *deadline);
            }
            Event::NakSuppressed {
                group,
                needed,
                covered_by,
            } => {
                num!("group", *group as f64);
                num!("needed", *needed as f64);
                num!("covered_by", *covered_by as f64);
            }
            Event::NetSent { kind }
            | Event::NetRecv { kind }
            | Event::NetDropped { kind }
            | Event::NetDuplicated { kind }
            | Event::NetReordered { kind }
            | Event::NetCorrupted { kind }
            | Event::NetTruncated { kind } => {
                m.push(("kind".into(), Value::String(kind.as_str().into())));
            }
            Event::NetGarbage { bytes } => num!("bytes", *bytes as f64),
            Event::NetBlackout { kind, tx } => {
                m.push(("kind".into(), Value::String(kind.as_str().into())));
                m.push(("tx".into(), Value::Bool(*tx)));
            }
            Event::CorruptDropped { total } => num!("total", *total as f64),
            Event::SendRetry { attempt } => num!("attempt", *attempt as f64),
            Event::ReceiverEvicted { evicted, completed } => {
                num!("evicted", *evicted as f64);
                num!("completed", *completed as f64);
            }
            Event::SimRun {
                scheme,
                receivers,
                trials,
                mean_m,
                ci95,
                mean_rounds,
            } => {
                m.push(("scheme".into(), Value::String(scheme.clone())));
                num!("receivers", *receivers as f64);
                num!("trials", *trials as f64);
                num!("mean_m", *mean_m);
                num!("ci95", *ci95);
                num!("mean_rounds", *mean_rounds);
            }
            Event::SimTrial {
                scheme,
                trial,
                m: m_value,
                rounds,
            } => {
                m.push(("scheme".into(), Value::String(scheme.clone())));
                num!("trial", *trial as f64);
                num!("m", *m_value);
                num!("rounds", *rounds);
            }
            Event::MuxSessionAdded {
                session,
                role,
                active,
            } => {
                num!("session", *session as f64);
                m.push(("role".into(), Value::String(role.as_str().into())));
                num!("active", *active as f64);
            }
            Event::MuxSessionEnded {
                session,
                role,
                active,
                drives,
            } => {
                num!("session", *session as f64);
                m.push(("role".into(), Value::String(role.as_str().into())));
                num!("active", *active as f64);
                num!("drives", *drives as f64);
            }
            Event::MuxAdmissionRejected {
                session,
                role,
                active,
                utilization,
            } => {
                num!("session", *session as f64);
                m.push(("role".into(), Value::String(role.as_str().into())));
                num!("active", *active as f64);
                num!("utilization", *utilization);
            }
            Event::MuxOverload {
                active,
                utilization,
            }
            | Event::MuxOverloadCleared {
                active,
                utilization,
            } => {
                num!("active", *active as f64);
                num!("utilization", *utilization);
            }
            Event::MuxSessionShed {
                session,
                role,
                active,
                drives,
                utilization,
            } => {
                num!("session", *session as f64);
                m.push(("role".into(), Value::String(role.as_str().into())));
                num!("active", *active as f64);
                num!("drives", *drives as f64);
                num!("utilization", *utilization);
            }
            Event::FarmUnknownDrop { session } => num!("session", *session as f64),
            Event::SessionConfig {
                session,
                k,
                h,
                receivers,
                loss,
                backend,
            } => {
                num!("session", *session as f64);
                num!("k", *k as f64);
                num!("h", *h as f64);
                num!("receivers", *receivers as f64);
                num!("loss", *loss);
                m.push(("backend".into(), Value::String((*backend).into())));
            }
            Event::WindowSample {
                session,
                goodput_pps,
                nak_rate,
                repair_ratio,
                live_em,
            } => {
                num!("session", *session as f64);
                num!("goodput_pps", *goodput_pps);
                num!("nak_rate", *nak_rate);
                num!("repair_ratio", *repair_ratio);
                num!("live_em", *live_em);
            }
        }
        Value::Object(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_carries_t_and_type() {
        let ev = Event::DataSent {
            session: 7,
            group: 2,
            index: 5,
        };
        let v = ev.to_json(1.25);
        assert_eq!(v["t"], 1.25);
        assert_eq!(v["type"], "data_sent");
        assert_eq!(v["group"], 2);
        assert_eq!(v["index"], 5);
    }

    #[test]
    fn every_variant_names_and_serializes() {
        let samples = vec![
            Event::SessionStart {
                role: Role::Sender,
                session: 1,
                groups: 3,
                bytes: 4096,
            },
            Event::SessionEnd {
                role: Role::Receiver,
                outcome: Outcome::Completed,
            },
            Event::StallTimeout {
                role: Role::Sender,
                waited_secs: 1.5,
            },
            Event::LingerExpired { waited_secs: 0.3 },
            Event::AnnounceSent { session: 1 },
            Event::DataSent {
                session: 1,
                group: 0,
                index: 0,
            },
            Event::ParitySent {
                session: 1,
                group: 0,
                index: 9,
            },
            Event::PollSent {
                session: 1,
                group: 0,
                sent: 8,
                round: 1,
            },
            Event::FinSent { session: 1 },
            Event::NakRecv {
                session: 1,
                group: 0,
                needed: 2,
                round: 1,
                stale: false,
            },
            Event::RepairRound {
                session: 1,
                group: 0,
                round: 2,
                parities: 2,
                originals: 0,
            },
            Event::DoneRecv {
                session: 1,
                receiver: 4,
            },
            Event::DataRecv {
                session: 1,
                group: 0,
                index: 0,
            },
            Event::ParityRecv {
                session: 1,
                group: 0,
                index: 9,
            },
            Event::PollRecv {
                session: 1,
                group: 0,
                sent: 8,
                round: 1,
            },
            Event::GroupDecoded {
                session: 1,
                group: 0,
                recovered: 2,
            },
            Event::DecodeCacheHit { k: 8, n: 48 },
            Event::DecodeCacheMiss { k: 8, n: 48 },
            Event::NakSent {
                session: 1,
                group: 0,
                needed: 2,
                round: 1,
            },
            Event::DoneSent {
                session: 1,
                receiver: 4,
            },
            Event::FinRecv { session: 1 },
            Event::TransferComplete {
                session: 1,
                groups: 3,
            },
            Event::NakScheduled {
                group: 0,
                needed: 2,
                round: 1,
                deadline: 0.015,
            },
            Event::NakSuppressed {
                group: 0,
                needed: 2,
                covered_by: 3,
            },
            Event::NetSent {
                kind: MsgKind::Data,
            },
            Event::NetRecv {
                kind: MsgKind::Poll,
            },
            Event::NetDropped {
                kind: MsgKind::Parity,
            },
            Event::NetDuplicated { kind: MsgKind::Nak },
            Event::NetReordered {
                kind: MsgKind::Announce,
            },
            Event::NetCorrupted {
                kind: MsgKind::Data,
            },
            Event::NetTruncated {
                kind: MsgKind::Done,
            },
            Event::NetGarbage { bytes: 48 },
            Event::NetBlackout {
                kind: MsgKind::Fin,
                tx: true,
            },
            Event::CorruptDropped { total: 3 },
            Event::SendRetry { attempt: 2 },
            Event::ReceiverEvicted {
                evicted: 1,
                completed: 2,
            },
            Event::SimRun {
                scheme: "no-FEC".into(),
                receivers: 16,
                trials: 100,
                mean_m: 1.2,
                ci95: 0.01,
                mean_rounds: 2.0,
            },
            Event::SimTrial {
                scheme: "no-FEC".into(),
                trial: 3,
                m: 1.5,
                rounds: 2.0,
            },
            Event::MuxSessionAdded {
                session: 7,
                role: Role::Sender,
                active: 12,
            },
            Event::MuxSessionEnded {
                session: 7,
                role: Role::Receiver,
                active: 11,
                drives: 4096,
            },
            Event::MuxAdmissionRejected {
                session: 9,
                role: Role::Sender,
                active: 12,
                utilization: 0.97,
            },
            Event::MuxOverload {
                active: 12,
                utilization: 0.99,
            },
            Event::MuxOverloadCleared {
                active: 10,
                utilization: 0.4,
            },
            Event::MuxSessionShed {
                session: 8,
                role: Role::Receiver,
                active: 11,
                drives: 512,
                utilization: 0.99,
            },
            Event::FarmUnknownDrop { session: 51 },
            Event::SessionConfig {
                session: 1,
                k: 8,
                h: 40,
                receivers: 16,
                loss: 0.05,
                backend: "scalar",
            },
            Event::WindowSample {
                session: 1,
                goodput_pps: 120.0,
                nak_rate: 3.5,
                repair_ratio: 0.12,
                live_em: 1.09,
            },
        ];
        let mut names = std::collections::HashSet::new();
        for ev in &samples {
            assert!(names.insert(ev.name()), "duplicate name {}", ev.name());
            let line = serde_json::to_string(&ev.to_json(0.5)).unwrap();
            let back = serde_json::from_str(&line).unwrap();
            assert_eq!(back["type"].as_str(), Some(ev.name()));
            assert_eq!(back["t"].as_f64(), Some(0.5));
        }
        assert_eq!(names.len(), 47, "vocabulary size pinned");
        // EVENT_NAMES is the trace-validation vocabulary: it must list
        // exactly the names the variants produce.
        assert_eq!(EVENT_NAMES.len(), names.len());
        for name in EVENT_NAMES {
            assert!(names.contains(name), "EVENT_NAMES lists unknown {name}");
        }
        for name in &names {
            assert!(
                EVENT_NAMES.contains(name),
                "{name} missing from EVENT_NAMES"
            );
        }
    }
}
