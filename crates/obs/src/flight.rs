//! Session flight recorder: bounded event history + typed postmortems.
//!
//! A [`FlightRecorder`] is a [`crate::Recorder`] holding the last
//! `capacity` events of a session in a ring — memory is bounded no matter
//! how hostile the session (pinned by `bounded_under_event_storm`). When
//! the session ends degraded, quarantined, or errored, the driver calls
//! [`FlightRecorder::postmortem`] to freeze the ring into a [`Postmortem`]
//! — a self-contained, schema-tagged artifact that travels on
//! `SessionReport` and renders to a single JSON object
//! (`pm.postmortem.v1`) for offline triage.
//!
//! Tee it next to the session's normal recorder with [`crate::Obs::tee`]
//! so the machines' own emissions land in the ring without any extra
//! plumbing at the call sites.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::Value;

use crate::event::Event;
use crate::window::WindowSnapshot;

/// Schema tag stamped into every rendered postmortem.
pub const POSTMORTEM_SCHEMA: &str = "pm.postmortem.v1";

/// Bounded ring of the most recent `(t, event)` pairs for one session.
pub struct FlightRecorder {
    capacity: usize,
    inner: Mutex<VecDeque<(f64, Event)>>,
    evicted: AtomicU64,
}

impl FlightRecorder {
    /// A recorder keeping at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
            evicted: AtomicU64::new(0),
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("flight ring poisoned").len()
    }

    /// True when no events have been recorded (or all were evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted from the ring since construction.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Maximum events the ring holds.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Freeze the ring into a [`Postmortem`].
    ///
    /// `session` overrides the attribution; when `None` the id is derived
    /// from the first recorded event that carries one (mux slots pass
    /// their token explicitly, blocking drivers let the trace speak).
    pub fn postmortem(&self, role: &str, outcome: &str, session: Option<u32>) -> Postmortem {
        let ring = self.inner.lock().expect("flight ring poisoned");
        let events: Vec<(f64, Event)> = ring.iter().cloned().collect();
        let session = session.or_else(|| events.iter().find_map(|(_, e)| e.session()));
        Postmortem {
            session,
            role: role.to_string(),
            outcome: outcome.to_string(),
            evicted_events: self.evicted(),
            events,
            window: None,
        }
    }
}

impl crate::Recorder for FlightRecorder {
    fn record(&self, t: f64, event: &Event) {
        let mut ring = self.inner.lock().expect("flight ring poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back((t, event.clone()));
    }
}

/// A frozen flight-recorder dump for one degraded/errored session.
///
/// Carried on `SessionReport` so callers get the artifact with the
/// result, and rendered to JSON (`pm.postmortem.v1`) for files and logs.
#[derive(Debug, Clone, PartialEq)]
pub struct Postmortem {
    /// Session id, when any recorded event (or the caller) named one.
    pub session: Option<u32>,
    /// Driver role (`"sender"` / `"receiver"`).
    pub role: String,
    /// Terminal outcome label (`"degraded"`, `"quarantined"`,
    /// `"stalled"`, an error string, ...).
    pub outcome: String,
    /// Events that fell off the ring before the dump.
    pub evicted_events: u64,
    /// The retained tail of the event stream, oldest first.
    pub events: Vec<(f64, Event)>,
    /// Final windowed-telemetry snapshot, when the driver kept windows.
    pub window: Option<WindowSnapshot>,
}

impl Postmortem {
    /// Attach a final window snapshot (builder style).
    pub fn with_window(mut self, window: WindowSnapshot) -> Self {
        self.window = Some(window);
        self
    }

    /// Render the full artifact as one JSON object.
    pub fn to_json(&self) -> Value {
        let mut m = vec![
            ("schema".into(), Value::String(POSTMORTEM_SCHEMA.into())),
            ("role".into(), Value::String(self.role.clone())),
            ("outcome".into(), Value::String(self.outcome.clone())),
            (
                "evicted_events".into(),
                Value::Number(self.evicted_events as f64),
            ),
        ];
        if let Some(s) = self.session {
            m.push(("session".into(), Value::Number(f64::from(s))));
        }
        m.push((
            "events".into(),
            Value::Array(self.events.iter().map(|(t, e)| e.to_json(*t)).collect()),
        ));
        if let Some(w) = &self.window {
            m.push((
                "window".into(),
                Value::Object(vec![
                    ("t".into(), Value::Number(w.t)),
                    ("goodput_pps".into(), Value::Number(w.goodput_pps)),
                    ("nak_rate".into(), Value::Number(w.nak_rate)),
                    ("repair_ratio".into(), Value::Number(w.repair_ratio)),
                    ("live_em".into(), Value::Number(w.live_em)),
                    ("corrupt_rate".into(), Value::Number(w.corrupt_rate)),
                    ("evicted".into(), Value::Number(w.evicted as f64)),
                ]),
            ));
        }
        Value::Object(m)
    }

    /// Render as a single JSON line.
    pub fn to_string_json(&self) -> String {
        serde_json::to_string(&self.to_json()).expect("postmortem renders")
    }

    /// Validate a rendered postmortem against the `pm.postmortem.v1`
    /// schema: required keys, right types, every event a valid trace
    /// object with `t` and a known `type`.
    pub fn validate(value: &Value) -> Result<(), String> {
        let obj = match value {
            Value::Object(m) => m,
            _ => return Err("postmortem must be a JSON object".into()),
        };
        let get = |key: &str| obj.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        match get("schema") {
            Some(Value::String(s)) if s == POSTMORTEM_SCHEMA => {}
            Some(Value::String(s)) => return Err(format!("unknown schema {s:?}")),
            _ => return Err("missing schema tag".into()),
        }
        for key in ["role", "outcome"] {
            match get(key) {
                Some(Value::String(s)) if !s.is_empty() => {}
                _ => return Err(format!("missing or empty {key:?}")),
            }
        }
        match get("evicted_events") {
            Some(Value::Number(n)) if *n >= 0.0 => {}
            _ => return Err("missing evicted_events".into()),
        }
        let events = match get("events") {
            Some(Value::Array(evs)) => evs,
            _ => return Err("missing events array".into()),
        };
        for (i, ev) in events.iter().enumerate() {
            let em = match ev {
                Value::Object(m) => m,
                _ => return Err(format!("event {i} is not an object")),
            };
            let field = |key: &str| em.iter().find(|(k, _)| k == key).map(|(_, v)| v);
            match field("t") {
                Some(Value::Number(_)) => {}
                _ => return Err(format!("event {i} missing numeric t")),
            }
            match field("type") {
                Some(Value::String(name)) if crate::EVENT_NAMES.contains(&name.as_str()) => {}
                Some(Value::String(name)) => {
                    return Err(format!("event {i} has unknown type {name:?}"))
                }
                _ => return Err(format!("event {i} missing type")),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn data_sent(session: u32, index: u16) -> Event {
        Event::DataSent {
            session,
            group: 0,
            index,
        }
    }

    #[test]
    fn ring_keeps_only_the_tail() {
        let fr = FlightRecorder::new(4);
        for i in 0..10u16 {
            fr.record(i as f64, &data_sent(1, i));
        }
        assert_eq!(fr.len(), 4);
        assert_eq!(fr.evicted(), 6);
        let pm = fr.postmortem("sender", "degraded", None);
        assert_eq!(pm.events.len(), 4);
        assert_eq!(pm.events[0].1, data_sent(1, 6));
        assert_eq!(pm.events[3].1, data_sent(1, 9));
    }

    #[test]
    fn bounded_under_event_storm() {
        // A hostile session emitting 10^5 events must not grow the ring
        // past its capacity.
        let fr = FlightRecorder::new(256);
        for i in 0..100_000u32 {
            fr.record(i as f64 * 1e-4, &data_sent(7, (i % 1000) as u16));
        }
        assert_eq!(fr.len(), 256);
        assert_eq!(fr.evicted(), 100_000 - 256);
        let pm = fr.postmortem("receiver", "stalled", None);
        assert_eq!(pm.events.len(), 256);
        assert_eq!(pm.evicted_events, 100_000 - 256);
    }

    #[test]
    fn postmortem_derives_session_from_events() {
        let fr = FlightRecorder::new(8);
        fr.record(0.0, &Event::CorruptDropped { total: 1 }); // unattributed
        fr.record(0.1, &data_sent(42, 0));
        let pm = fr.postmortem("sender", "degraded", None);
        assert_eq!(pm.session, Some(42));
        // Explicit override wins.
        let pm2 = fr.postmortem("sender", "degraded", Some(7));
        assert_eq!(pm2.session, Some(7));
    }

    #[test]
    fn rendered_postmortem_validates() {
        let fr = FlightRecorder::new(8);
        for i in 0..12u16 {
            fr.record(i as f64 * 0.5, &data_sent(3, i));
        }
        let pm = fr
            .postmortem("sender", "degraded", None)
            .with_window(crate::WindowSet::new(Default::default()).snapshot(6.0));
        let line = pm.to_string_json();
        let back = serde_json::from_str(&line).unwrap();
        Postmortem::validate(&back).unwrap();
    }

    #[test]
    fn validate_rejects_malformed() {
        assert!(Postmortem::validate(&Value::Null).is_err());
        // Wrong schema tag.
        let bad = Value::Object(vec![(
            "schema".into(),
            Value::String("pm.postmortem.v0".into()),
        )]);
        assert!(Postmortem::validate(&bad).is_err());
        // Event with unknown type.
        let bad_ev = Value::Object(vec![
            ("schema".into(), Value::String(POSTMORTEM_SCHEMA.into())),
            ("role".into(), Value::String("sender".into())),
            ("outcome".into(), Value::String("degraded".into())),
            ("evicted_events".into(), Value::Number(0.0)),
            (
                "events".into(),
                Value::Array(vec![Value::Object(vec![
                    ("t".into(), Value::Number(0.0)),
                    ("type".into(), Value::String("not_an_event".into())),
                ])]),
            ),
        ]);
        assert!(Postmortem::validate(&bad_ev).is_err());
    }
}
