//! Recorders and the [`Obs`] handle.
//!
//! The fast-path contract: instrumented code holds an [`Obs`] and calls
//! [`Obs::emit`] with a *closure* that builds the event. When the handle
//! wraps the [`NullRecorder`], `emit` is a single predictable branch on a
//! cached bool — the closure never runs, the event is never constructed,
//! and no virtual dispatch happens (verified at ≤ a few ns/event by the
//! `obs` bench in `pm-bench`).

use std::collections::VecDeque;
use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::event::Event;

/// An event sink. Implementations must be cheap and non-blocking enough to
/// sit on protocol hot paths (or advertise themselves disabled).
pub trait Recorder: Send + Sync {
    /// Record one event at session-relative time `t` (seconds).
    fn record(&self, t: f64, event: &Event);

    /// False when recording is a no-op; [`Obs`] caches this at
    /// construction so disabled recorders cost one branch per emit.
    fn is_enabled(&self) -> bool {
        true
    }
}

/// The compile-away fast path: records nothing, reports itself disabled.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&self, _t: f64, _event: &Event) {}
    fn is_enabled(&self) -> bool {
        false
    }
}

/// A cheap-to-clone handle to a recorder. This is what instrumented types
/// store; `Obs::null()` is the default everywhere, so observability is
/// strictly opt-in.
#[derive(Clone)]
pub struct Obs {
    enabled: bool,
    rec: Arc<dyn Recorder>,
}

impl Obs {
    /// A handle to the shared [`NullRecorder`] (no allocation after the
    /// first call).
    pub fn null() -> Self {
        static NULL: OnceLock<Arc<NullRecorder>> = OnceLock::new();
        Obs {
            enabled: false,
            rec: NULL.get_or_init(|| Arc::new(NullRecorder)).clone(),
        }
    }

    /// Wrap a recorder; its `is_enabled` answer is cached here.
    pub fn new(rec: Arc<dyn Recorder>) -> Self {
        Obs {
            enabled: rec.is_enabled(),
            rec,
        }
    }

    /// True when emitted events actually reach a sink.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Emit an event at time `t`. The closure runs only when a real
    /// recorder is attached — the null path is one branch.
    #[inline]
    pub fn emit(&self, t: f64, make: impl FnOnce() -> Event) {
        if self.enabled {
            self.rec.record(t, &make());
        }
    }

    /// A handle that records to both this handle's sink and `extra`.
    ///
    /// Composition point for the telemetry layer: wrap a session's trace
    /// recorder with a flight recorder or windowed-telemetry sink without
    /// the instrumented code knowing. When this handle is the null one,
    /// the result records to `extra` alone (no dead tee branch).
    pub fn tee(&self, extra: Arc<dyn Recorder>) -> Obs {
        if self.enabled {
            Obs::new(Arc::new(TeeRecorder {
                a: self.rec.clone(),
                b: extra,
            }))
        } else {
            Obs::new(extra)
        }
    }
}

/// Fan-out recorder: every event goes to both sinks, `a` first.
pub struct TeeRecorder {
    a: Arc<dyn Recorder>,
    b: Arc<dyn Recorder>,
}

impl TeeRecorder {
    /// Tee `a` (recorded first) with `b`.
    pub fn new(a: Arc<dyn Recorder>, b: Arc<dyn Recorder>) -> Self {
        TeeRecorder { a, b }
    }
}

impl Recorder for TeeRecorder {
    fn record(&self, t: f64, event: &Event) {
        self.a.record(t, event);
        self.b.record(t, event);
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::null()
    }
}

/// A thread-local staging buffer for events produced off the recording
/// thread.
///
/// Shared recorders serialize every [`Recorder::record`] call (the JSONL
/// and ring recorders take a mutex). A parallel simulation emitting from
/// many workers would contend on that lock and interleave events from
/// unrelated trials. An `EventBuffer` fixes both: workers stage events
/// locally with [`EventBuffer::emit`] (same closure fast-path contract as
/// [`Obs::emit`] — nothing is built when the target is disabled) and call
/// [`EventBuffer::flush_to`] at a *trial boundary*, which replays the
/// batch into the shared recorder back-to-back. Traces therefore
/// interleave at trial granularity, never mid-trial, which is the
/// invariant `obs-check`ed multi-threaded traces rely on.
///
/// ```
/// use std::sync::Arc;
/// use pm_obs::{Event, EventBuffer, Obs, RingRecorder};
/// let ring = Arc::new(RingRecorder::new(8));
/// let obs = Obs::new(ring.clone());
/// let mut buf = EventBuffer::for_obs(&obs);
/// buf.emit(0.1, || Event::FinSent { session: 1 });
/// assert!(ring.is_empty()); // staged, not yet recorded
/// buf.flush_to(&obs);
/// assert_eq!(ring.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct EventBuffer {
    enabled: bool,
    buf: Vec<(f64, Event)>,
}

impl EventBuffer {
    /// A buffer gated on `obs`'s enabled flag: when `obs` is the null
    /// handle, [`EventBuffer::emit`] never constructs events, so hot
    /// loops cost one branch exactly as with [`Obs::emit`].
    pub fn for_obs(obs: &Obs) -> Self {
        EventBuffer {
            enabled: obs.enabled(),
            buf: Vec::new(),
        }
    }

    /// Stage one event at time `t`. The closure runs only when the buffer
    /// was created for an enabled recorder.
    #[inline]
    pub fn emit(&mut self, t: f64, make: impl FnOnce() -> Event) {
        if self.enabled {
            self.buf.push((t, make()));
        }
    }

    /// Events currently staged.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Replay every staged event into `obs` in emission order and clear
    /// the buffer (its capacity is kept for the next trial).
    pub fn flush_to(&mut self, obs: &Obs) {
        for (t, ev) in self.buf.drain(..) {
            obs.emit(t, || ev);
        }
    }
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled)
            .finish()
    }
}

/// Writes one JSON object per line (`{"t":..,"type":..,..}`) to any
/// writer. Wrap the writer in a `BufWriter` for file traces and call
/// [`JsonlRecorder::flush`] when the run ends.
pub struct JsonlRecorder<W: Write + Send> {
    w: Mutex<W>,
}

impl<W: Write + Send> JsonlRecorder<W> {
    /// Record to `w`.
    pub fn new(w: W) -> Self {
        JsonlRecorder { w: Mutex::new(w) }
    }

    /// Flush buffered lines through to the underlying writer.
    pub fn flush(&self) {
        if let Ok(mut w) = self.w.lock() {
            let _ = w.flush();
        }
    }
}

impl JsonlRecorder<std::io::BufWriter<std::fs::File>> {
    /// Create (truncating) a trace file at `path`.
    ///
    /// # Errors
    /// Propagates file-creation errors.
    pub fn create(path: &str) -> std::io::Result<Self> {
        Ok(JsonlRecorder::new(std::io::BufWriter::new(
            std::fs::File::create(path)?,
        )))
    }
}

impl<W: Write + Send> Recorder for JsonlRecorder<W> {
    fn record(&self, t: f64, event: &Event) {
        let line = serde_json::to_string(&event.to_json(t)).expect("event JSON never fails");
        if let Ok(mut w) = self.w.lock() {
            let _ = writeln!(w, "{line}");
        }
    }
}

/// A bounded in-memory recorder for tests: keeps the most recent
/// `capacity` events (older ones are counted, then discarded).
pub struct RingRecorder {
    capacity: usize,
    buf: Mutex<VecDeque<(f64, Event)>>,
    evicted: std::sync::atomic::AtomicU64,
}

impl RingRecorder {
    /// A ring holding up to `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingRecorder {
            capacity,
            buf: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            evicted: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Snapshot of the retained `(t, event)` pairs, oldest first.
    pub fn events(&self) -> Vec<(f64, Event)> {
        self.buf
            .lock()
            .map(|b| b.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.lock().map(|b| b.len()).unwrap_or(0)
    }

    /// True when nothing has been recorded (or everything evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events discarded because the ring was full.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl Recorder for RingRecorder {
    fn record(&self, t: f64, event: &Event) {
        if let Ok(mut b) = self.buf.lock() {
            if b.len() == self.capacity {
                b.pop_front();
                self.evicted
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            b.push_back((t, event.clone()));
        }
    }
}

/// Wall-clock epoch translating `Instant`s into the `f64` seconds the
/// event vocabulary uses. Transports that have no caller-supplied clock
/// stamp events with a `Stopwatch` started at construction.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    epoch: Instant,
}

impl Stopwatch {
    /// Start counting now.
    pub fn start() -> Self {
        Stopwatch {
            epoch: Instant::now(),
        }
    }

    /// Seconds since the epoch.
    pub fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Stopwatch::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u16) -> Event {
        Event::DataSent {
            session: 1,
            group: 0,
            index: i,
        }
    }

    #[test]
    fn null_recorder_never_builds_events() {
        let obs = Obs::null();
        assert!(!obs.enabled());
        let mut built = false;
        obs.emit(0.0, || {
            built = true;
            ev(0)
        });
        assert!(!built, "closure must not run on the null path");
    }

    #[test]
    fn ring_keeps_most_recent() {
        let ring = Arc::new(RingRecorder::new(3));
        let obs = Obs::new(ring.clone());
        assert!(obs.enabled());
        for i in 0..5 {
            obs.emit(i as f64, || ev(i));
        }
        let events = ring.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].1, ev(2));
        assert_eq!(events[2].1, ev(4));
        assert_eq!(ring.evicted(), 2);
    }

    #[test]
    fn jsonl_lines_parse_back() {
        let rec = Arc::new(JsonlRecorder::new(Vec::<u8>::new()));
        let obs = Obs::new(rec.clone());
        obs.emit(0.5, || ev(3));
        obs.emit(1.5, || Event::FinSent { session: 9 });
        let bytes = rec.w.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let v0 = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(v0["type"], "data_sent");
        assert_eq!(v0["t"], 0.5);
        let v1 = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(v1["type"], "fin_sent");
        assert_eq!(v1["session"], 9);
    }

    #[test]
    fn buffer_stages_then_flushes_in_order() {
        let ring = Arc::new(RingRecorder::new(8));
        let obs = Obs::new(ring.clone());
        let mut buf = EventBuffer::for_obs(&obs);
        for i in 0..4 {
            buf.emit(i as f64, || ev(i));
        }
        assert_eq!(buf.len(), 4);
        assert!(ring.is_empty(), "nothing recorded before the flush");
        buf.flush_to(&obs);
        assert!(buf.is_empty());
        let events = ring.events();
        assert_eq!(events.len(), 4);
        for (i, (t, e)) in events.iter().enumerate() {
            assert_eq!(*t, i as f64);
            assert_eq!(*e, ev(i as u16));
        }
    }

    #[test]
    fn buffer_for_null_obs_never_builds() {
        let mut buf = EventBuffer::for_obs(&Obs::null());
        let mut built = false;
        buf.emit(0.0, || {
            built = true;
            ev(0)
        });
        assert!(!built, "closure must not run for a disabled target");
        assert!(buf.is_empty());
        buf.flush_to(&Obs::null()); // no-op, must not panic
    }

    #[test]
    fn buffer_is_reusable_across_flushes() {
        let ring = Arc::new(RingRecorder::new(8));
        let obs = Obs::new(ring.clone());
        let mut buf = EventBuffer::for_obs(&obs);
        buf.emit(1.0, || ev(1));
        buf.flush_to(&obs);
        buf.emit(2.0, || ev(2));
        buf.flush_to(&obs);
        assert_eq!(ring.len(), 2);
    }

    #[test]
    fn stopwatch_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.now();
        let b = sw.now();
        assert!(b >= a && a >= 0.0);
    }
}
