#![forbid(unsafe_code)]
//! # pm-obs — zero-dependency observability for the parity-multicast stack
//!
//! One coherent, typed event vocabulary plus lock-cheap metrics, threaded
//! through every layer of the repo:
//!
//! - **Events** ([`event`]): the [`Event`] enum names everything the
//!   protocol, transports, codec, and simulator can report — session
//!   lifecycle, per-round NAK/repair traffic, suppression decisions,
//!   network faults, decode-cache behaviour. [`Event::to_json`] renders a
//!   flat `{"t": .., "type": .., ..}` object for JSONL traces.
//! - **Recorders** ([`recorder`]): the [`Recorder`] trait with three
//!   implementations — [`NullRecorder`] (the default; [`Obs::emit`] is a
//!   single branch and never constructs the event), [`JsonlRecorder`]
//!   (one JSON object per line to any writer), and [`RingRecorder`]
//!   (bounded in-memory buffer for tests). Instrumented types hold an
//!   [`Obs`] handle, defaulting to [`Obs::null`]. Parallel producers
//!   stage events in a thread-local [`EventBuffer`] and flush whole
//!   trials at a time, so multi-threaded traces never interleave
//!   mid-trial.
//! - **Metrics** ([`metrics`]): atomic [`Counter`]s and [`Gauge`]s, a
//!   fixed-bucket log2 [`Histogram`] with p50/p90/p99/max, RAII
//!   [`SpanTimer`]s, and a [`MetricsRegistry`] with text/JSON snapshots.
//! - **Stats** ([`stats`]): the Welford [`RunningStat`] shared with
//!   `pm-sim`, with `NaN`-honest variance and a [`RunningStat::ci95`]
//!   confidence-interval helper.
//!
//! The crate deliberately depends only on the vendored `serde`/
//! `serde_json` already in-tree — no external registry crates.
//!
//! ```
//! use std::sync::Arc;
//! use pm_obs::{Event, Obs, RingRecorder};
//!
//! let ring = Arc::new(RingRecorder::new(16));
//! let obs = Obs::new(ring.clone());
//! obs.emit(0.25, || Event::DataSent { session: 7, group: 0, index: 3 });
//! assert_eq!(ring.events()[0].1.name(), "data_sent");
//! ```

pub mod analyze;
pub mod check;
pub mod event;
pub mod export;
pub mod flight;
pub mod metrics;
pub mod recorder;
pub mod stats;
pub mod window;

pub use analyze::{analyze_trace, Incident, SessionAnalysis, SessionConfigInfo, TraceAnalysis};
pub use check::{validate_trace, Census, TraceError};
pub use event::{Event, MsgKind, Outcome, Role, EVENT_NAMES};
pub use export::{prometheus_name, render_prometheus, ExportServer, SnapshotFile};
pub use flight::{FlightRecorder, Postmortem, POSTMORTEM_SCHEMA};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, Metric, MetricsRegistry, SpanTimer,
};
pub use recorder::{
    EventBuffer, JsonlRecorder, NullRecorder, Obs, Recorder, RingRecorder, Stopwatch, TeeRecorder,
};
pub use stats::RunningStat;
pub use window::{WindowConfig, WindowSet, WindowSnapshot, WindowTelemetry, WindowedCounter};
