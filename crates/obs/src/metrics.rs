//! Lock-cheap metrics: atomic counters and gauges, a fixed-bucket log2
//! histogram with quantile estimates, RAII span timers, and a
//! [`MetricsRegistry`] that renders text and JSON snapshots.
//!
//! All handles are `Arc`-backed clones of shared state, so the same
//! counter can live in a registry *and* inside a codec without
//! synchronisation beyond the atomics themselves.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde_json::Value;

/// Monotonically increasing `u64` counter. Clones share the same cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Signed gauge for levels that move both ways (queue depth, members).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrite the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Move the level by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

const BUCKETS: usize = 64;

#[derive(Debug)]
struct HistInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// Fixed-bucket log2 histogram of `u64` samples (typically nanoseconds).
///
/// Bucket `i` holds samples whose value fits in `i` bits, so quantiles are
/// power-of-two upper bounds — coarse, but lock-free and constant-size,
/// which is what a protocol hot path can afford.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistInner>);

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram(Arc::new(HistInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }))
    }

    fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let inner = &*self.0;
        inner.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.min.fetch_min(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Consistent-enough point-in-time view for reporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &*self.0;
        let buckets: Vec<u64> = inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        HistogramSnapshot {
            count,
            sum: inner.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                inner.min.load(Ordering::Relaxed)
            },
            max: inner.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Start a span whose elapsed nanoseconds land here on drop.
    pub fn span(&self) -> SpanTimer<'_> {
        SpanTimer::start(self)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Frozen view of a [`Histogram`] used for quantile math and rendering.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Total samples in `buckets` (re-summed at snapshot time).
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Smallest recorded value (exact; 0 when empty).
    pub min: u64,
    /// Largest recorded value (exact, not a bucket bound).
    pub max: u64,
    /// Per-bucket counts; bucket `i` covers values needing `i` bits.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Estimate of quantile `q` in `[0, 1]`; 0 when the histogram is
    /// empty.
    ///
    /// The quantile rank is located in its log2 bucket and then linearly
    /// interpolated within the bucket's value span (midpoint convention:
    /// the j-th of c samples sits at fraction `(j - 0.5) / c`), assuming
    /// samples spread uniformly across the bucket. Snapping to the bucket
    /// upper bound — the old behaviour — was off by up to 2× for
    /// mid-bucket distributions; interpolation is exact for uniform data
    /// and never leaves the bucket. The top populated bucket's span is
    /// clamped to the recorded maximum, so `quantile(1.0)` can never
    /// exceed `max`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut before = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if before + c >= rank {
                if i == 0 {
                    return 0; // bucket 0 holds only the value 0
                }
                // The exact recorded min/max tighten the end buckets: a
                // degenerate all-one-value distribution reports that value
                // exactly instead of an interpolated guess.
                let lo = (1u64 << (i - 1)).max(self.min.min(self.max));
                let hi = ((1u64 << i) - 1).min(self.max).max(lo);
                let frac = ((rank - before) as f64 - 0.5) / c as f64;
                let v = lo as f64 + (hi - lo) as f64 * frac;
                return (v.round() as u64).clamp(lo, hi);
            }
            before += c;
        }
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// RAII timer: measures from construction to drop and records the elapsed
/// nanoseconds into its histogram.
#[derive(Debug)]
pub struct SpanTimer<'a> {
    hist: &'a Histogram,
    start: Instant,
}

impl<'a> SpanTimer<'a> {
    /// Start timing into `hist`.
    pub fn start(hist: &'a Histogram) -> Self {
        SpanTimer {
            hist,
            start: Instant::now(),
        }
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.hist.record(ns);
    }
}

/// One registered metric.
#[derive(Debug, Clone)]
pub enum Metric {
    /// See [`Counter`].
    Counter(Counter),
    /// See [`Gauge`].
    Gauge(Gauge),
    /// See [`Histogram`].
    Histogram(Histogram),
}

/// Named collection of metrics with get-or-create registration and
/// text/JSON snapshot rendering. Registration order is preserved.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<(String, Metric)>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut entries = self.entries.lock().expect("registry poisoned");
        if let Some((_, m)) = entries.iter().find(|(n, _)| n == name) {
            return m.clone();
        }
        let m = make();
        entries.push((name.to_string(), m.clone()));
        m
    }

    /// Counter named `name`, created on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_insert(name, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Gauge named `name`, created on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_insert(name, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Histogram named `name`, created on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.get_or_insert(name, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Point-in-time copy of every registered `(name, metric)` pair, in
    /// registration order. Handles are `Arc`-backed clones, so reading
    /// them reflects live values — the exporter renders from this.
    pub fn entries(&self) -> Vec<(String, Metric)> {
        self.entries.lock().expect("registry poisoned").clone()
    }

    /// Human-readable dump, one metric per line, in registration order.
    pub fn render_text(&self) -> String {
        let entries = self.entries.lock().expect("registry poisoned");
        let mut out = String::new();
        for (name, metric) in entries.iter() {
            match metric {
                Metric::Counter(c) => out.push_str(&format!("{name} {}\n", c.get())),
                Metric::Gauge(g) => out.push_str(&format!("{name} {}\n", g.get())),
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    out.push_str(&format!(
                        "{name} count={} mean={:.1} p50={} p90={} p99={} max={}\n",
                        s.count,
                        s.mean(),
                        s.quantile(0.50),
                        s.quantile(0.90),
                        s.quantile(0.99),
                        s.max,
                    ));
                }
            }
        }
        out
    }

    /// JSON snapshot: `{name: value}` for counters/gauges, `{name:
    /// {count, mean, p50, p90, p99, max}}` for histograms.
    pub fn snapshot_json(&self) -> Value {
        let entries = self.entries.lock().expect("registry poisoned");
        let mut fields = Vec::with_capacity(entries.len());
        for (name, metric) in entries.iter() {
            let v = match metric {
                Metric::Counter(c) => Value::Number(c.get() as f64),
                Metric::Gauge(g) => Value::Number(g.get() as f64),
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    Value::Object(vec![
                        ("count".to_string(), Value::Number(s.count as f64)),
                        ("mean".to_string(), Value::Number(s.mean())),
                        ("p50".to_string(), Value::Number(s.quantile(0.50) as f64)),
                        ("p90".to_string(), Value::Number(s.quantile(0.90) as f64)),
                        ("p99".to_string(), Value::Number(s.quantile(0.99) as f64)),
                        ("max".to_string(), Value::Number(s.max as f64)),
                    ])
                }
            };
            fields.push((name.clone(), v));
        }
        Value::Object(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_share_state_across_clones() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("sent");
        let b = reg.counter("sent");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        let g = reg.gauge("depth");
        g.set(7);
        g.add(-2);
        assert_eq!(reg.gauge("depth").get(), 5);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 63);

        for v in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        assert_eq!(s.max, 1000);
        assert_eq!(s.quantile(0.50), 1);
        // p99 rank = ceil(0.99*10) = 10 → the 1000 sample's bucket
        // [512, min(1023, max)] = [512, 1000]; the single sample sits at
        // the bucket midpoint: 512 + 488 * 0.5 = 756 (not the old
        // snapped-to-1023 bound).
        assert_eq!(s.quantile(0.99), 756);
        assert!((s.mean() - 100.9).abs() < 1e-9);
    }

    #[test]
    fn quantiles_interpolate_to_exact_percentiles() {
        // Uniform 1..=1000: the exact percentile is known in closed form,
        // so this pins the interpolation error — the old bucket-bound
        // quantization was off by up to 2× (p50 = 511 instead of 500).
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        for (q, exact) in [(0.50, 500u64), (0.90, 900), (0.99, 990)] {
            let got = s.quantile(q);
            let err = (got as f64 - exact as f64).abs() / exact as f64;
            assert!(
                err <= 0.01,
                "q={q}: got {got}, exact {exact} (err {err:.3})"
            );
        }
        assert_eq!(s.quantile(1.0), 1000, "p100 is the recorded max");
        // Degenerate one-value distributions are exact, not interpolated.
        let one = Histogram::new();
        for _ in 0..100 {
            one.record(7);
        }
        let snap = one.snapshot();
        assert_eq!(snap.quantile(0.5), 7);
        assert_eq!(snap.quantile(0.99), 7);
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn span_timer_records_on_drop() {
        let h = Histogram::new();
        {
            let _t = h.span();
        }
        assert_eq!(h.count(), 1);
        let timer: Option<&Histogram> = Some(&h);
        {
            let _t = timer.map(SpanTimer::start);
        }
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn registry_renders_text_and_json() {
        let reg = MetricsRegistry::new();
        reg.counter("np.data_sent").add(12);
        reg.gauge("hub.members").set(3);
        reg.histogram("decode_ns").record(900);
        let text = reg.render_text();
        assert!(text.contains("np.data_sent 12"));
        assert!(text.contains("hub.members 3"));
        assert!(text.contains("decode_ns count=1"));

        let json = reg.snapshot_json();
        assert_eq!(json["np.data_sent"], 12.0);
        assert_eq!(json["hub.members"], 3.0);
        assert_eq!(json["decode_ns"]["count"], 1.0);
        assert_eq!(json["decode_ns"]["max"], 900.0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }
}
