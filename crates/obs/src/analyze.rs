//! Offline trace analytics — the library behind the `obs-analyze` binary.
//!
//! [`analyze_trace`] replays a validated JSONL trace into per-session
//! measurements of exactly the figures the paper argues in: measured
//! E[M] (transmissions per distinct data packet), per-receiver completion
//! fairness (Jain's index over completion times), feedback bandwidth
//! (NAK + DONE messages per second), and stall/linger timelines. The
//! `obs-analyze --compare-analysis` mode feeds
//! [`SessionAnalysis::measured_em`] back against the `pm-analysis`
//! analytical engine at the trace's recorded `(k, h, R, p)` — the
//! end-to-end check that the live protocol reproduces the paper's curves
//! rather than just the simulator.

use std::collections::{BTreeMap, BTreeSet};

use crate::check::{validate_trace, Census, TraceError};

/// The `(k, h, R, p)` a trace's `session_config` event recorded.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionConfigInfo {
    /// Data packets per transmission group.
    pub k: u32,
    /// Parity budget per group.
    pub h: u32,
    /// Receiver population.
    pub receivers: u32,
    /// Configured packet-loss probability.
    pub loss: f64,
    /// Codec kernel backend the producer reported ("scalar", "avx2",
    /// "neon"), absent in traces predating the field.
    pub backend: Option<String>,
}

/// Everything measured about one session in a trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SessionAnalysis {
    /// Recorded protocol geometry, when the trace carries a
    /// `session_config` event.
    pub config: Option<SessionConfigInfo>,
    /// Distinct `(group, index)` data packets the sender transmitted.
    pub data_packets: u64,
    /// Total data transmissions (originals + retransmitted originals).
    pub data_tx: u64,
    /// Total parity transmissions.
    pub parity_tx: u64,
    /// NAK messages (max of sent/received counts — a trace may carry one
    /// side, the other, or both; max avoids double-counting).
    nak_sent: u64,
    nak_recv: u64,
    /// Repair rounds the sender opened.
    pub repair_rounds: u64,
    /// First DONE time per receiver (sent or received, whichever the
    /// trace carries first).
    pub done_times: BTreeMap<u32, f64>,
    /// Earliest event time for the session.
    pub first_t: f64,
    /// Latest event time for the session.
    pub last_t: f64,
    /// A `transfer_complete` event was seen.
    pub completed: bool,
    /// A `mux_session_shed` event named this session: the multiplexer
    /// removed it mid-flight under sustained overload.
    pub shed: bool,
    events: u64,
}

impl SessionAnalysis {
    /// NAK messages attributed to the session.
    pub fn naks(&self) -> u64 {
        self.nak_sent.max(self.nak_recv)
    }

    /// Session duration in trace seconds.
    pub fn duration(&self) -> f64 {
        (self.last_t - self.first_t).max(0.0)
    }

    /// Events attributed to the session.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Measured E[M]: total transmissions per distinct data packet —
    /// the live counterpart of the paper's expected transmissions figure.
    /// `None` until at least one data packet was sent.
    pub fn measured_em(&self) -> Option<f64> {
        if self.data_packets == 0 {
            None
        } else {
            Some((self.data_tx + self.parity_tx) as f64 / self.data_packets as f64)
        }
    }

    /// Jain's fairness index over per-receiver completion times:
    /// `(Σx)² / (n·Σx²)`, 1.0 when every receiver finishes together.
    /// `None` without any DONE events.
    pub fn fairness(&self) -> Option<f64> {
        if self.done_times.is_empty() {
            return None;
        }
        let n = self.done_times.len() as f64;
        let sum: f64 = self.done_times.values().sum();
        let sum_sq: f64 = self.done_times.values().map(|t| t * t).sum();
        if sum_sq == 0.0 {
            // Everyone finished at t=0 — perfectly fair.
            return Some(1.0);
        }
        Some(sum * sum / (n * sum_sq))
    }

    /// The session's verdict as the trace tells it: `"shed"` when the
    /// multiplexer removed it under overload, `"clean"` when a
    /// `transfer_complete` landed, `"incomplete"` otherwise (the trace
    /// alone cannot distinguish a typed error from a still-running
    /// session — the driver's report ledger carries that split).
    pub fn verdict(&self) -> &'static str {
        if self.shed {
            "shed"
        } else if self.completed {
            "clean"
        } else {
            "incomplete"
        }
    }

    /// Feedback messages (NAKs + DONEs) per second of session time.
    /// `None` for zero-duration sessions.
    pub fn feedback_bandwidth(&self) -> Option<f64> {
        let d = self.duration();
        if d <= 0.0 {
            None
        } else {
            Some((self.naks() + self.done_times.len() as u64) as f64 / d)
        }
    }
}

/// One incident on the trace timeline: a stall or linger, or one of the
/// multiplexer's overload-control events (admission refusal, overload
/// episode boundaries, a session shed).
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// Trace time of the event.
    pub t: f64,
    /// `"stall_timeout"`, `"linger_expired"`, `"mux_admission_rejected"`,
    /// `"mux_overload"`, `"mux_overload_cleared"`, or
    /// `"mux_session_shed"`.
    pub kind: String,
    /// Role string when the event carried one.
    pub role: Option<String>,
    /// Seconds waited before the incident fired (stall/linger only).
    pub waited_secs: f64,
    /// Rolling mux utilization the event reported (overload family only).
    pub utilization: Option<f64>,
    /// The session the incident named, when the event carried one.
    pub session: Option<u32>,
}

/// Event types that land on the incident timeline.
const INCIDENT_KINDS: [&str; 6] = [
    "stall_timeout",
    "linger_expired",
    "mux_admission_rejected",
    "mux_overload",
    "mux_overload_cleared",
    "mux_session_shed",
];

/// Full analysis of one JSONL trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceAnalysis {
    /// Total valid event lines.
    pub events: u64,
    /// Per-event-type line counts (same as `obs-check`).
    pub census: Census,
    /// Per-session measurements, keyed by session id.
    pub sessions: BTreeMap<u32, SessionAnalysis>,
    /// Stall/linger incidents in trace order.
    pub incidents: Vec<Incident>,
    /// Latest event time in the whole trace.
    pub last_t: f64,
}

impl TraceAnalysis {
    /// The single session of a single-session trace, if there is exactly
    /// one.
    pub fn sole_session(&self) -> Option<(u32, &SessionAnalysis)> {
        if self.sessions.len() == 1 {
            self.sessions.iter().next().map(|(id, s)| (*id, s))
        } else {
            None
        }
    }

    /// Sessions a `mux_session_shed` event named — the trace-side shed
    /// ledger. Reconciles exactly against the census count of
    /// `mux_session_shed` lines, the shed incidents on the timeline, and
    /// (end to end) the driver's `Mux::shed_count()`.
    pub fn shed_sessions(&self) -> u64 {
        self.sessions.values().filter(|s| s.shed).count() as u64
    }
}

fn num(v: &serde::Value, key: &str) -> Option<f64> {
    v.get(key).and_then(|x| x.as_f64())
}

fn num_u64(v: &serde::Value, key: &str) -> Option<u64> {
    num(v, key)
        .filter(|n| *n >= 0.0 && n.is_finite())
        .map(|n| n as u64)
}

fn num_u32(v: &serde::Value, key: &str) -> Option<u32> {
    num_u64(v, key).map(|n| n as u32)
}

/// Validate and analyze the text of a JSONL trace.
///
/// # Errors
/// Any [`TraceError`] the validator reports — analysis never runs over an
/// invalid trace.
pub fn analyze_trace(text: &str) -> Result<TraceAnalysis, TraceError> {
    let census = validate_trace(text)?;
    let events = census.values().sum();

    let mut sessions: BTreeMap<u32, SessionAnalysis> = BTreeMap::new();
    let mut seen_data: BTreeMap<u32, BTreeSet<(u64, u64)>> = BTreeMap::new();
    let mut incidents = Vec::new();
    let mut last_t = 0.0f64;

    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        // Already validated above; skip anything that won't re-parse.
        let Ok(v) = serde_json::from_str(line) else {
            continue;
        };
        let (Some(t), Some(ty)) = (num(&v, "t"), v.get("type").and_then(|x| x.as_str())) else {
            continue;
        };
        let ty = ty.to_string();
        if t > last_t {
            last_t = t;
        }

        if INCIDENT_KINDS.contains(&ty.as_str()) {
            incidents.push(Incident {
                t,
                kind: ty.clone(),
                role: v.get("role").and_then(|r| r.as_str()).map(str::to_string),
                waited_secs: num(&v, "waited_secs").unwrap_or(0.0),
                utilization: num(&v, "utilization"),
                session: num_u32(&v, "session"),
            });
            // A shed names a real session and counts toward its timeline;
            // the rest either carry no session or (admission refusals) a
            // prospective slot label that never ran.
            if ty != "mux_session_shed" {
                continue;
            }
        }

        let Some(session) = num_u32(&v, "session") else {
            continue;
        };
        let s = sessions.entry(session).or_insert_with(|| SessionAnalysis {
            first_t: t,
            last_t: t,
            ..Default::default()
        });
        s.events += 1;
        if t < s.first_t {
            s.first_t = t;
        }
        if t > s.last_t {
            s.last_t = t;
        }

        match ty.as_str() {
            "session_config" => {
                if let (Some(k), Some(h), Some(receivers), Some(loss)) = (
                    num_u32(&v, "k"),
                    num_u32(&v, "h"),
                    num_u32(&v, "receivers"),
                    num(&v, "loss"),
                ) {
                    s.config = Some(SessionConfigInfo {
                        k,
                        h,
                        receivers,
                        loss,
                        backend: v
                            .get("backend")
                            .and_then(|b| b.as_str())
                            .map(str::to_string),
                    });
                }
            }
            "data_sent" => {
                s.data_tx += 1;
                if let (Some(g), Some(i)) = (num_u64(&v, "group"), num_u64(&v, "index")) {
                    if seen_data.entry(session).or_default().insert((g, i)) {
                        s.data_packets += 1;
                    }
                } else {
                    s.data_packets += 1;
                }
            }
            "parity_sent" => s.parity_tx += 1,
            "nak_sent" => s.nak_sent += 1,
            "nak_recv" => s.nak_recv += 1,
            "repair_round" => s.repair_rounds += 1,
            "done_sent" | "done_recv" => {
                if let Some(receiver) = num_u32(&v, "receiver") {
                    s.done_times.entry(receiver).or_insert(t);
                }
            }
            "transfer_complete" => s.completed = true,
            "mux_session_shed" => s.shed = true,
            _ => {}
        }
    }

    Ok(TraceAnalysis {
        events,
        census,
        sessions,
        incidents,
        last_t,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(t: f64, ty: &str, rest: &str) -> String {
        if rest.is_empty() {
            format!("{{\"t\": {t}, \"type\": \"{ty}\"}}")
        } else {
            format!("{{\"t\": {t}, \"type\": \"{ty}\", {rest}}}")
        }
    }

    #[test]
    fn measures_em_from_distinct_data_packets() {
        let mut trace = String::new();
        trace.push_str(&line(
            0.0,
            "session_config",
            "\"session\": 1, \"k\": 4, \"h\": 2, \"receivers\": 3, \"loss\": 0.1, \
             \"backend\": \"avx2\"",
        ));
        trace.push('\n');
        // 4 distinct data packets, one retransmitted, plus 2 parities:
        // E[M] = (5 + 2) / 4 = 1.75.
        for i in 0..4 {
            trace.push_str(&line(
                0.1 * (i + 1) as f64,
                "data_sent",
                &format!("\"session\": 1, \"group\": 0, \"index\": {i}"),
            ));
            trace.push('\n');
        }
        trace.push_str(&line(
            0.5,
            "data_sent",
            "\"session\": 1, \"group\": 0, \"index\": 2",
        ));
        trace.push('\n');
        for i in 4..6 {
            trace.push_str(&line(
                0.6,
                "parity_sent",
                &format!("\"session\": 1, \"group\": 0, \"index\": {i}"),
            ));
            trace.push('\n');
        }
        let a = analyze_trace(&trace).unwrap();
        let (id, s) = a.sole_session().unwrap();
        assert_eq!(id, 1);
        assert_eq!(s.data_packets, 4);
        assert_eq!(s.data_tx, 5);
        assert_eq!(s.parity_tx, 2);
        assert!((s.measured_em().unwrap() - 1.75).abs() < 1e-12);
        let cfg = s.config.clone().unwrap();
        assert_eq!((cfg.k, cfg.h, cfg.receivers), (4, 2, 3));
        assert!((cfg.loss - 0.1).abs() < 1e-12);
        assert_eq!(cfg.backend.as_deref(), Some("avx2"));
    }

    #[test]
    fn fairness_is_one_for_simultaneous_finishers() {
        let mut trace = String::new();
        for r in 0..3 {
            trace.push_str(&line(
                2.0,
                "done_recv",
                &format!("\"session\": 1, \"receiver\": {r}"),
            ));
            trace.push('\n');
        }
        let a = analyze_trace(&trace).unwrap();
        let s = &a.sessions[&1];
        assert!((s.fairness().unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(s.done_times.len(), 3);
    }

    #[test]
    fn fairness_drops_for_stragglers() {
        let mut trace = String::new();
        for (r, t) in [(0u32, 1.0), (1, 1.0), (2, 10.0)] {
            trace.push_str(&line(
                t,
                "done_recv",
                &format!("\"session\": 1, \"receiver\": {r}"),
            ));
            trace.push('\n');
        }
        let a = analyze_trace(&trace).unwrap();
        let f = a.sessions[&1].fairness().unwrap();
        assert!(f < 0.6, "straggler should hurt fairness, got {f}");
    }

    #[test]
    fn naks_take_max_of_sides_and_incidents_are_collected() {
        let mut trace = String::new();
        for i in 0..4 {
            trace.push_str(&line(
                0.1 * (i + 1) as f64,
                "nak_sent",
                "\"session\": 1, \"group\": 0, \"needed\": 1, \"round\": 0",
            ));
            trace.push('\n');
        }
        for i in 0..3 {
            trace.push_str(&line(
                0.1 * (i + 1) as f64 + 0.01,
                "nak_recv",
                "\"session\": 1, \"group\": 0, \"needed\": 1, \"round\": 0",
            ));
            trace.push('\n');
        }
        trace.push_str(&line(
            5.0,
            "stall_timeout",
            "\"role\": \"sender\", \"waited_secs\": 4.5",
        ));
        trace.push('\n');
        let a = analyze_trace(&trace).unwrap();
        assert_eq!(a.sessions[&1].naks(), 4);
        assert_eq!(a.incidents.len(), 1);
        assert_eq!(a.incidents[0].kind, "stall_timeout");
        assert_eq!(a.incidents[0].role.as_deref(), Some("sender"));
        assert!((a.incidents[0].waited_secs - 4.5).abs() < 1e-12);
    }

    #[test]
    fn overload_incidents_and_shed_verdicts_reconcile() {
        let mut trace = String::new();
        // Session 1 completes; session 2 is shed mid-flight; session 7 is
        // refused admission (its id is a prospective slot label and must
        // NOT materialize as a session).
        trace.push_str(&line(
            0.1,
            "data_sent",
            "\"session\": 1, \"group\": 0, \"index\": 0",
        ));
        trace.push('\n');
        trace.push_str(&line(
            0.2,
            "transfer_complete",
            "\"session\": 1, \"bytes\": 128",
        ));
        trace.push('\n');
        trace.push_str(&line(
            0.3,
            "data_sent",
            "\"session\": 2, \"group\": 0, \"index\": 0",
        ));
        trace.push('\n');
        trace.push_str(&line(
            0.4,
            "mux_overload",
            "\"active\": 2, \"utilization\": 0.93",
        ));
        trace.push('\n');
        trace.push_str(&line(
            0.5,
            "mux_admission_rejected",
            "\"session\": 7, \"role\": \"sender\", \"active\": 2, \"utilization\": 0.93",
        ));
        trace.push('\n');
        trace.push_str(&line(
            0.6,
            "mux_session_shed",
            "\"session\": 2, \"role\": \"receiver\", \"active\": 1, \"drives\": 5, \
             \"utilization\": 0.95",
        ));
        trace.push('\n');
        trace.push_str(&line(
            0.7,
            "mux_overload_cleared",
            "\"active\": 1, \"utilization\": 0.41",
        ));
        trace.push('\n');
        let a = analyze_trace(&trace).unwrap();

        // All four overload events land on the incident timeline, in order.
        let kinds: Vec<&str> = a.incidents.iter().map(|i| i.kind.as_str()).collect();
        assert_eq!(
            kinds,
            [
                "mux_overload",
                "mux_admission_rejected",
                "mux_session_shed",
                "mux_overload_cleared"
            ]
        );
        assert_eq!(a.incidents[1].session, Some(7));
        assert_eq!(a.incidents[2].session, Some(2));
        assert_eq!(a.incidents[2].role.as_deref(), Some("receiver"));
        assert!((a.incidents[2].utilization.unwrap() - 0.95).abs() < 1e-12);

        // Verdicts: 1 clean, 2 shed; the refused session never exists.
        assert_eq!(a.sessions[&1].verdict(), "clean");
        assert_eq!(a.sessions[&2].verdict(), "shed");
        assert!(!a.sessions.contains_key(&7));

        // Reconciliation: ledger == census == timeline.
        assert_eq!(a.shed_sessions(), 1);
        assert_eq!(a.census.get("mux_session_shed").copied(), Some(1));
        assert_eq!(
            a.incidents
                .iter()
                .filter(|i| i.kind == "mux_session_shed")
                .count(),
            1
        );
    }

    #[test]
    fn invalid_trace_is_rejected() {
        assert!(analyze_trace("not json\n").is_err());
        assert!(analyze_trace("").is_err());
    }
}
