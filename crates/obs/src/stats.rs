//! Online statistics shared by the metrics layer and the simulator.
//!
//! This is the home of [`RunningStat`]; `pm-sim` re-exports it so existing
//! `pm_sim::RunningStat` call sites keep working.

/// Welford online mean/variance accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStat {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStat {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance. `NaN` with fewer than two observations —
    /// the variance is genuinely undefined there, and a silent 0 made
    /// single-trial runs look infinitely precise.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Standard error of the mean (`NaN` with fewer than two
    /// observations).
    pub fn stderr(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            (self.variance() / self.n as f64).sqrt()
        }
    }

    /// Half-width of the normal-approximation 95% confidence interval,
    /// `1.96 × stderr` (`NaN` with fewer than two observations).
    pub fn ci95(&self) -> f64 {
        1.96 * self.stderr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let mut s = RunningStat::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance 4 => sample variance 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        let se = (32.0 / 7.0 / 8.0_f64).sqrt();
        assert!((s.stderr() - se).abs() < 1e-12);
        assert!((s.ci95() - 1.96 * se).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_are_nan_not_zero() {
        let s = RunningStat::new();
        assert_eq!(s.mean(), 0.0);
        assert!(s.variance().is_nan());
        assert!(s.stderr().is_nan());
        assert!(s.ci95().is_nan());
        let mut s = RunningStat::new();
        s.push(3.0);
        assert_eq!(s.mean(), 3.0);
        assert!(s.variance().is_nan(), "n=1 variance is undefined, not 0");
        assert!(s.stderr().is_nan());
    }

    #[test]
    fn two_observations_are_defined() {
        let mut s = RunningStat::new();
        s.push(1.0);
        s.push(3.0);
        assert!((s.variance() - 2.0).abs() < 1e-12);
        assert!(s.stderr().is_finite());
    }
}
