//! Online statistics shared by the metrics layer and the simulator.
//!
//! This is the home of [`RunningStat`]; `pm-sim` re-exports it so existing
//! `pm_sim::RunningStat` call sites keep working.

/// Welford online mean/variance accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStat {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStat {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Absorb another accumulator, as if every observation pushed into
    /// `other` had been pushed into `self` — the parallel variance
    /// combine of Chan, Golub & LeVeque (1979). This is what lets
    /// per-thread accumulators from a parallel sweep collapse into one
    /// result; merging is exact in `n` and agrees with single-pass
    /// accumulation to floating-point reassociation error.
    ///
    /// Merging is associative up to that same reassociation error, and an
    /// empty accumulator is an identity on both sides (bit-exactly).
    pub fn merge(&mut self, other: &RunningStat) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let n = n1 + n2;
        let delta = other.mean - self.mean;
        self.mean += delta * (n2 / n);
        self.m2 += other.m2 + delta * delta * (n1 * n2 / n);
        self.n += other.n;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance. `NaN` with fewer than two observations —
    /// the variance is genuinely undefined there, and a silent 0 made
    /// single-trial runs look infinitely precise.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Standard error of the mean (`NaN` with fewer than two
    /// observations).
    pub fn stderr(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            (self.variance() / self.n as f64).sqrt()
        }
    }

    /// Half-width of the normal-approximation 95% confidence interval,
    /// `1.96 × stderr` (`NaN` with fewer than two observations).
    pub fn ci95(&self) -> f64 {
        1.96 * self.stderr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let mut s = RunningStat::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance 4 => sample variance 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        let se = (32.0 / 7.0 / 8.0_f64).sqrt();
        assert!((s.stderr() - se).abs() < 1e-12);
        assert!((s.ci95() - 1.96 * se).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_are_nan_not_zero() {
        let s = RunningStat::new();
        assert_eq!(s.mean(), 0.0);
        assert!(s.variance().is_nan());
        assert!(s.stderr().is_nan());
        assert!(s.ci95().is_nan());
        let mut s = RunningStat::new();
        s.push(3.0);
        assert_eq!(s.mean(), 3.0);
        assert!(s.variance().is_nan(), "n=1 variance is undefined, not 0");
        assert!(s.stderr().is_nan());
    }

    #[test]
    fn two_observations_are_defined() {
        let mut s = RunningStat::new();
        s.push(1.0);
        s.push(3.0);
        assert!((s.variance() - 2.0).abs() < 1e-12);
        assert!(s.stderr().is_finite());
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut a = RunningStat::new();
        for x in [1.0, 2.5, -3.0] {
            a.push(x);
        }
        let before = a;
        a.merge(&RunningStat::new());
        assert_eq!(a, before, "right identity");
        let mut b = RunningStat::new();
        b.merge(&before);
        assert_eq!(b, before, "left identity");
    }

    #[test]
    fn merge_of_halves_matches_single_pass() {
        let xs: Vec<f64> = (0..101).map(|i| (i as f64 * 0.37).sin() * 5.0).collect();
        let mut whole = RunningStat::new();
        for &x in &xs {
            whole.push(x);
        }
        let (lo, hi) = xs.split_at(40);
        let mut a = RunningStat::new();
        let mut b = RunningStat::new();
        lo.iter().for_each(|&x| a.push(x));
        hi.iter().for_each(|&x| b.push(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-12);
        assert!((a.stderr() - whole.stderr()).abs() < 1e-12);
    }

    #[test]
    fn merge_counts_are_exact() {
        let mut a = RunningStat::new();
        let mut b = RunningStat::new();
        (0..7).for_each(|i| a.push(i as f64));
        (0..11).for_each(|i| b.push(i as f64));
        a.merge(&b);
        assert_eq!(a.count(), 18);
    }
}

#[cfg(test)]
mod merge_properties {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Chan-merge of an arbitrary split equals single-pass Welford
        /// within 1e-12 relative error, for mean, variance and stderr.
        #[test]
        fn split_merge_matches_single_pass(
            xs in proptest::collection::vec(-1e3f64..1e3, 2..200),
            cut_frac in 0.0f64..1.0,
        ) {
            let cut = ((xs.len() as f64 * cut_frac) as usize).min(xs.len());
            let mut whole = RunningStat::new();
            xs.iter().for_each(|&x| whole.push(x));
            let mut left = RunningStat::new();
            let mut right = RunningStat::new();
            xs[..cut].iter().for_each(|&x| left.push(x));
            xs[cut..].iter().for_each(|&x| right.push(x));
            left.merge(&right);
            prop_assert_eq!(left.count(), whole.count());
            prop_assert!(close(left.mean(), whole.mean(), 1e-12));
            prop_assert!(close(left.variance(), whole.variance(), 1e-9),
                "variance {} vs {}", left.variance(), whole.variance());
            prop_assert!(close(left.stderr(), whole.stderr(), 1e-9));
        }

        /// Merging many chunk accumulators in order (the pm-par reduction
        /// shape) also agrees with one pass.
        #[test]
        fn chunked_merge_matches_single_pass(
            xs in proptest::collection::vec(-50f64..50.0, 2..300),
            chunk in 1usize..32,
        ) {
            let mut whole = RunningStat::new();
            xs.iter().for_each(|&x| whole.push(x));
            let mut merged = RunningStat::new();
            for c in xs.chunks(chunk) {
                let mut part = RunningStat::new();
                c.iter().for_each(|&x| part.push(x));
                merged.merge(&part);
            }
            prop_assert_eq!(merged.count(), whole.count());
            prop_assert!(close(merged.mean(), whole.mean(), 1e-12));
            prop_assert!(close(merged.variance(), whole.variance(), 1e-9));
        }
    }
}
