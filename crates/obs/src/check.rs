//! Trace validation — the library behind the `obs-check` binary.
//!
//! [`validate_trace`] checks a JSONL trace line by line: every line must
//! parse as a JSON object carrying a finite, non-negative numeric `"t"`
//! and a `"type"` drawn from [`crate::event::EVENT_NAMES`]. Hostile input
//! — malformed JSON, truncated final lines, unknown event names, empty
//! files — produces a line-numbered [`TraceError`], never a panic.

use std::collections::BTreeMap;
use std::fmt;

use crate::event::EVENT_NAMES;

/// Per-event-type line counts of a valid trace.
pub type Census = BTreeMap<String, u64>;

/// Why a trace failed validation. Carries the 1-based line number where
/// applicable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The trace has no non-blank lines.
    Empty,
    /// A line did not parse as JSON (also the shape a truncated final
    /// line takes).
    BadJson {
        /// 1-based line number.
        line: usize,
        /// Parser diagnostic.
        detail: String,
    },
    /// A line is valid JSON but lacks a required field or has the wrong
    /// type for it.
    BadField {
        /// 1-based line number.
        line: usize,
        /// What is wrong.
        detail: String,
    },
    /// The `type` field names an event outside the pinned vocabulary.
    UnknownEvent {
        /// 1-based line number.
        line: usize,
        /// The offending name.
        name: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Empty => write!(f, "trace is empty"),
            TraceError::BadJson { line, detail } => {
                write!(f, "line {line}: not valid JSON: {detail}")
            }
            TraceError::BadField { line, detail } => write!(f, "line {line}: {detail}"),
            TraceError::UnknownEvent { line, name } => write!(
                f,
                "line {line}: unknown event type {name:?} (not in the {}-name vocabulary)",
                EVENT_NAMES.len()
            ),
        }
    }
}

impl std::error::Error for TraceError {}

/// Validate the text of a JSONL trace.
///
/// # Errors
/// The first [`TraceError`] encountered, with its line number.
pub fn validate_trace(text: &str) -> Result<Census, TraceError> {
    let mut census: Census = BTreeMap::new();
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        lines += 1;
        let lineno = i + 1;
        let v = serde_json::from_str(line).map_err(|e| TraceError::BadJson {
            line: lineno,
            detail: format!("{e:?}"),
        })?;
        let t = v.get("t").ok_or_else(|| TraceError::BadField {
            line: lineno,
            detail: "missing \"t\" field".into(),
        })?;
        let t = t.as_f64().ok_or_else(|| TraceError::BadField {
            line: lineno,
            detail: "\"t\" is not a number".into(),
        })?;
        if !t.is_finite() || t < 0.0 {
            return Err(TraceError::BadField {
                line: lineno,
                detail: format!("\"t\" = {t} is not a finite non-negative time"),
            });
        }
        let ty = v
            .get("type")
            .and_then(|ty| ty.as_str().map(str::to_string))
            .ok_or_else(|| TraceError::BadField {
                line: lineno,
                detail: "missing string \"type\" field".into(),
            })?;
        if !EVENT_NAMES.contains(&ty.as_str()) {
            return Err(TraceError::UnknownEvent {
                line: lineno,
                name: ty,
            });
        }
        *census.entry(ty).or_insert(0) += 1;
    }
    if lines == 0 {
        return Err(TraceError::Empty);
    }
    Ok(census)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_trace_produces_census() {
        let text = "{\"t\": 0.0, \"type\": \"data_sent\"}\n\n{\"t\": 1.5, \"type\": \"data_sent\"}\n{\"t\": 2.0, \"type\": \"fin_sent\"}\n";
        let census = validate_trace(text).unwrap();
        assert_eq!(census["data_sent"], 2);
        assert_eq!(census["fin_sent"], 1);
    }

    #[test]
    fn empty_trace_is_an_error() {
        assert_eq!(validate_trace(""), Err(TraceError::Empty));
        assert_eq!(validate_trace("\n  \n"), Err(TraceError::Empty));
    }
}
