//! Sliding-window telemetry over the event stream.
//!
//! A [`WindowTelemetry`] recorder folds the typed event vocabulary into
//! ring-of-buckets counters keyed by the **session clock** — the `t`
//! passed to [`crate::Obs::emit`] — never a wall clock, so the same trace
//! yields byte-identical windows whether it was produced under
//! `VirtualClock`, `WallClock`, or replayed offline. Per-session and
//! farm-wide [`WindowSet`]s produce the live rates the paper argues in:
//! goodput, NAK rate, repair ratio, and the running E[M] estimator
//! (transmissions per delivered data packet).
//!
//! Windows are mergeable: two [`WindowedCounter`]s built from disjoint
//! event streams combine commutatively bucket-by-bucket, so multi-worker
//! farms can keep thread-local windows and fold them without ordering
//! sensitivity (pinned by `merge_is_commutative` below).

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::event::Event;

/// Geometry of a sliding window: `buckets` ring slots of `bucket_secs`
/// each, so the window spans `bucket_secs * buckets` seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowConfig {
    /// Width of one bucket in session-clock seconds.
    pub bucket_secs: f64,
    /// Number of ring slots.
    pub buckets: usize,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            bucket_secs: 1.0,
            buckets: 8,
        }
    }
}

impl WindowConfig {
    /// Window span in seconds.
    pub fn span_secs(&self) -> f64 {
        self.bucket_secs * self.buckets as f64
    }

    fn bucket_of(&self, t: f64) -> u64 {
        if t <= 0.0 || !t.is_finite() {
            0
        } else {
            (t / self.bucket_secs) as u64
        }
    }
}

/// A ring of counting buckets indexed by absolute bucket number.
///
/// `record(t, n)` adds `n` to the bucket containing `t`; `windowed(now)`
/// sums the buckets inside the window ending at `now` without mutating
/// anything, so reads at different `now` values are pure functions of the
/// recorded history. The ring only remembers the last `buckets` slots —
/// recording forward evicts stale slots lazily.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedCounter {
    cfg: WindowConfig,
    /// Slot `i` holds the count for absolute bucket `abs` where
    /// `abs % len == i` and `abs` is within `len` of `head`.
    counts: Vec<u64>,
    /// Absolute bucket numbers for each slot (u64::MAX = empty).
    slots: Vec<u64>,
    /// Highest absolute bucket seen so far.
    head: u64,
    /// Lifetime total, across all buckets ever.
    total: u64,
}

const EMPTY_SLOT: u64 = u64::MAX;

impl WindowedCounter {
    /// An empty counter with the given geometry.
    pub fn new(cfg: WindowConfig) -> Self {
        WindowedCounter {
            cfg,
            counts: vec![0; cfg.buckets.max(1)],
            slots: vec![EMPTY_SLOT; cfg.buckets.max(1)],
            head: 0,
            total: 0,
        }
    }

    /// Add `n` to the bucket containing session time `t`.
    pub fn record(&mut self, t: f64, n: u64) {
        let abs = self.cfg.bucket_of(t);
        let len = self.counts.len() as u64;
        // Events older than the ring can remember are folded into the
        // lifetime total only.
        if abs + len <= self.head.max(len) && self.head >= len {
            self.total += n;
            return;
        }
        let i = (abs % len) as usize;
        if self.slots[i] != abs {
            self.slots[i] = abs;
            self.counts[i] = 0;
        }
        self.counts[i] += n;
        self.total += n;
        if abs > self.head {
            self.head = abs;
        }
    }

    /// Sum of the buckets inside the window ending at `now`.
    pub fn windowed(&self, now: f64) -> u64 {
        let end = self.cfg.bucket_of(now);
        let len = self.counts.len() as u64;
        let start = end.saturating_sub(len - 1);
        let mut sum = 0;
        for (i, &abs) in self.slots.iter().enumerate() {
            if abs != EMPTY_SLOT && abs >= start && abs <= end {
                sum += self.counts[i];
            }
        }
        sum
    }

    /// Events per second over the window ending at `now`.
    pub fn rate(&self, now: f64) -> f64 {
        let span = self.cfg.span_secs();
        if span <= 0.0 {
            0.0
        } else {
            self.windowed(now) as f64 / span
        }
    }

    /// Lifetime total across all buckets ever recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fold `other` into `self`. Merging is commutative and associative
    /// for counters with the same geometry: buckets align by absolute
    /// index, heads take the max, and slots evicted from either ring are
    /// preserved only in the lifetime total (exactly as if the combined
    /// stream had been recorded into one counter in any order).
    pub fn merge(&mut self, other: &WindowedCounter) {
        assert_eq!(
            self.cfg, other.cfg,
            "cannot merge windows with different geometry"
        );
        let len = self.counts.len() as u64;
        let head = self.head.max(other.head);
        let start = head.saturating_sub(len - 1);
        for (i, &abs) in other.slots.iter().enumerate() {
            if abs == EMPTY_SLOT || abs < start {
                continue;
            }
            let j = (abs % len) as usize;
            if self.slots[j] != abs {
                if self.slots[j] != EMPTY_SLOT && self.slots[j] > abs {
                    // Our slot is fresher; other's stale bucket only
                    // survives in the total.
                    continue;
                }
                self.slots[j] = abs;
                self.counts[j] = 0;
            }
            self.counts[j] += other.counts[i];
        }
        // Drop our own slots that fell out of the merged window.
        for j in 0..self.slots.len() {
            if self.slots[j] != EMPTY_SLOT && self.slots[j] < start {
                self.slots[j] = EMPTY_SLOT;
                self.counts[j] = 0;
            }
        }
        self.head = head;
        self.total += other.total;
    }
}

/// All the windows for one scope (a session, or the whole farm).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSet {
    cfg: WindowConfig,
    /// Original data-packet transmissions.
    pub data_sent: WindowedCounter,
    /// Parity/repair transmissions.
    pub parity_sent: WindowedCounter,
    /// NAKs observed (sent or received — whichever side we instrument).
    pub naks: WindowedCounter,
    /// Repair rounds opened.
    pub repairs: WindowedCounter,
    /// Data packets delivered to the application (receives + codec
    /// recoveries).
    pub goodput: WindowedCounter,
    /// Corrupt datagrams dropped.
    pub corrupt: WindowedCounter,
    /// Cumulative receivers evicted (not windowed — an eviction is forever).
    pub evicted: u64,
    /// Last observed timer-wheel depth, keyed by sample time (ties keep
    /// the larger sample so merging stays commutative).
    pub wheel_depth: (f64, u64),
    /// Latest session-clock time observed.
    pub last_t: f64,
}

impl WindowSet {
    /// An empty set with the given geometry.
    pub fn new(cfg: WindowConfig) -> Self {
        WindowSet {
            cfg,
            data_sent: WindowedCounter::new(cfg),
            parity_sent: WindowedCounter::new(cfg),
            naks: WindowedCounter::new(cfg),
            repairs: WindowedCounter::new(cfg),
            goodput: WindowedCounter::new(cfg),
            corrupt: WindowedCounter::new(cfg),
            evicted: 0,
            wheel_depth: (-1.0, 0),
            last_t: 0.0,
        }
    }

    /// Fold one event into the windows.
    pub fn observe(&mut self, t: f64, event: &Event) {
        if t > self.last_t {
            self.last_t = t;
        }
        match event {
            Event::DataSent { .. } => self.data_sent.record(t, 1),
            Event::ParitySent { .. } => self.parity_sent.record(t, 1),
            Event::NakSent { .. } | Event::NakRecv { .. } => self.naks.record(t, 1),
            Event::RepairRound { .. } => self.repairs.record(t, 1),
            Event::DataRecv { .. } => self.goodput.record(t, 1),
            Event::GroupDecoded { recovered, .. } if *recovered > 0 => {
                self.goodput.record(t, *recovered);
            }
            Event::CorruptDropped { .. } => self.corrupt.record(t, 1),
            Event::ReceiverEvicted { evicted, .. } => {
                self.evicted += u64::from(*evicted);
            }
            _ => {}
        }
    }

    /// Record a timer-wheel depth sample at session time `t`.
    pub fn sample_wheel_depth(&mut self, t: f64, depth: u64) {
        let (t0, d0) = self.wheel_depth;
        if t > t0 || (t == t0 && depth > d0) {
            self.wheel_depth = (t, depth);
        }
        if t > self.last_t {
            self.last_t = t;
        }
    }

    /// Snapshot the derived rates at session time `now`.
    pub fn snapshot(&self, now: f64) -> WindowSnapshot {
        let data = self.data_sent.windowed(now);
        let parity = self.parity_sent.windowed(now);
        let tx = data + parity;
        WindowSnapshot {
            t: now,
            goodput_pps: self.goodput.rate(now),
            nak_rate: self.naks.rate(now),
            repair_rate: self.repairs.rate(now),
            repair_ratio: if tx == 0 {
                0.0
            } else {
                parity as f64 / tx as f64
            },
            live_em: if data == 0 {
                0.0
            } else {
                tx as f64 / data as f64
            },
            corrupt_rate: self.corrupt.rate(now),
            evicted: self.evicted,
            wheel_depth: if self.wheel_depth.0 < 0.0 {
                0
            } else {
                self.wheel_depth.1
            },
            data_sent_total: self.data_sent.total(),
            parity_sent_total: self.parity_sent.total(),
            goodput_total: self.goodput.total(),
            naks_total: self.naks.total(),
        }
    }

    /// Fold `other` into `self` (commutative for same-geometry sets).
    pub fn merge(&mut self, other: &WindowSet) {
        self.data_sent.merge(&other.data_sent);
        self.parity_sent.merge(&other.parity_sent);
        self.naks.merge(&other.naks);
        self.repairs.merge(&other.repairs);
        self.goodput.merge(&other.goodput);
        self.corrupt.merge(&other.corrupt);
        self.evicted += other.evicted;
        let (t, d) = other.wheel_depth;
        if t >= 0.0 {
            self.sample_wheel_depth(t, d);
        }
        if other.last_t > self.last_t {
            self.last_t = other.last_t;
        }
    }

    /// Latest session-clock time this set has seen.
    pub fn last_t(&self) -> f64 {
        self.last_t
    }
}

/// Derived rates over one window, pure function of (events, now).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSnapshot {
    /// Session-clock time the snapshot was taken at.
    pub t: f64,
    /// Data packets delivered per second.
    pub goodput_pps: f64,
    /// NAKs per second.
    pub nak_rate: f64,
    /// Repair rounds per second.
    pub repair_rate: f64,
    /// Parity share of all transmissions in the window.
    pub repair_ratio: f64,
    /// Live E[M] estimator: (data + parity) / data over the window.
    pub live_em: f64,
    /// Corrupt datagrams dropped per second.
    pub corrupt_rate: f64,
    /// Cumulative receivers evicted.
    pub evicted: u64,
    /// Last sampled timer-wheel depth.
    pub wheel_depth: u64,
    /// Lifetime data transmissions.
    pub data_sent_total: u64,
    /// Lifetime parity transmissions.
    pub parity_sent_total: u64,
    /// Lifetime delivered data packets.
    pub goodput_total: u64,
    /// Lifetime NAKs.
    pub naks_total: u64,
}

impl WindowSnapshot {
    /// Render as `name value` pairs for the exporter, prefixed with
    /// `prefix` (e.g. `"farm"` or `"session_3"`).
    pub fn gauges(&self, prefix: &str) -> Vec<(String, f64)> {
        vec![
            (format!("{prefix}.window.goodput_pps"), self.goodput_pps),
            (format!("{prefix}.window.nak_rate"), self.nak_rate),
            (format!("{prefix}.window.repair_rate"), self.repair_rate),
            (format!("{prefix}.window.repair_ratio"), self.repair_ratio),
            (format!("{prefix}.window.live_em"), self.live_em),
            (format!("{prefix}.window.corrupt_rate"), self.corrupt_rate),
            (format!("{prefix}.evicted_total"), self.evicted as f64),
            (format!("{prefix}.wheel_depth"), self.wheel_depth as f64),
            (
                format!("{prefix}.data_sent_total"),
                self.data_sent_total as f64,
            ),
            (
                format!("{prefix}.parity_sent_total"),
                self.parity_sent_total as f64,
            ),
            (format!("{prefix}.goodput_total"), self.goodput_total as f64),
            (format!("{prefix}.naks_total"), self.naks_total as f64),
        ]
    }
}

struct TelemetryInner {
    farm: WindowSet,
    sessions: BTreeMap<u32, WindowSet>,
}

/// A [`crate::Recorder`] that maintains farm-wide and per-session
/// [`WindowSet`]s from the live event stream.
///
/// Attribution uses [`Event::session`]: events carrying a session id feed
/// both that session's windows and the farm windows; unattributed events
/// (transport-level `Net*`, codec cache, resilience) feed the farm only.
/// Tee it next to the trace recorder with [`crate::Obs::tee`].
pub struct WindowTelemetry {
    cfg: WindowConfig,
    inner: Mutex<TelemetryInner>,
}

impl WindowTelemetry {
    /// Empty telemetry with the given window geometry.
    pub fn new(cfg: WindowConfig) -> Self {
        WindowTelemetry {
            cfg,
            inner: Mutex::new(TelemetryInner {
                farm: WindowSet::new(cfg),
                sessions: BTreeMap::new(),
            }),
        }
    }

    /// The window geometry.
    pub fn config(&self) -> WindowConfig {
        self.cfg
    }

    /// Snapshot the farm-wide windows at the latest observed time.
    pub fn farm_snapshot(&self) -> WindowSnapshot {
        let inner = self.inner.lock().expect("telemetry poisoned");
        inner.farm.snapshot(inner.farm.last_t())
    }

    /// Snapshot one session's windows at its latest observed time.
    pub fn session_snapshot(&self, session: u32) -> Option<WindowSnapshot> {
        let inner = self.inner.lock().expect("telemetry poisoned");
        inner.sessions.get(&session).map(|s| s.snapshot(s.last_t()))
    }

    /// Sessions with windows, in ascending id order.
    pub fn session_ids(&self) -> Vec<u32> {
        let inner = self.inner.lock().expect("telemetry poisoned");
        inner.sessions.keys().copied().collect()
    }

    /// Record a timer-wheel depth sample (farm scope) at session time `t`.
    pub fn set_wheel_depth(&self, t: f64, depth: u64) {
        let mut inner = self.inner.lock().expect("telemetry poisoned");
        inner.farm.sample_wheel_depth(t, depth);
    }

    /// Drop a finished session's windows (its history stays in the farm
    /// set). Returns the final snapshot if the session existed.
    pub fn retire_session(&self, session: u32) -> Option<WindowSnapshot> {
        let mut inner = self.inner.lock().expect("telemetry poisoned");
        inner
            .sessions
            .remove(&session)
            .map(|s| s.snapshot(s.last_t()))
    }

    /// All gauges for the exporter: farm first, then per-session in id
    /// order — a deterministic rendering of the current state.
    pub fn export_gauges(&self) -> Vec<(String, f64)> {
        let inner = self.inner.lock().expect("telemetry poisoned");
        let mut out = inner.farm.snapshot(inner.farm.last_t()).gauges("farm");
        for (id, set) in &inner.sessions {
            out.extend(set.snapshot(set.last_t()).gauges(&format!("session_{id}")));
        }
        out
    }

    /// Fold another telemetry instance into this one (worker fan-in).
    pub fn merge(&self, other: &WindowTelemetry) {
        let other_inner = other.inner.lock().expect("telemetry poisoned");
        let mut inner = self.inner.lock().expect("telemetry poisoned");
        inner.farm.merge(&other_inner.farm);
        for (id, set) in &other_inner.sessions {
            let cfg = self.cfg;
            inner
                .sessions
                .entry(*id)
                .or_insert_with(|| WindowSet::new(cfg))
                .merge(set);
        }
    }
}

impl crate::Recorder for WindowTelemetry {
    fn record(&self, t: f64, event: &Event) {
        let mut inner = self.inner.lock().expect("telemetry poisoned");
        inner.farm.observe(t, event);
        if let Some(session) = event.session() {
            let cfg = self.cfg;
            inner
                .sessions
                .entry(session)
                .or_insert_with(|| WindowSet::new(cfg))
                .observe(t, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn cfg(bucket_secs: f64, buckets: usize) -> WindowConfig {
        WindowConfig {
            bucket_secs,
            buckets,
        }
    }

    #[test]
    fn windowed_counter_slides() {
        let mut c = WindowedCounter::new(cfg(1.0, 4));
        c.record(0.5, 1);
        c.record(1.5, 2);
        c.record(2.5, 3);
        assert_eq!(c.windowed(2.5), 6);
        // Window [2..5] still covers buckets 2 and 1? end=5, start=2: only
        // bucket 2 and 3 (empty) remain.
        assert_eq!(c.windowed(5.0), 3);
        assert_eq!(c.windowed(10.0), 0);
        assert_eq!(c.total(), 6);
    }

    #[test]
    fn windowed_counter_reads_are_pure() {
        let mut c = WindowedCounter::new(cfg(0.5, 8));
        for i in 0..20 {
            c.record(i as f64 * 0.25, 1);
        }
        let a = c.windowed(4.75);
        let b = c.windowed(4.75);
        assert_eq!(a, b);
        // Reading at an earlier `now` does not mutate state either.
        let _ = c.windowed(1.0);
        assert_eq!(c.windowed(4.75), a);
    }

    #[test]
    fn stale_events_fold_into_total_only() {
        let mut c = WindowedCounter::new(cfg(1.0, 2));
        c.record(10.0, 5);
        c.record(0.5, 7); // far behind the ring
        assert_eq!(c.total(), 12);
        assert_eq!(c.windowed(10.0), 5);
    }

    #[test]
    fn merge_is_commutative() {
        // Build two counters from interleaved halves of one stream and
        // check merge order does not matter.
        let events: Vec<(f64, u64)> = (0..40).map(|i| (i as f64 * 0.3, (i % 3) + 1)).collect();
        let mut a = WindowedCounter::new(cfg(1.0, 4));
        let mut b = WindowedCounter::new(cfg(1.0, 4));
        for (i, &(t, n)) in events.iter().enumerate() {
            if i % 2 == 0 {
                a.record(t, n);
            } else {
                b.record(t, n);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);

        // And the merged result matches a single counter fed everything.
        let mut single = WindowedCounter::new(cfg(1.0, 4));
        for &(t, n) in &events {
            single.record(t, n);
        }
        assert_eq!(ab.total(), single.total());
        assert_eq!(ab.windowed(12.0), single.windowed(12.0));
    }

    #[test]
    fn window_set_computes_live_em() {
        let mut s = WindowSet::new(cfg(1.0, 8));
        for i in 0..20 {
            s.observe(
                i as f64 * 0.1,
                &Event::DataSent {
                    session: 1,
                    group: 0,
                    index: i as u16,
                },
            );
        }
        for i in 0..4 {
            s.observe(
                2.0 + i as f64 * 0.1,
                &Event::ParitySent {
                    session: 1,
                    group: 0,
                    index: 20 + i as u16,
                },
            );
        }
        let snap = s.snapshot(3.0);
        assert!((snap.live_em - 24.0 / 20.0).abs() < 1e-12);
        assert!((snap.repair_ratio - 4.0 / 24.0).abs() < 1e-12);
        assert_eq!(snap.data_sent_total, 20);
        assert_eq!(snap.parity_sent_total, 4);
    }

    #[test]
    fn goodput_counts_recoveries() {
        let mut s = WindowSet::new(WindowConfig::default());
        s.observe(
            0.1,
            &Event::DataRecv {
                session: 1,
                group: 0,
                index: 0,
            },
        );
        s.observe(
            0.2,
            &Event::GroupDecoded {
                session: 1,
                group: 0,
                recovered: 3,
            },
        );
        let snap = s.snapshot(0.2);
        assert_eq!(snap.goodput_total, 4);
    }

    #[test]
    fn telemetry_routes_by_session() {
        let tel = WindowTelemetry::new(WindowConfig::default());
        tel.record(
            0.1,
            &Event::DataSent {
                session: 3,
                group: 0,
                index: 0,
            },
        );
        tel.record(
            0.2,
            &Event::DataSent {
                session: 9,
                group: 0,
                index: 0,
            },
        );
        tel.record(
            0.3,
            &Event::CorruptDropped { total: 1 }, // unattributed -> farm only
        );
        assert_eq!(tel.session_ids(), vec![3, 9]);
        assert_eq!(tel.farm_snapshot().data_sent_total, 2);
        assert_eq!(tel.session_snapshot(3).unwrap().data_sent_total, 1);
        assert!(tel.farm_snapshot().corrupt_rate > 0.0);
        assert!(tel.session_snapshot(3).unwrap().corrupt_rate == 0.0);
    }

    #[test]
    fn telemetry_merge_matches_single_stream() {
        let mk = |parity: bool| {
            let tel = WindowTelemetry::new(WindowConfig::default());
            for i in 0..10 {
                let t = i as f64 * 0.2;
                if parity {
                    tel.record(
                        t,
                        &Event::ParitySent {
                            session: 1,
                            group: 0,
                            index: i as u16,
                        },
                    );
                } else {
                    tel.record(
                        t,
                        &Event::DataSent {
                            session: 1,
                            group: 0,
                            index: i as u16,
                        },
                    );
                }
            }
            tel
        };
        let a = mk(false);
        let b = mk(true);
        a.merge(&b);
        let snap = a.session_snapshot(1).unwrap();
        assert_eq!(snap.data_sent_total, 10);
        assert_eq!(snap.parity_sent_total, 10);
        assert!((snap.live_em - 2.0).abs() < 1e-12);
    }

    #[test]
    fn wheel_depth_keeps_latest_sample() {
        let mut s = WindowSet::new(WindowConfig::default());
        s.sample_wheel_depth(1.0, 5);
        s.sample_wheel_depth(2.0, 3);
        s.sample_wheel_depth(2.0, 2); // same t, smaller -> ignored
        assert_eq!(s.snapshot(2.0).wheel_depth, 3);
        let mut other = WindowSet::new(WindowConfig::default());
        other.sample_wheel_depth(1.5, 9);
        s.merge(&other);
        assert_eq!(s.snapshot(2.0).wheel_depth, 3); // 2.0 beats 1.5
    }
}
