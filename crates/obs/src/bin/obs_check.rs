//! `obs-check` — validate a JSONL trace produced by `--trace`.
//!
//! Usage: `obs-check <trace.jsonl>`
//!
//! Checks that the file is non-empty, every line parses as a JSON object,
//! and each object carries a numeric `"t"` and a non-empty string
//! `"type"`. Prints a per-type event census on success; exits 1 with a
//! line-numbered diagnostic on the first failure.

use std::collections::BTreeMap;
use std::process::ExitCode;

fn check(path: &str) -> Result<BTreeMap<String, u64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut census: BTreeMap<String, u64> = BTreeMap::new();
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        lines += 1;
        let lineno = i + 1;
        let v = serde_json::from_str(line)
            .map_err(|e| format!("line {lineno}: not valid JSON: {e:?}"))?;
        let t = v
            .get("t")
            .ok_or_else(|| format!("line {lineno}: missing \"t\" field"))?;
        let t = t
            .as_f64()
            .ok_or_else(|| format!("line {lineno}: \"t\" is not a number"))?;
        if !t.is_finite() || t < 0.0 {
            return Err(format!("line {lineno}: \"t\" = {t} is not a finite time"));
        }
        let ty = v
            .get("type")
            .and_then(|ty| ty.as_str().map(str::to_string))
            .ok_or_else(|| format!("line {lineno}: missing string \"type\" field"))?;
        if ty.is_empty() {
            return Err(format!("line {lineno}: empty \"type\""));
        }
        *census.entry(ty).or_insert(0) += 1;
    }
    if lines == 0 {
        return Err(format!("{path}: trace is empty"));
    }
    Ok(census)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let Some(path) = args.get(1) else {
        eprintln!("usage: obs-check <trace.jsonl>");
        return ExitCode::from(2);
    };
    match check(path) {
        Ok(census) => {
            let total: u64 = census.values().sum();
            println!("{path}: OK — {total} events, {} types", census.len());
            for (ty, n) in &census {
                println!("  {n:>8}  {ty}");
            }
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("obs-check: {msg}");
            ExitCode::FAILURE
        }
    }
}
