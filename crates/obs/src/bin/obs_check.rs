#![forbid(unsafe_code)]
//! `obs-check` — validate a JSONL trace produced by `--trace`.
//!
//! Usage: `obs-check <trace.jsonl>`
//!
//! Thin CLI over [`pm_obs::validate_trace`]: the file must be non-empty,
//! every line must parse as a JSON object with a finite non-negative
//! numeric `"t"`, and every `"type"` must come from the pinned
//! [`pm_obs::EVENT_NAMES`] vocabulary (the `event-vocabulary` rule of
//! `pm-audit` keeps that list in lock-step with the `Event` enum). Prints
//! a per-type event census on success; exits 1 with a line-numbered
//! diagnostic on the first failure.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let Some(path) = args.get(1) else {
        eprintln!("usage: obs-check <trace.jsonl>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("obs-check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match pm_obs::validate_trace(&text) {
        Ok(census) => {
            let total: u64 = census.values().sum();
            println!("{path}: OK — {total} events, {} types", census.len());
            println!("  {:>10}  {:>6}  event", "count", "share");
            for (ty, n) in &census {
                let share = if total == 0 {
                    0.0
                } else {
                    *n as f64 * 100.0 / total as f64
                };
                println!("  {n:>10}  {share:>5.1}%  {ty}");
            }
            println!("  {total:>10}  100.0%  (total)");
            let unused = pm_obs::EVENT_NAMES
                .iter()
                .filter(|name| !census.contains_key(**name))
                .count();
            println!(
                "  vocabulary: {}/{} event types present, {unused} unused",
                census.len(),
                pm_obs::EVENT_NAMES.len()
            );
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("obs-check: {path}: {err}");
            ExitCode::FAILURE
        }
    }
}
