//! Spatio-temporally correlated loss: Gilbert burst chains at the nodes
//! of a multicast tree.
//!
//! The paper studies spatial correlation (Section 4.1) and temporal
//! correlation (Section 4.2) separately and notes that real trees exhibit
//! both: a congested router drops *runs* of packets and every downstream
//! receiver shares them. [`TreeBurstLoss`] combines the two models —
//! every node of a full binary tree carries its own two-state Markov
//! chain, calibrated so each receiver still sees marginal loss `p` and
//! node-level bursts have mean length `b` — giving shared *bursts*, the
//! worst case for FEC blocks.
//!
//! Extension beyond the paper, built from its two ingredients.

use crate::gilbert::GilbertLoss;
use crate::model::LossModel;

/// Full binary tree of height `d` whose every node hosts an independent
/// Gilbert chain; a packet reaches a receiver iff no node on its path is
/// in the loss state at transmission time.
#[derive(Debug, Clone)]
pub struct TreeBurstLoss {
    d: u32,
    /// One chain per tree node, addressed heap-style (root = 0,
    /// children of `i` = `2i+1`, `2i+2`).
    chains: GilbertLoss,
    node_count: usize,
    receivers: usize,
    /// Scratch: per-node loss states for the current sample.
    node_lost: Vec<bool>,
}

impl TreeBurstLoss {
    /// Build the model: height `d` (`R = 2^d` receivers), per-receiver
    /// marginal loss `p`, mean burst length `b` *at each node*, packet
    /// spacing `delta` for burst calibration.
    ///
    /// Each node's stationary loss probability is
    /// `p_node = 1 - (1-p)^(1/(d+1))` (as in the memoryless FBT model), and
    /// its chain is calibrated for mean sojourn-bursts of `b` packets.
    ///
    /// # Panics
    /// As for [`GilbertLoss::new`] applied to `p_node`, plus `d <= 20`.
    pub fn new(d: u32, p: f64, b: f64, delta: f64, seed: u64) -> Self {
        assert!(d <= 20, "tree height {d} too large");
        assert!((0.0..1.0).contains(&p) && p > 0.0, "p must be in (0, 1)");
        let p_node = 1.0 - (1.0 - p).powf(1.0 / (d as f64 + 1.0));
        let node_count = (1usize << (d + 1)) - 1;
        let chains = GilbertLoss::new(node_count, p_node, b, delta, seed);
        TreeBurstLoss {
            d,
            chains,
            node_count,
            receivers: 1 << d,
            node_lost: vec![false; node_count],
        }
    }

    /// Tree height.
    pub fn height(&self) -> u32 {
        self.d
    }

    /// Number of tree nodes carrying chains.
    pub fn node_count(&self) -> usize {
        self.node_count
    }
}

impl LossModel for TreeBurstLoss {
    fn receivers(&self) -> usize {
        self.receivers
    }

    fn sample(&mut self, time: f64, lost: &mut [bool]) {
        assert_eq!(lost.len(), self.receivers, "loss buffer size mismatch");
        // Advance every node chain to `time`.
        self.chains.sample(time, &mut self.node_lost);
        // Propagate: node i is "cut" if it or any ancestor is lost. The
        // heap layout makes ancestors strictly smaller indices.
        // Reuse node_lost in place: after this pass it means "path cut".
        for i in 1..self.node_count {
            let parent = (i - 1) / 2;
            self.node_lost[i] = self.node_lost[i] || self.node_lost[parent];
        }
        // Leaves occupy the last 2^d slots.
        let first_leaf = self.node_count - self.receivers;
        lost.copy_from_slice(&self.node_lost[first_leaf..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::empirical_loss_rate;
    use crate::stats::BurstStats;

    #[test]
    fn shapes() {
        let t = TreeBurstLoss::new(3, 0.05, 2.0, 0.04, 1);
        assert_eq!(t.receivers(), 8);
        assert_eq!(t.node_count(), 15);
        assert_eq!(t.height(), 3);
    }

    #[test]
    fn marginal_rate_is_p() {
        let mut t = TreeBurstLoss::new(4, 0.05, 2.0, 0.04, 42);
        let rate = empirical_loss_rate(&mut t, 30_000, 0.04);
        assert!((rate - 0.05).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn receivers_see_bursts() {
        // The per-receiver loss process inherits temporal correlation from
        // the node chains: mean burst length must exceed the iid value
        // 1/(1-p) ~ 1.05.
        let mut t = TreeBurstLoss::new(3, 0.05, 3.0, 0.04, 7);
        let mut stats = BurstStats::new();
        let mut lost = vec![false; 8];
        for i in 0..200_000 {
            t.sample(i as f64 * 0.04, &mut lost);
            stats.record(lost[0]);
        }
        stats.finish();
        let mean = stats.mean_burst().unwrap();
        assert!(
            mean > 1.5,
            "mean burst {mean} should show temporal correlation"
        );
    }

    #[test]
    fn siblings_share_bursts() {
        // Spatial correlation survives: sibling receivers co-lose far more
        // often than independence predicts.
        let mut t = TreeBurstLoss::new(3, 0.2, 2.0, 0.04, 9);
        let n = 50_000;
        let (mut l0, mut l1, mut both) = (0usize, 0usize, 0usize);
        let mut lost = vec![false; 8];
        for i in 0..n {
            t.sample(i as f64 * 0.04, &mut lost);
            if lost[0] {
                l0 += 1;
            }
            if lost[1] {
                l1 += 1;
            }
            if lost[0] && lost[1] {
                both += 1;
            }
        }
        let joint = both as f64 / n as f64;
        let indep = (l0 as f64 / n as f64) * (l1 as f64 / n as f64);
        assert!(joint > indep * 1.5, "joint {joint} vs independent {indep}");
    }

    #[test]
    fn reproducible() {
        let mut a = TreeBurstLoss::new(4, 0.1, 2.0, 0.04, 33);
        let mut b = TreeBurstLoss::new(4, 0.1, 2.0, 0.04, 33);
        for i in 0..100 {
            assert_eq!(a.sample_vec(i as f64 * 0.04), b.sample_vec(i as f64 * 0.04));
        }
    }

    #[test]
    fn works_with_simulator_schemes() {
        // Smoke: the combined model plugs into the pm-sim schemes through
        // the LossModel trait (exercised fully in the integration tests).
        let mut t = TreeBurstLoss::new(2, 0.05, 2.0, 0.04, 5);
        let v = t.sample_vec(0.0);
        assert_eq!(v.len(), 4);
    }
}
