//! Spatially correlated ("shared") loss on a multicast tree — Section 4.1.
//!
//! A packet travels from the root (the source) down the distribution tree;
//! every node drops it independently with that node's loss probability, and
//! a drop at an interior node is *shared* by every receiver underneath. The
//! paper's reference topology is the **full binary tree (FBT)** of height
//! `d` with `R = 2^d` leaf receivers, where every node (including source
//! and leaves) drops with the same `p_node`, chosen so that each receiver's
//! end-to-end loss probability is the target `p`:
//!
//! ```text
//!     p = 1 - (1 - p_node)^(d+1)
//! ```
//!
//! (A root-to-leaf path crosses `d + 1` potentially-dropping nodes: the
//! source's link plus one per tree level.)
//!
//! [`TreeLoss`] supports arbitrary trees with per-node probabilities; the
//! sampler walks the tree once per packet and prunes subtrees below a drop,
//! so shared losses cost less RNG work, not more.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::model::LossModel;

/// One node of the distribution tree.
#[derive(Debug, Clone)]
struct Node {
    /// Loss probability of the hop into this node.
    p: f64,
    children: Vec<usize>,
    /// `Some(r)` if this node is receiver `r` (a leaf).
    receiver: Option<usize>,
}

/// Loss model over an explicit multicast tree.
#[derive(Debug, Clone)]
pub struct TreeLoss {
    nodes: Vec<Node>,
    receivers: usize,
    rng: ChaCha8Rng,
    /// Scratch stack for the per-packet walk (avoids per-call allocation).
    stack: Vec<(usize, bool)>,
}

/// Builder for arbitrary tree topologies.
#[derive(Debug, Clone, Default)]
pub struct TreeBuilder {
    nodes: Vec<Node>,
}

impl TreeBuilder {
    /// Start a new tree; `p_root` is the loss probability at the source
    /// itself (set 0.0 for a loss-free source).
    pub fn new(p_root: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_root),
            "p_root must be a probability"
        );
        TreeBuilder {
            nodes: vec![Node {
                p: p_root,
                children: Vec::new(),
                receiver: None,
            }],
        }
    }

    /// Add an interior node under `parent`; returns the new node's id.
    ///
    /// # Panics
    /// Panics on a bad parent id or non-probability `p`.
    pub fn add_node(&mut self, parent: usize, p: f64) -> usize {
        assert!(parent < self.nodes.len(), "parent {parent} does not exist");
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        let id = self.nodes.len();
        self.nodes.push(Node {
            p,
            children: Vec::new(),
            receiver: None,
        });
        self.nodes[parent].children.push(id);
        id
    }

    /// Mark node `id` as a receiver (leaf). Receiver indices are assigned
    /// in call order.
    ///
    /// # Panics
    /// Panics if the node has children or is already a receiver.
    pub fn mark_receiver(&mut self, id: usize) {
        assert!(id < self.nodes.len(), "node {id} does not exist");
        assert!(
            self.nodes[id].children.is_empty(),
            "receivers must be leaves"
        );
        assert!(
            self.nodes[id].receiver.is_none(),
            "node {id} is already a receiver"
        );
        // Receiver index assigned at build time (count of already-marked).
        let r = self.nodes.iter().filter(|n| n.receiver.is_some()).count();
        self.nodes[id].receiver = Some(r);
    }

    /// Finish the tree.
    ///
    /// # Panics
    /// Panics if no node was marked as a receiver.
    pub fn build(self, seed: u64) -> TreeLoss {
        let receivers = self.nodes.iter().filter(|n| n.receiver.is_some()).count();
        assert!(receivers > 0, "tree has no receivers");
        TreeLoss {
            nodes: self.nodes,
            receivers,
            rng: ChaCha8Rng::seed_from_u64(seed),
            stack: Vec::new(),
        }
    }
}

impl TreeLoss {
    /// The paper's FBT model: full binary tree of height `d` (`R = 2^d`
    /// receivers at the leaves), every node dropping independently with
    /// `p_node = 1 - (1-p)^(1/(d+1))` so each receiver sees loss
    /// probability exactly `p`.
    ///
    /// `d = 0` degenerates to a single receiver losing with probability `p`.
    ///
    /// # Panics
    /// Panics unless `p` is a probability and `d <= 26` (2^26 receivers is
    /// the supported ceiling).
    pub fn full_binary(d: u32, p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        assert!(d <= 26, "FBT height {d} too large");
        let p_node = 1.0 - (1.0 - p).powf(1.0 / (d as f64 + 1.0));
        let mut b = TreeBuilder::new(p_node);
        // Breadth-first construction; leaves at depth d become receivers.
        let mut level = vec![0usize];
        for _ in 0..d {
            let mut next = Vec::with_capacity(level.len() * 2);
            for &n in &level {
                next.push(b.add_node(n, p_node));
                next.push(b.add_node(n, p_node));
            }
            level = next;
        }
        for &leaf in &level {
            b.mark_receiver(leaf);
        }
        b.build(seed)
    }

    /// Per-node loss probability of node `id`.
    pub fn node_p(&self, id: usize) -> f64 {
        self.nodes[id].p
    }

    /// Total number of tree nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// End-to-end loss probability of receiver 0 assuming a path of
    /// independent per-node drops (diagnostic; exact for symmetric trees).
    pub fn path_loss_probability(&self) -> f64 {
        // Walk from root to the first receiver greedily.
        let mut surv = 1.0;
        let mut id = 0usize;
        loop {
            surv *= 1.0 - self.nodes[id].p;
            if self.nodes[id].receiver.is_some() {
                break;
            }
            match self.nodes[id].children.first() {
                Some(&c) => id = c,
                None => break,
            }
        }
        1.0 - surv
    }
}

impl LossModel for TreeLoss {
    fn receivers(&self) -> usize {
        self.receivers
    }

    fn sample(&mut self, _time: f64, lost: &mut [bool]) {
        assert_eq!(lost.len(), self.receivers, "loss buffer size mismatch");
        // Depth-first walk; once an ancestor drops, everything below is
        // lost without further sampling (that's the sharing).
        self.stack.clear();
        self.stack.push((0, false));
        while let Some((id, ancestor_dropped)) = self.stack.pop() {
            let node = &self.nodes[id];
            let dropped = ancestor_dropped || (node.p > 0.0 && self.rng.random::<f64>() < node.p);
            if let Some(r) = node.receiver {
                lost[r] = dropped;
            }
            for &c in &node.children {
                self.stack.push((c, dropped));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::empirical_loss_rate;

    #[test]
    fn fbt_sizes() {
        let t = TreeLoss::full_binary(0, 0.01, 0);
        assert_eq!(t.receivers(), 1);
        assert_eq!(t.node_count(), 1);
        let t = TreeLoss::full_binary(3, 0.01, 0);
        assert_eq!(t.receivers(), 8);
        assert_eq!(t.node_count(), 15);
    }

    #[test]
    fn per_receiver_rate_is_p() {
        let mut t = TreeLoss::full_binary(4, 0.05, 42);
        let rate = empirical_loss_rate(&mut t, 20_000, 1.0);
        assert!((rate - 0.05).abs() < 0.005, "rate={rate}");
        assert!((t.path_loss_probability() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn siblings_share_loss() {
        // In an FBT with loss only possible at shared nodes, sibling
        // receivers must be positively correlated.
        let mut t = TreeLoss::full_binary(3, 0.2, 7);
        let n = 30_000;
        let (mut l0, mut l1, mut both) = (0usize, 0usize, 0usize);
        let mut lost = vec![false; 8];
        for i in 0..n {
            t.sample(i as f64, &mut lost);
            if lost[0] {
                l0 += 1;
            }
            if lost[1] {
                l1 += 1;
            }
            if lost[0] && lost[1] {
                both += 1;
            }
        }
        let joint = both as f64 / n as f64;
        let indep = (l0 as f64 / n as f64) * (l1 as f64 / n as f64);
        assert!(
            joint > indep + 0.01,
            "siblings should be positively correlated: joint={joint} indep={indep}"
        );
    }

    #[test]
    fn distant_receivers_less_correlated_than_siblings() {
        let mut t = TreeLoss::full_binary(3, 0.2, 9);
        let n = 30_000;
        let mut joint_sib = 0usize;
        let mut joint_far = 0usize;
        let mut lost = vec![false; 8];
        for i in 0..n {
            t.sample(i as f64, &mut lost);
            if lost[0] && lost[1] {
                joint_sib += 1;
            }
            if lost[0] && lost[7] {
                joint_far += 1;
            }
        }
        assert!(
            joint_sib > joint_far,
            "siblings (share d nodes) should co-lose more than distant pairs: {joint_sib} vs {joint_far}"
        );
    }

    #[test]
    fn source_drop_loses_everyone() {
        // Tree whose only lossy node is the root: losses hit all or none.
        let mut b = TreeBuilder::new(0.3);
        let l = b.add_node(0, 0.0);
        let r = b.add_node(0, 0.0);
        b.mark_receiver(l);
        b.mark_receiver(r);
        let mut t = b.build(5);
        let mut lost = vec![false; 2];
        for i in 0..2000 {
            t.sample(i as f64, &mut lost);
            assert_eq!(lost[0], lost[1], "root loss must be fully shared");
        }
    }

    #[test]
    fn custom_tree_receiver_indices_in_mark_order() {
        let mut b = TreeBuilder::new(0.0);
        let a = b.add_node(0, 1.0); // always drops
        let c = b.add_node(0, 0.0); // never drops
        b.mark_receiver(a);
        b.mark_receiver(c);
        let mut t = b.build(1);
        let v = t.sample_vec(0.0);
        assert!(v[0], "receiver 0 sits behind an always-drop node");
        assert!(!v[1], "receiver 1 has a clean path");
    }

    #[test]
    fn reproducible_from_seed() {
        let mut a = TreeLoss::full_binary(5, 0.1, 33);
        let mut b = TreeLoss::full_binary(5, 0.1, 33);
        for i in 0..50 {
            assert_eq!(a.sample_vec(i as f64), b.sample_vec(i as f64));
        }
    }

    #[test]
    #[should_panic(expected = "receivers must be leaves")]
    fn interior_receiver_rejected() {
        let mut b = TreeBuilder::new(0.0);
        let mid = b.add_node(0, 0.1);
        let _leaf = b.add_node(mid, 0.1);
        b.mark_receiver(mid);
    }

    #[test]
    #[should_panic(expected = "no receivers")]
    fn empty_tree_rejected() {
        let _ = TreeBuilder::new(0.0).build(0);
    }
}
