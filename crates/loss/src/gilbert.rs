//! Temporally correlated (burst) loss — Section 4.2.
//!
//! Losses at one receiver follow a two-state continuous-time Markov chain
//! `{X_t}`, `X_t ∈ {0, 1}`: a packet transmitted at time `t` is lost iff
//! `X_t = 1`. The infinitesimal generator is
//!
//! ```text
//!     Q = [ -l0   l0 ]
//!         [  l1  -l1 ]
//! ```
//!
//! with stationary distribution `pi_1 = l0 / (l0 + l1) = p` (the packet
//! loss probability). The transition probabilities over an interval `t`
//! are the classic closed forms (Morse [16, ch. 6]):
//!
//! ```text
//!     P(X_{s+t}=1 | X_s=1) = pi_1 + pi_0 * exp(-(l0+l1) t)
//!     P(X_{s+t}=1 | X_s=0) = pi_1 * (1 - exp(-(l0+l1) t))
//! ```
//!
//! **Calibration.** The paper parameterises the chain by the loss
//! probability `p`, the mean burst length `b` (consecutive lost packets)
//! and the packet spacing `delta = 1/lambda`. When the chain is sampled
//! every `delta` seconds it becomes a two-state DTMC, in which runs of the
//! loss state are geometric with continuation probability
//! `p11 = P(X_{t+delta}=1 | X_t=1)`; the mean run is `1 / (1 - p11)`.
//! [`GilbertLoss::new`] solves `p11 = 1 - 1/b` *exactly*:
//!
//! ```text
//!     exp(-(l0+l1) delta) = (1 - 1/b - p) / (1 - p)
//!     l1 = (1 - p) * s,   l0 = p * s,    s = l0 + l1
//! ```
//!
//! (The paper's printed formulas — `l0` from `-ln(1 - 1/b)` scaled by the
//! packet rate, then `l1 = l0 (1-p)/p` — are the small-`p` approximation of
//! the same calibration with the state labels fixed up; the OCR of the
//! archived text garbles the subscripts. [`GilbertLoss::from_paper_rates`]
//! implements that literal reading; tests verify both yield mean burst
//! `~= b` and loss rate `~= p` for the paper's parameters.)
//!
//! Chains at different receivers are independent, each driven by its own
//! ChaCha stream.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::model::LossModel;

/// Two-state Markov burst-loss model (one independent chain per receiver).
#[derive(Debug, Clone)]
pub struct GilbertLoss {
    /// Sum of rates `s = l0 + l1`.
    s: f64,
    /// Stationary loss probability `pi_1 = l0 / s`.
    pi1: f64,
    /// Per-receiver chain state: `true` = loss state.
    state: Vec<bool>,
    /// Per-receiver time of the last sample.
    last: Vec<f64>,
    rng: ChaCha8Rng,
}

impl GilbertLoss {
    /// Exact calibration from `(p, mean burst length b, packet spacing
    /// delta)`: sampling the chain every `delta` seconds yields loss runs
    /// with mean exactly `b` and stationary loss probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 < p < 1`, `delta > 0`, and `b > 1 / (1 - p)`
    /// (shorter bursts than `1/(1-p)` would need anti-correlated loss,
    /// which a two-state chain cannot produce).
    pub fn new(receivers: usize, p: f64, b: f64, delta: f64, seed: u64) -> Self {
        assert!(receivers > 0, "need at least one receiver");
        assert!(p > 0.0 && p < 1.0, "p must be in (0,1), got {p}");
        assert!(delta > 0.0, "delta must be positive");
        assert!(
            b > 1.0 / (1.0 - p),
            "mean burst length b={b} must exceed 1/(1-p)={}",
            1.0 / (1.0 - p)
        );
        let ratio = (1.0 - 1.0 / b - p) / (1.0 - p);
        let s = -ratio.ln() / delta;
        Self::from_rates(receivers, p * s, (1.0 - p) * s, seed)
    }

    /// The paper's literal printed calibration: `l1 = -ln(1 - 1/b) / delta`
    /// (exit rate from the loss state such that the chance of *remaining*
    /// lost across one packet spacing is `1 - 1/b`), and `l0 = l1 p/(1-p)`
    /// for stationarity. Close to [`GilbertLoss::new`] for small `p`.
    ///
    /// # Panics
    /// As for [`GilbertLoss::new`], with the weaker requirement `b > 1`.
    pub fn from_paper_rates(receivers: usize, p: f64, b: f64, delta: f64, seed: u64) -> Self {
        assert!(p > 0.0 && p < 1.0, "p must be in (0,1), got {p}");
        assert!(delta > 0.0, "delta must be positive");
        assert!(b > 1.0, "mean burst length must exceed 1, got {b}");
        let l1 = -(1.0 - 1.0 / b).ln() / delta;
        let l0 = l1 * p / (1.0 - p);
        Self::from_rates(receivers, l0, l1, seed)
    }

    /// Directly from the generator rates `l0` (enter loss) and `l1`
    /// (leave loss). Initial states are drawn from the stationary
    /// distribution.
    ///
    /// # Panics
    /// Panics unless both rates are positive and `receivers > 0`.
    pub fn from_rates(receivers: usize, l0: f64, l1: f64, seed: u64) -> Self {
        assert!(receivers > 0, "need at least one receiver");
        assert!(
            l0 > 0.0 && l1 > 0.0,
            "rates must be positive: l0={l0} l1={l1}"
        );
        let s = l0 + l1;
        let pi1 = l0 / s;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let state = (0..receivers).map(|_| rng.random::<f64>() < pi1).collect();
        GilbertLoss {
            s,
            pi1,
            state,
            last: vec![0.0; receivers],
            rng,
        }
    }

    /// Stationary loss probability `pi_1`.
    pub fn p(&self) -> f64 {
        self.pi1
    }

    /// Rate sum `l0 + l1` (the chain's mixing rate).
    pub fn rate_sum(&self) -> f64 {
        self.s
    }

    /// Probability of being in the loss state after `dt`, starting from
    /// `from_loss`.
    fn p_loss_after(&self, from_loss: bool, dt: f64) -> f64 {
        let decay = (-self.s * dt).exp();
        if from_loss {
            self.pi1 + (1.0 - self.pi1) * decay
        } else {
            self.pi1 * (1.0 - decay)
        }
    }
}

impl LossModel for GilbertLoss {
    fn receivers(&self) -> usize {
        self.state.len()
    }

    fn sample(&mut self, time: f64, lost: &mut [bool]) {
        assert_eq!(lost.len(), self.state.len(), "loss buffer size mismatch");
        #[allow(clippy::needless_range_loop)] // r indexes three parallel arrays
        for r in 0..self.state.len() {
            // Clamp tiny negative dt from floating-point scheduling noise;
            // genuinely going backwards in time is a caller bug.
            let dt = time - self.last[r];
            debug_assert!(
                dt >= -1e-9,
                "time went backwards: {} -> {time}",
                self.last[r]
            );
            let dt = dt.max(0.0);
            let p1 = self.p_loss_after(self.state[r], dt);
            self.state[r] = self.rng.random::<f64>() < p1;
            self.last[r] = time;
            lost[r] = self.state[r];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::BurstStats;

    /// Drive one receiver for `n` packets spaced `delta`, returning burst
    /// statistics.
    fn run(model: &mut GilbertLoss, n: usize, delta: f64) -> BurstStats {
        let mut stats = BurstStats::new();
        let mut lost = vec![false; model.receivers()];
        for i in 0..n {
            model.sample(i as f64 * delta, &mut lost);
            stats.record(lost[0]);
        }
        stats.finish();
        stats
    }

    #[test]
    fn stationary_loss_rate_is_p() {
        let mut m = GilbertLoss::new(1, 0.05, 2.0, 0.04, 42);
        let stats = run(&mut m, 200_000, 0.04);
        let rate = stats.loss_rate();
        assert!((rate - 0.05).abs() < 0.005, "rate={rate}");
    }

    #[test]
    fn mean_burst_matches_exact_calibration() {
        // Paper parameters: p = 0.01, b = 2, delta = 40 ms.
        let mut m = GilbertLoss::new(1, 0.01, 2.0, 0.04, 7);
        let stats = run(&mut m, 400_000, 0.04);
        let mean = stats.mean_burst().unwrap();
        assert!((mean - 2.0).abs() < 0.15, "mean burst {mean}");
    }

    #[test]
    fn paper_rates_close_for_small_p() {
        let mut m = GilbertLoss::from_paper_rates(1, 0.01, 2.0, 0.04, 7);
        let stats = run(&mut m, 400_000, 0.04);
        let mean = stats.mean_burst().unwrap();
        assert!((mean - 2.0).abs() < 0.25, "mean burst {mean}");
        assert!((stats.loss_rate() - 0.01).abs() < 0.003);
    }

    #[test]
    fn burst_tail_is_geometric() {
        // log-occurrences should fall roughly linearly (Fig. 14's shape):
        // check the ratio of successive counts is near the continuation
        // probability 1 - 1/b = 0.5.
        let mut m = GilbertLoss::new(1, 0.05, 2.0, 0.04, 3);
        let stats = run(&mut m, 500_000, 0.04);
        let h = stats.histogram();
        assert!(h.len() >= 3, "need bursts up to length 3, got {h:?}");
        let r1 = h[1] as f64 / h[0] as f64;
        let r2 = h[2] as f64 / h[1] as f64;
        assert!((r1 - 0.5).abs() < 0.1, "ratio1={r1}");
        assert!((r2 - 0.5).abs() < 0.15, "ratio2={r2}");
    }

    #[test]
    fn wider_spacing_decorrelates() {
        // Sampling far apart (>> 1/s) should look iid: mean burst -> 1/(1-p).
        let m0 = GilbertLoss::new(1, 0.2, 3.0, 0.04, 9);
        let s = m0.rate_sum();
        let wide = 50.0 / s;
        let mut m = GilbertLoss::new(1, 0.2, 3.0, 0.04, 9);
        let stats = run(&mut m, 100_000, wide);
        let mean = stats.mean_burst().unwrap();
        assert!(
            (mean - 1.25).abs() < 0.1,
            "mean burst {mean} should approach 1/(1-p)=1.25"
        );
    }

    #[test]
    fn receivers_independent() {
        let mut m = GilbertLoss::new(2, 0.3, 2.0, 0.04, 5);
        let n = 50_000;
        let (mut both, mut first, mut second) = (0usize, 0usize, 0usize);
        let mut lost = vec![false; 2];
        for i in 0..n {
            m.sample(i as f64 * 0.04, &mut lost);
            if lost[0] {
                first += 1;
            }
            if lost[1] {
                second += 1;
            }
            if lost[0] && lost[1] {
                both += 1;
            }
        }
        let pj = both as f64 / n as f64;
        let pp = (first as f64 / n as f64) * (second as f64 / n as f64);
        assert!((pj - pp).abs() < 0.01, "joint {pj} vs product {pp}");
    }

    #[test]
    fn reproducible_from_seed() {
        let mut a = GilbertLoss::new(4, 0.1, 2.0, 0.04, 77);
        let mut b = GilbertLoss::new(4, 0.1, 2.0, 0.04, 77);
        for i in 0..100 {
            assert_eq!(a.sample_vec(i as f64 * 0.04), b.sample_vec(i as f64 * 0.04));
        }
    }

    #[test]
    #[should_panic(expected = "must exceed 1/(1-p)")]
    fn too_short_bursts_rejected() {
        let _ = GilbertLoss::new(1, 0.5, 1.5, 0.04, 0);
    }
}
