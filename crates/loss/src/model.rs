//! The loss-model trait and shared helpers.

/// A (possibly stateful) packet-loss process over a fixed receiver
/// population.
///
/// One call to [`LossModel::sample`] corresponds to one multicast
/// transmission: the model decides, for every receiver, whether that packet
/// is lost. Spatial correlation (shared tree loss) lives *within* one call;
/// temporal correlation (burst loss) lives *across* calls via the `time`
/// argument.
///
/// `time` is the absolute send time in seconds and must be non-decreasing
/// across calls for time-dependent models; memoryless models ignore it.
pub trait LossModel {
    /// Size of the receiver population `R`.
    fn receivers(&self) -> usize;

    /// Sample the loss pattern of one transmission at time `time`.
    /// Overwrites every entry of `lost` (`lost.len() == receivers()`).
    ///
    /// # Panics
    /// Implementations panic if `lost.len() != receivers()` (caller bug).
    fn sample(&mut self, time: f64, lost: &mut [bool]);

    /// Convenience: sample into a fresh vector.
    fn sample_vec(&mut self, time: f64) -> Vec<bool> {
        let mut v = vec![false; self.receivers()];
        self.sample(time, &mut v);
        v
    }

    /// Convenience: sample and return only whether a *specific* receiver
    /// lost the packet — used by single-receiver studies. Implementations
    /// still advance all internal state so sequences stay reproducible.
    fn sample_one(&mut self, time: f64, receiver: usize) -> bool {
        let v = self.sample_vec(time);
        v[receiver]
    }
}

/// Blanket impl so `&mut M` can be passed where a model is consumed.
impl<M: LossModel + ?Sized> LossModel for &mut M {
    fn receivers(&self) -> usize {
        (**self).receivers()
    }
    fn sample(&mut self, time: f64, lost: &mut [bool]) {
        (**self).sample(time, lost)
    }
}

/// Measure the empirical per-receiver loss rate of a model over `packets`
/// transmissions spaced `delta` seconds apart. Returns the overall fraction
/// of `(packet, receiver)` pairs lost. Test/calibration helper.
pub fn empirical_loss_rate<M: LossModel>(model: &mut M, packets: usize, delta: f64) -> f64 {
    let r = model.receivers();
    let mut lost = vec![false; r];
    let mut total_lost = 0usize;
    for i in 0..packets {
        model.sample(i as f64 * delta, &mut lost);
        total_lost += lost.iter().filter(|&&l| l).count();
    }
    total_lost as f64 / (packets * r) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bernoulli::IndependentLoss;

    #[test]
    fn sample_vec_matches_receivers() {
        let mut m = IndependentLoss::new(3, 0.5, 42);
        assert_eq!(m.sample_vec(0.0).len(), 3);
    }

    #[test]
    fn mut_ref_is_a_model() {
        fn takes_model<M: LossModel>(m: M) -> usize {
            m.receivers()
        }
        let mut m = IndependentLoss::new(5, 0.1, 1);
        assert_eq!(takes_model(&mut m), 5);
    }

    #[test]
    fn empirical_rate_close_to_p() {
        let mut m = IndependentLoss::new(100, 0.2, 7);
        let rate = empirical_loss_rate(&mut m, 2000, 0.04);
        assert!((rate - 0.2).abs() < 0.01, "rate {rate}");
    }
}
