//! Spatially and temporally independent loss (the Section 3 baseline).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::model::LossModel;

/// Every receiver loses each packet independently with probability `p`;
/// packets are independent of each other ("independent loss" in the paper:
/// only the receivers lose packets, interior tree nodes do not).
#[derive(Debug, Clone)]
pub struct IndependentLoss {
    receivers: usize,
    p: f64,
    rng: ChaCha8Rng,
}

impl IndependentLoss {
    /// Create the model for `receivers` receivers with loss probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p <= 1` and `receivers > 0`.
    pub fn new(receivers: usize, p: f64, seed: u64) -> Self {
        assert!(receivers > 0, "need at least one receiver");
        assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
        IndependentLoss {
            receivers,
            p,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// The configured loss probability.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl LossModel for IndependentLoss {
    fn receivers(&self) -> usize {
        self.receivers
    }

    fn sample(&mut self, _time: f64, lost: &mut [bool]) {
        assert_eq!(lost.len(), self.receivers, "loss buffer size mismatch");
        for l in lost.iter_mut() {
            *l = self.rng.random::<f64>() < self.p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::empirical_loss_rate;

    #[test]
    fn zero_and_one_are_degenerate() {
        let mut never = IndependentLoss::new(4, 0.0, 1);
        assert!(never.sample_vec(0.0).iter().all(|&l| !l));
        let mut always = IndependentLoss::new(4, 1.0, 1);
        assert!(always.sample_vec(0.0).iter().all(|&l| l));
    }

    #[test]
    fn rate_converges_to_p() {
        for p in [0.01, 0.25, 0.9] {
            let mut m = IndependentLoss::new(50, p, 99);
            let rate = empirical_loss_rate(&mut m, 4000, 0.04);
            assert!((rate - p).abs() < 0.02, "p={p} rate={rate}");
        }
    }

    #[test]
    fn reproducible_from_seed() {
        let mut a = IndependentLoss::new(10, 0.5, 1234);
        let mut b = IndependentLoss::new(10, 0.5, 1234);
        for i in 0..50 {
            assert_eq!(a.sample_vec(i as f64), b.sample_vec(i as f64));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = IndependentLoss::new(64, 0.5, 1);
        let mut b = IndependentLoss::new(64, 0.5, 2);
        let mut any_diff = false;
        for i in 0..20 {
            if a.sample_vec(i as f64) != b.sample_vec(i as f64) {
                any_diff = true;
                break;
            }
        }
        assert!(any_diff);
    }

    #[test]
    fn receivers_are_spatially_independent() {
        // Correlation between two receivers should be ~0.
        let mut m = IndependentLoss::new(2, 0.3, 7);
        let n = 20000;
        let (mut c01, mut c10, mut c11) = (0, 0, 0);
        for i in 0..n {
            let v = m.sample_vec(i as f64);
            match (v[0], v[1]) {
                (false, false) => {}
                (false, true) => c01 += 1,
                (true, false) => c10 += 1,
                (true, true) => c11 += 1,
            }
        }
        let p1 = (c10 + c11) as f64 / n as f64;
        let p2 = (c01 + c11) as f64 / n as f64;
        let joint = c11 as f64 / n as f64;
        assert!(
            (joint - p1 * p2).abs() < 0.01,
            "joint={joint} p1*p2={}",
            p1 * p2
        );
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_p_panics() {
        let _ = IndependentLoss::new(1, 1.5, 0);
    }
}
