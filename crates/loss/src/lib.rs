#![forbid(unsafe_code)]
//! Packet-loss models for reliable-multicast studies.
//!
//! The paper evaluates FEC/ARQ recovery under four loss environments
//! (Sections 3 and 4); each has a model here, all behind the [`LossModel`]
//! trait so the simulator and the protocol test harness can swap them
//! freely:
//!
//! * [`IndependentLoss`] — spatially and temporally independent Bernoulli
//!   loss with probability `p` at every receiver (Section 3).
//! * [`TwoClassLoss`] / [`PerReceiverLoss`] — heterogeneous populations,
//!   e.g. a fraction `alpha` of "high loss" receivers at `p = 0.25` among
//!   receivers at `p = 0.01` (Section 3.3, Figs. 9–10).
//! * [`TreeLoss`] / [`TreeLoss::full_binary`] — spatially correlated
//!   ("shared") loss on a multicast tree: every node of a full binary tree
//!   of height `d` drops packets independently with `p_node` chosen so each
//!   receiver still sees loss probability `p` (Section 4.1, Figs. 11–12).
//! * [`GilbertLoss`] — temporally correlated (burst) loss from a two-state
//!   continuous-time Markov chain, parameterised by `(p, mean burst length
//!   b, packet spacing delta)` exactly as in Section 4.2 (Figs. 14–16).
//!
//! [`stats::BurstStats`] collects the consecutive-loss run-length histogram
//! of Fig. 14.
//!
//! All models are driven by a seedable ChaCha RNG so every experiment is
//! reproducible from its seed; each receiver gets an independent stream.
//!
//! ```
//! use pm_loss::{IndependentLoss, LossModel};
//! let mut model = IndependentLoss::new(8, 0.25, 42);
//! let pattern = model.sample_vec(0.0); // one multicast transmission
//! assert_eq!(pattern.len(), 8);
//! ```

pub mod bernoulli;
pub mod gilbert;
pub mod hetero;
pub mod model;
pub mod stats;
pub mod tree;
pub mod tree_burst;

pub use bernoulli::IndependentLoss;
pub use gilbert::GilbertLoss;
pub use hetero::{PerReceiverLoss, TwoClassLoss};
pub use model::LossModel;
pub use stats::BurstStats;
pub use tree::TreeLoss;
pub use tree_burst::TreeBurstLoss;

#[cfg(test)]
mod proptests;
