//! Loss-sequence statistics: burst-length histograms (Fig. 14) and rates.

/// Collects the distribution of consecutive-loss run lengths in a packet
/// stream, plus aggregate loss counts.
///
/// Feed per-packet outcomes with [`BurstStats::record`] in transmission
/// order and call [`BurstStats::finish`] when the stream ends (to close a
/// trailing burst).
#[derive(Debug, Clone, Default)]
pub struct BurstStats {
    /// `histogram[i]` = number of bursts of length `i + 1`.
    histogram: Vec<u64>,
    current_run: u64,
    packets: u64,
    lost: u64,
    finished: bool,
}

impl BurstStats {
    /// Empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the outcome of one packet (`true` = lost).
    ///
    /// # Panics
    /// Panics if called after [`BurstStats::finish`].
    pub fn record(&mut self, lost: bool) {
        assert!(!self.finished, "record() after finish()");
        self.packets += 1;
        if lost {
            self.lost += 1;
            self.current_run += 1;
        } else if self.current_run > 0 {
            self.bump(self.current_run);
            self.current_run = 0;
        }
    }

    /// Close the stream: a burst in progress at the end is counted.
    /// Idempotent.
    pub fn finish(&mut self) {
        if self.current_run > 0 {
            let run = self.current_run;
            self.bump(run);
            self.current_run = 0;
        }
        self.finished = true;
    }

    fn bump(&mut self, run: u64) {
        let idx = (run - 1) as usize;
        if self.histogram.len() <= idx {
            self.histogram.resize(idx + 1, 0);
        }
        self.histogram[idx] += 1;
    }

    /// `histogram()[i]` = occurrences of bursts of length `i + 1`
    /// (Fig. 14's y-axis over x = i + 1).
    pub fn histogram(&self) -> &[u64] {
        &self.histogram
    }

    /// Occurrences of bursts of exactly `len` consecutive losses.
    pub fn occurrences(&self, len: usize) -> u64 {
        if len == 0 {
            return 0;
        }
        self.histogram.get(len - 1).copied().unwrap_or(0)
    }

    /// Total packets recorded.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Total packets lost.
    pub fn lost_packets(&self) -> u64 {
        self.lost
    }

    /// Overall loss fraction (0 if nothing recorded).
    pub fn loss_rate(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.lost as f64 / self.packets as f64
        }
    }

    /// Number of bursts observed.
    pub fn burst_count(&self) -> u64 {
        self.histogram.iter().sum()
    }

    /// Mean burst length, `None` if no bursts were observed. Call
    /// [`BurstStats::finish`] first for an exact answer.
    pub fn mean_burst(&self) -> Option<f64> {
        let count = self.burst_count();
        if count == 0 {
            return None;
        }
        let total: u64 = self
            .histogram
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as u64 + 1) * c)
            .sum();
        Some(total as f64 / count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(pattern: &[u8]) -> BurstStats {
        let mut s = BurstStats::new();
        for &b in pattern {
            s.record(b == 1);
        }
        s.finish();
        s
    }

    #[test]
    fn counts_runs() {
        // Pattern: L LL LLL (separated by successes).
        let s = feed(&[1, 0, 1, 1, 0, 1, 1, 1, 0]);
        assert_eq!(s.occurrences(1), 1);
        assert_eq!(s.occurrences(2), 1);
        assert_eq!(s.occurrences(3), 1);
        assert_eq!(s.occurrences(4), 0);
        assert_eq!(s.burst_count(), 3);
        assert_eq!(s.mean_burst(), Some(2.0));
        assert_eq!(s.lost_packets(), 6);
        assert_eq!(s.packets(), 9);
    }

    #[test]
    fn trailing_burst_needs_finish() {
        let mut s = BurstStats::new();
        for b in [0, 1, 1] {
            s.record(b == 1);
        }
        assert_eq!(s.burst_count(), 0, "open burst not yet counted");
        s.finish();
        assert_eq!(s.occurrences(2), 1);
        s.finish(); // idempotent
        assert_eq!(s.occurrences(2), 1);
    }

    #[test]
    fn empty_and_lossless_streams() {
        let s = feed(&[]);
        assert_eq!(s.mean_burst(), None);
        assert_eq!(s.loss_rate(), 0.0);
        let s = feed(&[0, 0, 0]);
        assert_eq!(s.burst_count(), 0);
        assert_eq!(s.loss_rate(), 0.0);
    }

    #[test]
    fn all_lost_is_one_burst() {
        let s = feed(&[1, 1, 1, 1]);
        assert_eq!(s.burst_count(), 1);
        assert_eq!(s.occurrences(4), 1);
        assert_eq!(s.mean_burst(), Some(4.0));
        assert_eq!(s.loss_rate(), 1.0);
    }

    #[test]
    #[should_panic(expected = "after finish")]
    fn record_after_finish_panics() {
        let mut s = BurstStats::new();
        s.finish();
        s.record(true);
    }
}
