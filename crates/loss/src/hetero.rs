//! Heterogeneous receiver populations (Section 3.3).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::model::LossModel;

/// Arbitrary per-receiver loss probabilities, independent in space and time.
#[derive(Debug, Clone)]
pub struct PerReceiverLoss {
    ps: Vec<f64>,
    rng: ChaCha8Rng,
}

impl PerReceiverLoss {
    /// One loss probability per receiver.
    ///
    /// # Panics
    /// Panics if `ps` is empty or contains a non-probability.
    pub fn new(ps: Vec<f64>, seed: u64) -> Self {
        assert!(!ps.is_empty(), "need at least one receiver");
        for (r, &p) in ps.iter().enumerate() {
            assert!(
                (0.0..=1.0).contains(&p),
                "receiver {r}: p={p} is not a probability"
            );
        }
        PerReceiverLoss {
            ps,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// The loss probability of receiver `r`.
    pub fn p_of(&self, r: usize) -> f64 {
        self.ps[r]
    }
}

impl LossModel for PerReceiverLoss {
    fn receivers(&self) -> usize {
        self.ps.len()
    }

    fn sample(&mut self, _time: f64, lost: &mut [bool]) {
        assert_eq!(lost.len(), self.ps.len(), "loss buffer size mismatch");
        for (l, &p) in lost.iter_mut().zip(&self.ps) {
            *l = self.rng.random::<f64>() < p;
        }
    }
}

/// The paper's two-class population: a fraction `alpha` of receivers are
/// "high loss" (`p_high`, 0.25 in the paper), the rest "low loss" (`p_low`,
/// 0.01 in the paper). Figures 9–10.
///
/// Class assignment is deterministic — the first `round(alpha * R)`
/// receivers are the high-loss ones — so experiments are exactly
/// reproducible and `alpha` is honoured to the nearest receiver.
#[derive(Debug, Clone)]
pub struct TwoClassLoss {
    inner: PerReceiverLoss,
    high_count: usize,
}

impl TwoClassLoss {
    /// Build the two-class population.
    ///
    /// # Panics
    /// Panics unless `alpha`, `p_low`, `p_high` are probabilities and
    /// `receivers > 0`.
    pub fn new(receivers: usize, alpha: f64, p_low: f64, p_high: f64, seed: u64) -> Self {
        assert!(receivers > 0, "need at least one receiver");
        assert!((0.0..=1.0).contains(&alpha), "alpha must be a probability");
        let high_count = (alpha * receivers as f64).round() as usize;
        let mut ps = vec![p_high; high_count];
        ps.extend(std::iter::repeat_n(p_low, receivers - high_count));
        TwoClassLoss {
            inner: PerReceiverLoss::new(ps, seed),
            high_count,
        }
    }

    /// Number of receivers in the high-loss class.
    pub fn high_count(&self) -> usize {
        self.high_count
    }
}

impl LossModel for TwoClassLoss {
    fn receivers(&self) -> usize {
        self.inner.receivers()
    }

    fn sample(&mut self, time: f64, lost: &mut [bool]) {
        self.inner.sample(time, lost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::empirical_loss_rate;

    #[test]
    fn class_sizes_round_correctly() {
        let m = TwoClassLoss::new(100, 0.25, 0.01, 0.25, 0);
        assert_eq!(m.high_count(), 25);
        let m = TwoClassLoss::new(1000, 0.01, 0.01, 0.25, 0);
        assert_eq!(m.high_count(), 10);
        let m = TwoClassLoss::new(3, 0.5, 0.0, 1.0, 0);
        assert_eq!(m.high_count(), 2); // round(1.5)
    }

    #[test]
    fn per_class_rates_hold() {
        let mut m = TwoClassLoss::new(40, 0.5, 0.05, 0.5, 11);
        let n = 4000;
        let mut per_recv = vec![0usize; 40];
        for i in 0..n {
            for (r, &l) in m.sample_vec(i as f64).iter().enumerate() {
                if l {
                    per_recv[r] += 1;
                }
            }
        }
        #[allow(clippy::needless_range_loop)]
        for r in 0..20 {
            let rate = per_recv[r] as f64 / n as f64;
            assert!((rate - 0.5).abs() < 0.04, "high receiver {r}: {rate}");
        }
        #[allow(clippy::needless_range_loop)]
        for r in 20..40 {
            let rate = per_recv[r] as f64 / n as f64;
            assert!((rate - 0.05).abs() < 0.02, "low receiver {r}: {rate}");
        }
    }

    #[test]
    fn aggregate_rate_is_mixture() {
        let mut m = TwoClassLoss::new(100, 0.25, 0.01, 0.25, 3);
        let rate = empirical_loss_rate(&mut m, 3000, 0.04);
        let expect = 0.25 * 0.25 + 0.75 * 0.01;
        assert!((rate - expect).abs() < 0.01, "rate={rate} expect={expect}");
    }

    #[test]
    fn alpha_zero_and_one() {
        assert_eq!(TwoClassLoss::new(10, 0.0, 0.1, 0.9, 0).high_count(), 0);
        assert_eq!(TwoClassLoss::new(10, 1.0, 0.1, 0.9, 0).high_count(), 10);
    }

    #[test]
    fn per_receiver_accessor() {
        let m = PerReceiverLoss::new(vec![0.1, 0.9], 0);
        assert_eq!(m.p_of(0), 0.1);
        assert_eq!(m.p_of(1), 0.9);
    }

    #[test]
    #[should_panic(expected = "not a probability")]
    fn bad_probability_panics() {
        let _ = PerReceiverLoss::new(vec![0.5, -0.1], 0);
    }
}
