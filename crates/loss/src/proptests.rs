//! Property-based tests across loss models.

use proptest::prelude::*;

use crate::bernoulli::IndependentLoss;
use crate::gilbert::GilbertLoss;
use crate::hetero::TwoClassLoss;
use crate::model::LossModel;
use crate::stats::BurstStats;
use crate::tree::TreeLoss;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Burst accounting identity: sum over histogram of len*count equals
    /// total losses, for any loss pattern.
    #[test]
    fn burst_histogram_conserves_losses(pattern in proptest::collection::vec(any::<bool>(), 0..500)) {
        let mut s = BurstStats::new();
        for &l in &pattern {
            s.record(l);
        }
        s.finish();
        let total: u64 = s
            .histogram()
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as u64 + 1) * c)
            .sum();
        prop_assert_eq!(total, s.lost_packets());
        prop_assert_eq!(s.packets(), pattern.len() as u64);
    }

    /// Every model reports the receiver count it was built with and fills
    /// the whole buffer.
    #[test]
    fn models_fill_buffers(r in 1usize..40, seed in any::<u64>()) {
        let mut models: Vec<Box<dyn LossModel>> = vec![
            Box::new(IndependentLoss::new(r, 0.3, seed)),
            Box::new(TwoClassLoss::new(r, 0.25, 0.01, 0.25, seed)),
            Box::new(GilbertLoss::new(r, 0.1, 2.0, 0.04, seed)),
        ];
        for m in &mut models {
            prop_assert_eq!(m.receivers(), r);
            let v = m.sample_vec(0.0);
            prop_assert_eq!(v.len(), r);
        }
    }

    /// FBT receiver count is 2^d and single-packet marginals stay inside
    /// plausible bounds.
    #[test]
    fn fbt_shape(d in 0u32..8, seed in any::<u64>()) {
        let mut t = TreeLoss::full_binary(d, 0.1, seed);
        prop_assert_eq!(t.receivers(), 1usize << d);
        let v = t.sample_vec(0.0);
        prop_assert_eq!(v.len(), 1usize << d);
        prop_assert!((t.path_loss_probability() - 0.1).abs() < 1e-9);
    }

    /// Gilbert model sampled at identical timestamps returns a consistent
    /// present state (dt = 0 keeps the chain where it is).
    #[test]
    fn gilbert_zero_dt_is_stable(seed in any::<u64>()) {
        let mut g = GilbertLoss::new(1, 0.3, 2.0, 0.04, seed);
        let a = g.sample_vec(1.0);
        let b = g.sample_vec(1.0);
        prop_assert_eq!(a, b);
    }

    /// Seed determinism holds for every model.
    #[test]
    fn determinism(seed in any::<u64>()) {
        let mk = |s: u64| -> Vec<Box<dyn LossModel>> {
            vec![
                Box::new(IndependentLoss::new(5, 0.4, s)),
                Box::new(TwoClassLoss::new(5, 0.2, 0.05, 0.5, s)),
                Box::new(GilbertLoss::new(5, 0.2, 2.0, 0.04, s)),
                Box::new(TreeLoss::full_binary(3, 0.2, s)),
            ]
        };
        let mut a = mk(seed);
        let mut b = mk(seed);
        for (ma, mb) in a.iter_mut().zip(b.iter_mut()) {
            for i in 0..20 {
                prop_assert_eq!(ma.sample_vec(i as f64 * 0.04), mb.sample_vec(i as f64 * 0.04));
            }
        }
    }
}
