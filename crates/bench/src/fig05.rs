//! Figure 5 — layered FEC vs the integrated-FEC lower bound, `k = 7`,
//! `p = 0.01`.

use pm_analysis::{integrated, layered, nofec, Population};

use crate::common::{receiver_grid, Figure, Quality, Series};

const P: f64 = 0.01;
const K: usize = 7;

/// Generate Figure 5.
pub fn generate(quality: Quality) -> Figure {
    let grid = receiver_grid(quality);
    let at = |f: &dyn Fn(&Population) -> f64| -> Vec<(f64, f64)> {
        grid.iter()
            .map(|&r| (r as f64, f(&Population::homogeneous(P, r))))
            .collect()
    };
    let series = vec![
        Series::new("no FEC", at(&|pop| nofec::expected_transmissions(pop))),
        Series::new(
            "layered",
            at(&|pop| layered::expected_transmissions(K, 2, pop)),
        ),
        Series::new("integrated", at(&|pop| integrated::lower_bound(K, 0, pop))),
    ];
    Figure {
        id: "fig5".into(),
        title: format!("layered vs integrated FEC, k = {K}, p = {P}"),
        x_label: "receivers R".into(),
        y_label: "transmissions E[M]".into(),
        log_x: true,
        series,
        notes: vec![
            "integrated = Eq. (6) lower bound (n = inf)".into(),
            "layered uses h = 2 (the figure-3 configuration)".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_ordering_at_scale() {
        let fig = generate(Quality::Full);
        for x in [1000.0f64, 100_000.0, 1_000_000.0] {
            let n = fig.series_named("no FEC").unwrap().y_at(x).unwrap();
            let l = fig.series_named("layered").unwrap().y_at(x).unwrap();
            let i = fig.series_named("integrated").unwrap().y_at(x).unwrap();
            assert!(
                i < l && l < n,
                "at R={x}: integrated={i} layered={l} noFEC={n}"
            );
        }
        // Paper magnitude: integrated stays below ~1.7 out to R = 1e6.
        let i_edge = fig.series_named("integrated").unwrap().last_y().unwrap();
        assert!(i_edge < 1.8, "integrated at 1e6 = {i_edge}");
    }
}
