//! Figure 3 — no-FEC vs layered FEC with `h = 2` parities, TG sizes
//! `k = 7, 20, 100`, loss `p = 0.01`.

use pm_analysis::{layered, nofec, Population};

use crate::common::{receiver_grid, Figure, Quality, Series};

/// Loss probability of the figure.
pub const P: f64 = 0.01;

/// Shared generator for Figs. 3/4 (they differ only in `h`).
pub fn layered_figure(id: &str, h: usize, quality: Quality) -> Figure {
    let grid = receiver_grid(quality);
    let no_fec: Vec<(f64, f64)> = grid
        .iter()
        .map(|&r| {
            (
                r as f64,
                nofec::expected_transmissions(&Population::homogeneous(P, r)),
            )
        })
        .collect();
    let mut series = vec![Series::new("no FEC", no_fec)];
    for k in [7usize, 20, 100] {
        let pts: Vec<(f64, f64)> = grid
            .iter()
            .map(|&r| {
                (
                    r as f64,
                    layered::expected_transmissions(k, h, &Population::homogeneous(P, r)),
                )
            })
            .collect();
        series.push(Series::new(format!("layered FEC, k = {k}"), pts));
    }
    Figure {
        id: id.into(),
        title: format!("no-FEC vs layered FEC, h = {h}, p = {P}"),
        x_label: "receivers R".into(),
        y_label: "transmissions E[M]".into(),
        log_x: true,
        series,
        notes: vec![format!("Eq. (2)+(3); h = {h} parity packets per group")],
    }
}

/// Generate Figure 3.
pub fn generate(quality: Quality) -> Figure {
    layered_figure("fig3", 2, quality)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Quality;

    #[test]
    fn paper_shape_h2() {
        let fig = generate(Quality::Full);
        let no_fec = fig.series_named("no FEC").unwrap().last_y().unwrap();
        let k7 = fig
            .series_named("layered FEC, k = 7")
            .unwrap()
            .last_y()
            .unwrap();
        let k20 = fig
            .series_named("layered FEC, k = 20")
            .unwrap()
            .last_y()
            .unwrap();
        let k100 = fig
            .series_named("layered FEC, k = 100")
            .unwrap()
            .last_y()
            .unwrap();
        // At R = 1e6 with only 2 parities: k=7 and k=20 beat no-FEC,
        // k=100 is under-protected and worse than both.
        assert!(
            k7 < no_fec && k20 < no_fec,
            "k7={k7} k20={k20} noFEC={no_fec}"
        );
        assert!(k100 > k7 && k100 > k20, "k100={k100} should underperform");
        // Paper magnitudes at the right edge: no-FEC ~ 4, layered k=7 ~< 2.5.
        assert!((3.0..5.0).contains(&no_fec), "no_fec={no_fec}");
        assert!(k7 < 2.6, "k7={k7}");
    }

    #[test]
    fn small_population_overhead() {
        // At R = 1 layered FEC pays the n/k overhead and loses to no-FEC.
        let fig = generate(Quality::Quick);
        let no_fec = fig.series_named("no FEC").unwrap().points[0].1;
        let k7 = fig.series_named("layered FEC, k = 7").unwrap().points[0].1;
        assert!(k7 > no_fec);
    }
}
