//! Extension studies beyond the paper's figures — the ablations DESIGN.md
//! commits to. Each is built like a paper figure (series over a swept
//! parameter) and ships through the same `figures` binary under ids
//! `extA`..`extE`.

use pm_analysis::endhost::{np_rates, NpOptions};
use pm_analysis::{integrated, CostModel, Population};
use pm_loss::{GilbertLoss, LossModel};
use pm_net::suppression::NakSuppressor;
use pm_rse::Interleaver;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::common::{receiver_grid, Figure, Quality, Series};

/// extA — bandwidth cost of proactive parities: `E[M]` vs `R` for
/// `a = 0..4` proactive parities (k = 7, p = 0.01). Proactive parities
/// trade bandwidth at small `R` for fewer feedback rounds; the penalty
/// vanishes as `R` grows (the parities would have been demanded anyway).
pub fn ext_proactive(quality: Quality) -> Figure {
    let grid = receiver_grid(quality);
    let series = [0usize, 1, 2, 4]
        .iter()
        .map(|&a| {
            let pts = grid
                .iter()
                .map(|&r| {
                    (
                        r as f64,
                        integrated::lower_bound(7, a, &Population::homogeneous(0.01, r)),
                    )
                })
                .collect();
            Series::new(format!("a = {a}"), pts)
        })
        .collect();
    Figure {
        id: "extA".into(),
        title: "proactive parities: bandwidth vs latency trade (k = 7, p = 0.01)".into(),
        x_label: "receivers R".into(),
        y_label: "transmissions E[M]".into(),
        log_x: true,
        series,
        notes: vec!["extension: Eq. (4)-(6) swept over the proactive count a".into()],
    }
}

/// extB — interleaving depth vs block-failure probability under burst
/// loss: an FEC block (7+1) transmitted with its packets spaced
/// `depth * delta` apart (the effect of interleaving `depth` blocks)
/// recovers more often as `depth` grows; by `depth ~ 8` the Markov chain
/// has decorrelated and the iid failure rate is restored.
pub fn ext_interleave(quality: Quality) -> Figure {
    let trials = match quality {
        Quality::Quick => 10_000,
        Quality::Full => 100_000,
    };
    let (k, h, p, b, delta) = (7usize, 1usize, 0.05, 3.0, 0.04);
    let mut series_pts = Vec::new();
    for depth in [1usize, 2, 4, 8, 16] {
        let mut model = GilbertLoss::new(1, p, b, delta, 0xE1 + depth as u64);
        let spacing = delta * depth as f64;
        let mut fails = 0u64;
        for t in 0..trials {
            let t0 = t as f64 * (k + h + 4) as f64 * spacing;
            let mut received = 0;
            for slot in 0..(k + h) {
                if !model.sample_one(t0 + slot as f64 * spacing, 0) {
                    received += 1;
                }
            }
            if received < k {
                fails += 1;
            }
        }
        series_pts.push((depth as f64, fails as f64 / trials as f64));
    }
    // The iid baseline for reference.
    let iid: f64 = {
        let n = k + h;
        1.0 - (0..=h)
            .map(|j| {
                let c = (0..j).fold(1.0, |acc, i| acc * (n - i) as f64 / (i + 1) as f64);
                c * p.powi(j as i32) * (1.0 - p).powi((n - j) as i32)
            })
            .sum::<f64>()
    };
    Figure {
        id: "extB".into(),
        title: "interleaving depth vs FEC-block failure under burst loss (7+1, b = 3)".into(),
        x_label: "interleave depth".into(),
        y_label: "P(block unrecoverable)".into(),
        log_x: false,
        series: vec![
            Series::new("burst loss", series_pts),
            Series::new("iid reference", vec![(1.0, iid), (16.0, iid)]),
        ],
        notes: vec![format!(
            "extension: Section 4.2's interleaving argument quantified; {} trials",
            trials
        )],
    }
}

/// extC — NAK aggregation ablation (Section 5.1's aside): NP processing
/// rates with one NAK per round vs one per missing packet.
pub fn ext_nak_aggregation(quality: Quality) -> Figure {
    let grid = receiver_grid(quality);
    let cost = CostModel::paper_defaults();
    let mk = |per_packet: bool, side: fn(pm_analysis::endhost::Rates) -> f64| -> Vec<(f64, f64)> {
        grid.iter()
            .map(|&r| {
                let rates = np_rates(
                    20,
                    0.01,
                    r,
                    &cost,
                    NpOptions {
                        nak_per_packet: per_packet,
                        ..Default::default()
                    },
                );
                (r as f64, side(rates) / 1e3)
            })
            .collect()
    };
    Figure {
        id: "extC".into(),
        title: "NAK aggregation ablation: per-round vs per-packet feedback (NP, k = 20)".into(),
        x_label: "receivers R".into(),
        y_label: "processing rate [pkts/msec]".into(),
        log_x: true,
        series: vec![
            Series::new("sender, per-round NAK", mk(false, |r| r.sender)),
            Series::new("sender, per-packet NAK", mk(true, |r| r.sender)),
            Series::new("receiver, per-round NAK", mk(false, |r| r.receiver)),
            Series::new("receiver, per-packet NAK", mk(true, |r| r.receiver)),
        ],
        notes: vec!["extension: the paper reports 'only a minor effect' — quantified here".into()],
    }
}

/// extD — suppression slot-width sweep: how many NAKs actually reach the
/// sender per poll as the slot `Ts` varies, for a 100-receiver population
/// with a `nak_delay` propagation lag between a NAK firing and others
/// hearing it. Too-small slots fire before damping can act (feedback
/// implosion); larger slots converge to ~1 NAK per poll at a latency
/// cost.
pub fn ext_slot_sweep(quality: Quality) -> Figure {
    let polls = match quality {
        Quality::Quick => 40,
        Quality::Full => 400,
    };
    let receivers = 100usize;
    let propagation = 0.002; // seconds from one receiver's NAK to the rest
    let mut rng = ChaCha8Rng::seed_from_u64(0xD0);
    let mut pts_naks = Vec::new();
    let mut pts_delay = Vec::new();
    for slot_ms in [0.5f64, 1.0, 2.0, 5.0, 10.0, 20.0] {
        let slot = slot_ms / 1000.0;
        let mut fired_total = 0u64;
        let mut first_delay_total = 0.0f64;
        for poll in 0..polls {
            // Each receiver needs 1..=5 packets of a k=20 round.
            let mut pop: Vec<NakSuppressor> = (0..receivers)
                .map(|i| NakSuppressor::new(slot, poll as u64 * 100 + i as u64))
                .collect();
            for s in pop.iter_mut() {
                let needed = 1 + (rng.random::<u32>() % 5) as u16;
                s.on_poll(0, 1, 20, needed, 0.0);
            }
            // Event-driven: fire in deadline order; damping reaches the
            // others `propagation` later.
            let mut fired: Vec<(f64, u16)> = Vec::new();
            loop {
                let next = pop
                    .iter()
                    .enumerate()
                    .filter_map(|(i, s)| s.next_deadline().map(|d| (d, i)))
                    .min_by(|a, b| a.0.total_cmp(&b.0));
                let Some((t, i)) = next else { break };
                // Apply damping from NAKs whose propagation completed.
                for &(ft, m) in &fired {
                    if ft + propagation <= t {
                        for s in pop.iter_mut() {
                            s.on_nak_heard(0, m);
                        }
                    }
                }
                for due in pop[i].take_due(t) {
                    fired.push((t, due.needed));
                }
            }
            fired_total += fired.len() as u64;
            if let Some(&(t, _)) = fired.first() {
                first_delay_total += t;
            }
        }
        pts_naks.push((slot_ms, fired_total as f64 / polls as f64));
        pts_delay.push((slot_ms, first_delay_total / polls as f64 * 1000.0));
    }
    Figure {
        id: "extD".into(),
        title: "NAK suppression slot sweep (100 receivers, 2 ms propagation)".into(),
        x_label: "slot width Ts [ms]".into(),
        y_label: "NAKs per poll / first-NAK delay [ms]".into(),
        log_x: false,
        series: vec![
            Series::new("NAKs reaching sender", pts_naks),
            Series::new("first-NAK delay [ms]", pts_delay),
        ],
        notes: vec![
            "extension: the 'slot size Ts needs to be chosen appropriately' remark, quantified"
                .into(),
        ],
    }
}

/// extE — interleaver unit economics: worst-case packets lost per block
/// for a burst of length L at several depths (the deterministic guarantee
/// behind extB's stochastic measurement).
pub fn ext_interleave_guarantee(_quality: Quality) -> Figure {
    let block_len = 8usize;
    let series = [1usize, 2, 4, 8]
        .iter()
        .map(|&depth| {
            let il = Interleaver::new(depth, block_len);
            let pts = (1..=16usize)
                .map(|burst| (burst as f64, il.max_block_damage(burst) as f64))
                .collect();
            Series::new(format!("depth {depth}"), pts)
        })
        .collect();
    Figure {
        id: "extE".into(),
        title: "interleaving guarantee: worst-case per-block damage vs burst length".into(),
        x_label: "burst length [packets]".into(),
        y_label: "max packets lost in one block".into(),
        log_x: false,
        series,
        notes: vec!["extension: ceil(L/depth) bound, exact by construction".into()],
    }
}

/// extF — the real NP implementation at scale: achieved E\[M\] and NAKs
/// reaching the sender per transmission group, from the deterministic
/// protocol harness (`pm_core::harness`) driving actual `NpSender`/
/// `NpReceiver` machines over a simulated medium. The analytical bound
/// rides along for comparison — the implementation should hug it.
pub fn ext_protocol_scale(quality: Quality) -> Figure {
    use pm_core::harness::{run_simulation, HarnessConfig};
    use pm_core::{CompletionPolicy, NpConfig, NpReceiver, NpSender};
    use pm_loss::IndependentLoss;

    let (k, p) = (20usize, 0.01);
    let rs: Vec<usize> = match quality {
        Quality::Quick => vec![4, 16, 64],
        Quality::Full => vec![4, 16, 64, 256, 1024],
    };
    let groups = match quality {
        Quality::Quick => 6,
        Quality::Full => 25,
    };
    let mut em_pts = Vec::new();
    let mut nak_pts = Vec::new();
    let mut bound_pts = Vec::new();
    for &r in &rs {
        let mut cfg = NpConfig::small(CompletionPolicy::KnownReceivers(r as u32));
        cfg.k = k;
        cfg.h = 255 - k;
        cfg.payload_len = 8;
        cfg.nak_slot = 0.002;
        cfg.round_timeout = 0.05;
        let data: Vec<u8> = vec![0xA5; k * 8 * groups];
        let mut sender = NpSender::new(0xF00D, &data, cfg).expect("config");
        let mut receivers: Vec<NpReceiver> = (0..r)
            .map(|i| NpReceiver::new(i as u32, 0xF00D, 0.002, 0xE0 + i as u64))
            .collect();
        let mut loss = IndependentLoss::new(r, p, 0xE0 ^ r as u64);
        let report = run_simulation(
            &mut sender,
            &mut receivers,
            &mut loss,
            &HarnessConfig {
                latency: 0.0005,
                ..Default::default()
            },
        )
        .expect("session completes");
        em_pts.push((r as f64, report.transmissions_per_packet));
        nak_pts.push((r as f64, report.naks_at_sender as f64 / groups as f64));
        bound_pts.push((
            r as f64,
            integrated::lower_bound(k, 0, &Population::homogeneous(p, r as u64)),
        ));
    }
    Figure {
        id: "extF".into(),
        title: format!(
            "real NP implementation at scale (harness, k = {k}, p = {p}, {groups} groups)"
        ),
        x_label: "receivers R".into(),
        y_label: "E[M] / NAKs per group".into(),
        log_x: true,
        series: vec![
            Series::new("implementation E[M]", em_pts),
            Series::new("Eq. (6) bound", bound_pts),
            Series::new("NAKs per group at sender", nak_pts),
        ],
        notes: vec![
            "extension: sans-io machines on a simulated medium; no threads involved".into(),
        ],
    }
}

/// Extension-figure registry, like [`crate::all_figures`].
pub fn extension_figures() -> Vec<(&'static str, crate::FigureFn)> {
    vec![
        ("extA", ext_proactive as crate::FigureFn),
        ("extB", ext_interleave),
        ("extC", ext_nak_aggregation),
        ("extD", ext_slot_sweep),
        ("extE", ext_interleave_guarantee),
        ("extF", ext_protocol_scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_scale_hugs_the_bound() {
        let fig = ext_protocol_scale(Quality::Quick);
        let em = fig.series_named("implementation E[M]").unwrap();
        let bound = fig.series_named("Eq. (6) bound").unwrap();
        for (&(r, m), &(_, b)) in em.points.iter().zip(&bound.points) {
            assert!(m >= 1.0 && m < b * 1.4, "R={r}: E[M]={m} vs bound {b}");
        }
        // Feedback stays tiny per group even as R grows.
        let naks = fig.series_named("NAKs per group at sender").unwrap();
        assert!(naks.last_y().unwrap() < 6.0, "NAKs/group {:?}", naks.points);
    }

    #[test]
    fn all_extensions_generate() {
        for (id, f) in extension_figures() {
            let fig = f(Quality::Quick);
            assert!(!fig.series.is_empty(), "{id}");
            for s in &fig.series {
                for &(x, y) in &s.points {
                    assert!(x.is_finite() && y.is_finite(), "{id}/{}", s.label);
                }
            }
        }
    }

    #[test]
    fn proactive_penalty_shrinks_with_r() {
        let fig = ext_proactive(Quality::Full);
        let a0 = fig.series_named("a = 0").unwrap();
        let a4 = fig.series_named("a = 4").unwrap();
        let gap_small = a4.points[0].1 - a0.points[0].1;
        let gap_large = a4.last_y().unwrap() - a0.last_y().unwrap();
        assert!(
            gap_small > 0.4,
            "at R=1 four parities cost ~4/7: {gap_small}"
        );
        assert!(
            gap_large < gap_small / 2.0,
            "penalty must shrink: {gap_large} vs {gap_small}"
        );
    }

    #[test]
    fn interleaving_restores_iid_failure_rate() {
        let fig = ext_interleave(Quality::Quick);
        let burst = fig.series_named("burst loss").unwrap();
        let iid = fig.series_named("iid reference").unwrap().points[0].1;
        let depth1 = burst.points[0].1;
        let depth16 = burst.last_y().unwrap();
        assert!(
            depth1 > iid * 1.3,
            "no interleaving is clearly worse: {depth1} vs iid {iid}"
        );
        assert!(
            (depth16 - iid).abs() / iid < 0.35,
            "deep interleaving approaches iid: {depth16} vs {iid}"
        );
        // Monotone improvement.
        for w in burst.points.windows(2) {
            assert!(w[1].1 <= w[0].1 * 1.1, "deeper should not be worse: {w:?}");
        }
    }

    #[test]
    fn nak_aggregation_is_minor() {
        let fig = ext_nak_aggregation(Quality::Full);
        let per_round = fig
            .series_named("receiver, per-round NAK")
            .unwrap()
            .last_y()
            .unwrap();
        let per_packet = fig
            .series_named("receiver, per-packet NAK")
            .unwrap()
            .last_y()
            .unwrap();
        let rel = (per_round - per_packet).abs() / per_round;
        assert!(rel < 0.15, "paper: 'only a minor effect'; got {rel}");
        assert!(per_round >= per_packet - 1e-12, "aggregation can only help");
    }

    #[test]
    fn slot_sweep_shows_the_tradeoff() {
        let fig = ext_slot_sweep(Quality::Quick);
        let naks = fig.series_named("NAKs reaching sender").unwrap();
        let first = naks.points[0].1;
        let last = naks.last_y().unwrap();
        assert!(
            first > last,
            "tiny slots imply more NAKs: {first} -> {last}"
        );
        // With ~20 same-demand receivers sharing the earliest slot and a
        // 2 ms propagation delay, a handful of NAKs always escape before
        // damping lands; wide slots cut the implosion by >3x but cannot
        // reach exactly one.
        assert!(
            last < first / 3.0,
            "wide slots should cut NAKs >3x: {first} -> {last}"
        );
        assert!(
            last <= 4.5,
            "wide slots land near a handful of NAKs: {last}"
        );
        let delay = fig.series_named("first-NAK delay [ms]").unwrap();
        assert!(
            delay.last_y().unwrap() > delay.points[0].1,
            "wider slots pay in latency"
        );
    }

    #[test]
    fn guarantee_matches_interleaver() {
        let fig = ext_interleave_guarantee(Quality::Quick);
        let d4 = fig.series_named("depth 4").unwrap();
        assert_eq!(d4.y_at(4.0), Some(1.0));
        assert_eq!(d4.y_at(5.0), Some(2.0));
    }
}
