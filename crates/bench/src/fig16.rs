//! Figure 16 — burst loss and integrated FEC: variants 1 (parities
//! back-to-back) and 2 (rounds spaced by `T`), `k = 7, 20, 100`.

use pm_sim::runner::Scheme;

use crate::common::{Figure, Quality};
use crate::fig15::burst_figure;

/// Generate Figure 16.
pub fn generate(quality: Quality) -> Figure {
    burst_figure(
        "fig16",
        "burst loss and integrated FEC",
        &[
            Scheme::NoFec,
            Scheme::Integrated1 { k: 7 },
            Scheme::Integrated2 { k: 7 },
            Scheme::Integrated1 { k: 20 },
            Scheme::Integrated2 { k: 20 },
            Scheme::Integrated1 { k: 100 },
            Scheme::Integrated2 { k: 100 },
        ],
        quality,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaving_helps_small_k_only() {
        let fig = generate(Quality::Quick);
        let edge = |label: &str| fig.series_named(label).unwrap().last_y().unwrap();
        // k = 7: the spread-out variant 2 clearly beats variant 1.
        assert!(
            edge("integrated2(k=7)") < edge("integrated1(k=7)"),
            "int2 {} vs int1 {}",
            edge("integrated2(k=7)"),
            edge("integrated1(k=7)")
        );
        // k = 100: the two variants nearly coincide (no interleaving
        // needed) and both sit close to 1.
        let v1 = edge("integrated1(k=100)");
        let v2 = edge("integrated2(k=100)");
        assert!((v1 - v2).abs() < 0.06, "k=100 variants {v1} vs {v2}");
        assert!(v1 < 1.2 && v2 < 1.2);
    }

    #[test]
    fn larger_groups_monotonically_better() {
        let fig = generate(Quality::Quick);
        let edge = |label: &str| fig.series_named(label).unwrap().last_y().unwrap();
        assert!(edge("integrated2(k=20)") < edge("integrated2(k=7)"));
        assert!(edge("integrated2(k=100)") < edge("integrated2(k=20)"));
    }
}
