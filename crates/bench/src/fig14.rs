//! Figure 14 — distribution of consecutive-loss run lengths at one
//! receiver: independent loss vs Markov burst loss (`b = 2`), `p = 0.01`,
//! packets every 40 ms.

use pm_loss::{BurstStats, GilbertLoss, IndependentLoss, LossModel};

use crate::common::{Figure, Quality, Series};

const P: f64 = 0.01;
const DELTA: f64 = 0.040;

fn histogram(model: &mut dyn LossModel, packets: usize) -> Vec<(f64, f64)> {
    let mut stats = BurstStats::new();
    let mut lost = vec![false; 1];
    for i in 0..packets {
        model.sample(i as f64 * DELTA, &mut lost);
        stats.record(lost[0]);
    }
    stats.finish();
    stats
        .histogram()
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| ((i + 1) as f64, c as f64))
        .collect()
}

/// Generate Figure 14.
pub fn generate(quality: Quality) -> Figure {
    let packets = match quality {
        Quality::Quick => 200_000,
        Quality::Full => 2_000_000,
    };
    let mut iid = IndependentLoss::new(1, P, 0x14);
    let mut burst = GilbertLoss::new(1, P, 2.0, DELTA, 0x14);
    let series = vec![
        Series::new("no burst loss", histogram(&mut iid, packets)),
        Series::new("burst loss, b = 2", histogram(&mut burst, packets)),
    ];
    Figure {
        id: "fig14".into(),
        title: format!("burst length distribution, p = {P}"),
        x_label: "burst length [packets]".into(),
        y_label: "occurrences".into(),
        log_x: false,
        series,
        notes: vec![format!(
            "{packets} packets at 1/{DELTA} = 25 pkts/s, one receiver"
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_model_has_heavier_tail() {
        let fig = generate(Quality::Quick);
        let iid = fig.series_named("no burst loss").unwrap();
        let burst = fig.series_named("burst loss, b = 2").unwrap();
        // Both have runs of length 1; the burst model has far more mass at
        // length >= 2.
        let tail = |s: &crate::Series| -> f64 {
            s.points.iter().filter(|p| p.0 >= 2.0).map(|p| p.1).sum()
        };
        let t_iid = tail(iid);
        let t_burst = tail(burst);
        assert!(
            t_burst > 10.0 * t_iid.max(1.0),
            "burst tail {t_burst} vs iid tail {t_iid}"
        );
    }

    #[test]
    fn geometric_tail_on_log_scale() {
        // The paper notes both tails fall linearly on a log scale: check
        // successive ratios of the burst histogram are roughly constant.
        let fig = generate(Quality::Quick);
        let burst = fig.series_named("burst loss, b = 2").unwrap();
        let ys: Vec<f64> = burst.points.iter().take(4).map(|p| p.1).collect();
        if ys.len() >= 3 {
            let r1 = ys[1] / ys[0];
            let r2 = ys[2] / ys[1];
            assert!((r1 - r2).abs() < 0.25, "ratios {r1} vs {r2}");
            // Continuation probability ~ 1 - 1/b = 0.5.
            assert!((r1 - 0.5).abs() < 0.15, "r1={r1}");
        }
    }
}
