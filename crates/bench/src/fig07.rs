//! Figure 7 — idealized integrated FEC vs receiver count for
//! `k = 7, 20, 100`, `p = 0.01`.

use pm_analysis::{integrated, nofec, Population};

use crate::common::{receiver_grid, Figure, Quality, Series};

const P: f64 = 0.01;

/// Generate Figure 7.
pub fn generate(quality: Quality) -> Figure {
    let grid = receiver_grid(quality);
    let mut series = vec![Series::new(
        "no FEC",
        grid.iter()
            .map(|&r| {
                (
                    r as f64,
                    nofec::expected_transmissions(&Population::homogeneous(P, r)),
                )
            })
            .collect(),
    )];
    for k in [7usize, 20, 100] {
        series.push(Series::new(
            format!("integr. FEC, k = {k}"),
            grid.iter()
                .map(|&r| {
                    (
                        r as f64,
                        integrated::lower_bound(k, 0, &Population::homogeneous(P, r)),
                    )
                })
                .collect(),
        ));
    }
    Figure {
        id: "fig7".into(),
        title: format!("influence of k on idealized integrated FEC, p = {P}"),
        x_label: "receivers R".into(),
        y_label: "transmissions E[M]".into(),
        log_x: true,
        series,
        notes: vec!["Eq. (4)-(6) with a = 0".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_groups_drive_m_to_one() {
        let fig = generate(Quality::Full);
        let k7 = fig
            .series_named("integr. FEC, k = 7")
            .unwrap()
            .last_y()
            .unwrap();
        let k20 = fig
            .series_named("integr. FEC, k = 20")
            .unwrap()
            .last_y()
            .unwrap();
        let k100 = fig
            .series_named("integr. FEC, k = 100")
            .unwrap()
            .last_y()
            .unwrap();
        assert!(k100 < k20 && k20 < k7, "{k100} < {k20} < {k7}");
        assert!(k100 < 1.25, "k=100 at R=1e6 should be near 1, got {k100}");
        let no_fec = fig.series_named("no FEC").unwrap().last_y().unwrap();
        assert!(
            no_fec / k100 > 3.0,
            "the dramatic reduction: {no_fec} vs {k100}"
        );
    }
}
