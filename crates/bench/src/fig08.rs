//! Figure 8 — idealized integrated FEC vs loss probability at `R = 1000`,
//! `k = 7, 20, 100`.

use pm_analysis::{integrated, nofec, Population};

use crate::common::{Figure, Quality, Series};

const R: u64 = 1000;

fn p_grid(quality: Quality) -> Vec<f64> {
    match quality {
        Quality::Quick => vec![0.001, 0.01, 0.1],
        Quality::Full => vec![0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1],
    }
}

/// Generate Figure 8.
pub fn generate(quality: Quality) -> Figure {
    let ps = p_grid(quality);
    let mut series = vec![Series::new(
        "no FEC",
        ps.iter()
            .map(|&p| {
                (
                    p,
                    nofec::expected_transmissions(&Population::homogeneous(p, R)),
                )
            })
            .collect(),
    )];
    for k in [7usize, 20, 100] {
        series.push(Series::new(
            format!("integr. FEC, k = {k}"),
            ps.iter()
                .map(|&p| {
                    (
                        p,
                        integrated::lower_bound(k, 0, &Population::homogeneous(p, R)),
                    )
                })
                .collect(),
        ));
    }
    Figure {
        id: "fig8".into(),
        title: format!("influence of p on idealized integrated FEC, R = {R}"),
        x_label: "packet loss probability p".into(),
        y_label: "transmissions E[M]".into(),
        log_x: true,
        series,
        notes: vec!["Eq. (4)-(6) with a = 0".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_k_insensitive_to_p() {
        let fig = generate(Quality::Full);
        let k100 = fig.series_named("integr. FEC, k = 100").unwrap();
        let spread = k100.last_y().unwrap() - k100.points[0].1;
        assert!(
            spread < 0.6,
            "k=100 spread over p grid should stay small, got {spread}"
        );
        // no-FEC blows up over the same range.
        let n = fig.series_named("no FEC").unwrap();
        let n_spread = n.last_y().unwrap() - n.points[0].1;
        assert!(n_spread > 1.5, "no-FEC spread {n_spread}");
    }

    #[test]
    fn monotone_in_p() {
        let fig = generate(Quality::Full);
        for s in &fig.series {
            for w in s.points.windows(2) {
                assert!(w[1].1 >= w[0].1 - 1e-9, "{}: non-monotone {w:?}", s.label);
            }
        }
    }
}
