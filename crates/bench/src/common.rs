//! Shared figure plumbing: series containers, output formats, and the
//! standard parameter grids of the paper's plots.

use serde::{Serialize, Value};

/// How much compute to spend. `Quick` keeps every figure under ~1 s for
//  tests/CI; `Full` uses the paper's grids (R to 10^6 analytical, 2^17
/// simulated) for EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quality {
    /// Small grids for smoke tests.
    Quick,
    /// Paper-scale grids.
    Full,
}

/// One labelled curve.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label (matches the paper's legends where possible).
    pub label: String,
    /// `(x, y)` samples.
    pub points: Vec<(f64, f64)>,
}

// The vendored serde has no derive macro (no proc-macro crates offline),
// so the JSON tree is built by hand.
impl Serialize for Series {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("label".into(), self.label.to_value()),
            ("points".into(), self.points.to_value()),
        ])
    }
}

impl Series {
    /// Build from a label and points.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }

    /// The `y` at the largest `x` (the "right edge" of the curve, where
    /// the paper's conclusions usually live).
    pub fn last_y(&self) -> Option<f64> {
        self.points.last().map(|&(_, y)| y)
    }

    /// Linear-interpolated `y` at `x` (points must be x-sorted).
    pub fn y_at(&self, x: f64) -> Option<f64> {
        let pts = &self.points;
        if pts.is_empty() {
            return None;
        }
        if x <= pts[0].0 {
            return Some(pts[0].1);
        }
        for w in pts.windows(2) {
            let ((x0, y0), (x1, y1)) = (w[0], w[1]);
            if x <= x1 {
                let t = if x1 > x0 { (x - x0) / (x1 - x0) } else { 0.0 };
                return Some(y0 + t * (y1 - y0));
            }
        }
        Some(pts[pts.len() - 1].1)
    }
}

/// One reproduced figure.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Identifier, e.g. `"fig5"`.
    pub id: String,
    /// Paper caption, abbreviated.
    pub title: String,
    /// X axis label.
    pub x_label: String,
    /// Y axis label.
    pub y_label: String,
    /// X axis is logarithmic in the paper.
    pub log_x: bool,
    /// The curves.
    pub series: Vec<Series>,
    /// Reproduction notes (parameters, substitutions).
    pub notes: Vec<String>,
}

impl Serialize for Figure {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("id".into(), self.id.to_value()),
            ("title".into(), self.title.to_value()),
            ("x_label".into(), self.x_label.to_value()),
            ("y_label".into(), self.y_label.to_value()),
            ("log_x".into(), self.log_x.to_value()),
            ("series".into(), self.series.to_value()),
            ("notes".into(), self.notes.to_value()),
        ])
    }
}

impl Figure {
    /// Find a series by its label.
    pub fn series_named(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Render as an aligned text table (x column + one column per series).
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        for n in &self.notes {
            let _ = writeln!(out, "#   {n}");
        }
        let _ = write!(out, "{:>14}", self.x_label);
        for s in &self.series {
            let _ = write!(out, "{:>22}", s.label);
        }
        let _ = writeln!(out);
        // Union of x values across series, sorted.
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .collect();
        xs.sort_by(|a, b| a.total_cmp(b));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        for x in xs {
            let _ = write!(out, "{x:>14.6}");
            for s in &self.series {
                match s.points.iter().find(|p| (p.0 - x).abs() < 1e-12) {
                    Some(&(_, y)) => {
                        let _ = write!(out, "{y:>22.4}");
                    }
                    None => {
                        let _ = write!(out, "{:>22}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Render as CSV (long format: series,x,y).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,x,y\n");
        for s in &self.series {
            for &(x, y) in &s.points {
                out.push_str(&format!("{},{x},{y}\n", s.label.replace(',', ";")));
            }
        }
        out
    }

    /// Serialize to pretty JSON.
    ///
    /// # Panics
    /// Never (the structure contains only serializable primitives).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("figure serializes")
    }
}

/// Receiver-count grid `10^0 .. 10^max_exp10`, a few points per decade —
/// the x-axis of most analytical figures.
pub fn receiver_grid(quality: Quality) -> Vec<u64> {
    let max_exp = match quality {
        Quality::Quick => 3,
        Quality::Full => 6,
    };
    let mut out = Vec::new();
    for e in 0..=max_exp {
        let base = 10u64.pow(e);
        out.push(base);
        if e < max_exp {
            out.push(base * 3); // ~half-decade point
        }
    }
    out
}

/// Power-of-two receiver grid for tree simulations (`R = 2^d`).
pub fn pow2_grid(quality: Quality) -> Vec<u64> {
    let max_d = match quality {
        Quality::Quick => 6,
        Quality::Full => 14,
    };
    (0..=max_d).map(|d| 1u64 << d).collect()
}

/// Simulation trial budget.
pub fn sim_trials(quality: Quality) -> usize {
    match quality {
        Quality::Quick => 120,
        Quality::Full => 3000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Figure {
        Figure {
            id: "figX".into(),
            title: "demo".into(),
            x_label: "R".into(),
            y_label: "E[M]".into(),
            log_x: true,
            series: vec![
                Series::new("a", vec![(1.0, 1.0), (10.0, 2.0)]),
                Series::new("b", vec![(1.0, 3.0)]),
            ],
            notes: vec!["note".into()],
        }
    }

    #[test]
    fn table_includes_all_series_and_gaps() {
        let t = demo().to_table();
        assert!(t.contains("figX"));
        assert!(t.contains('a') && t.contains('b'));
        assert!(t.contains('-'), "missing y rendered as dash");
    }

    #[test]
    fn csv_long_format() {
        let c = demo().to_csv();
        assert!(c.starts_with("series,x,y\n"));
        assert_eq!(c.lines().count(), 1 + 3);
    }

    #[test]
    fn json_roundtrips_through_serde() {
        let j = demo().to_json();
        let v: serde_json::Value = serde_json::from_str(&j).unwrap();
        assert_eq!(v["id"], "figX");
        assert_eq!(v["series"][0]["points"][1][1], 2.0);
    }

    #[test]
    fn interpolation() {
        let s = Series::new("s", vec![(1.0, 1.0), (3.0, 3.0)]);
        assert_eq!(s.y_at(2.0), Some(2.0));
        assert_eq!(s.y_at(0.0), Some(1.0));
        assert_eq!(s.y_at(9.0), Some(3.0));
        assert_eq!(s.last_y(), Some(3.0));
        assert_eq!(Series::new("e", vec![]).y_at(1.0), None);
    }

    #[test]
    fn grids() {
        assert_eq!(receiver_grid(Quality::Quick).first(), Some(&1));
        assert_eq!(*receiver_grid(Quality::Full).last().unwrap(), 1_000_000);
        assert_eq!(*pow2_grid(Quality::Quick).last().unwrap(), 64);
        assert!(sim_trials(Quality::Full) > sim_trials(Quality::Quick));
    }
}
