//! Figure 15 — burst loss vs layered FEC: no-FEC against layered `7+1`
//! and `7+3`, `p = 0.01`, mean burst `b = 2`, simulated.

use pm_sim::runner::{run_env, LossEnv, Scheme};
use pm_sim::SimConfig;

use crate::common::{sim_trials, Figure, Quality, Series};

const P: f64 = 0.01;
const B: f64 = 2.0;

fn burst_grid(quality: Quality) -> Vec<u64> {
    match quality {
        Quality::Quick => vec![1, 4, 16, 64],
        Quality::Full => vec![1, 4, 16, 64, 256, 1024, 4096],
    }
}

/// Shared generator for the burst-loss figures.
pub fn burst_figure(id: &str, title: &str, schemes: &[Scheme], quality: Quality) -> Figure {
    let cfg = SimConfig::paper_timing(sim_trials(quality));
    let env = LossEnv::Burst {
        p: P,
        mean_burst: B,
    };
    let grid = burst_grid(quality);
    let series = schemes
        .iter()
        .map(|&s| {
            let pts: Vec<(f64, f64)> = grid
                .iter()
                .map(|&r| {
                    let res = run_env(&cfg, s, env, r as usize, 0xB0B ^ r);
                    (r as f64, res.mean_transmissions)
                })
                .collect();
            Series::new(s.label(), pts)
        })
        .collect();
    Figure {
        id: id.into(),
        title: title.into(),
        x_label: "receivers R".into(),
        y_label: "transmissions E[M]".into(),
        log_x: true,
        series,
        notes: vec![format!(
            "simulated; two-state Markov loss, p = {P}, b = {B}, delta = 40ms, T = 300ms"
        )],
    }
}

/// Generate Figure 15.
pub fn generate(quality: Quality) -> Figure {
    burst_figure(
        "fig15",
        "burst loss and layered FEC",
        &[
            Scheme::NoFec,
            Scheme::Layered { k: 7, h: 1 },
            Scheme::Layered { k: 7, h: 3 },
        ],
        quality,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layered_loses_to_nofec_under_bursts() {
        // The paper's headline negative result: with bursts of mean 2,
        // layered FEC at k = 7 is WORSE than plain ARQ.
        let fig = generate(Quality::Quick);
        let no_fec = fig.series_named("no-FEC").unwrap().last_y().unwrap();
        let l1 = fig.series_named("layered(7+1)").unwrap().last_y().unwrap();
        assert!(
            l1 > no_fec,
            "burst loss should make layered(7+1) ({l1}) worse than no-FEC ({no_fec})"
        );
    }
}
