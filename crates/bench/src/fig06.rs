//! Figure 6 — integrated FEC with finite parity budgets: `(7,8)`, `(7,9)`,
//! `(7,10)` and `(7, inf)`, `p = 0.01`.

use pm_analysis::{integrated, nofec, Population};

use crate::common::{receiver_grid, Figure, Quality, Series};

const P: f64 = 0.01;
const K: usize = 7;

/// Generate Figure 6.
pub fn generate(quality: Quality) -> Figure {
    let grid = receiver_grid(quality);
    let mut series = vec![Series::new(
        "non-FEC",
        grid.iter()
            .map(|&r| {
                (
                    r as f64,
                    nofec::expected_transmissions(&Population::homogeneous(P, r)),
                )
            })
            .collect(),
    )];
    for h in [1usize, 2, 3] {
        let n = K + h;
        series.push(Series::new(
            format!("({K},{n})"),
            grid.iter()
                .map(|&r| {
                    (
                        r as f64,
                        integrated::finite(K, h, 0, &Population::homogeneous(P, r)),
                    )
                })
                .collect(),
        ));
    }
    series.push(Series::new(
        format!("({K},inf)"),
        grid.iter()
            .map(|&r| {
                (
                    r as f64,
                    integrated::lower_bound(K, 0, &Population::homogeneous(P, r)),
                )
            })
            .collect(),
    ));
    Figure {
        id: "fig6".into(),
        title: format!("integrated FEC, k = {K}, finite parity budgets, p = {P}"),
        x_label: "receivers R".into(),
        y_label: "transmissions E[M]".into(),
        log_x: true,
        series,
        notes: vec!["paper: 3 parities attain the bound for R up to 100k-200k".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_parities_reach_the_bound_mid_range() {
        let fig = generate(Quality::Full);
        let h3 = fig.series_named("(7,10)").unwrap();
        let bound = fig.series_named("(7,inf)").unwrap();
        for x in [100.0f64, 10_000.0] {
            let a = h3.y_at(x).unwrap();
            let b = bound.y_at(x).unwrap();
            assert!((a - b) / b < 0.02, "at R={x}: (7,10)={a} bound={b}");
        }
        // ... and visibly peel away by R = 1e6.
        let a = h3.last_y().unwrap();
        let b = bound.last_y().unwrap();
        assert!(
            a > b * 1.05,
            "at 1e6 the budgeted curve must diverge: {a} vs {b}"
        );
    }

    #[test]
    fn all_budgets_beat_nofec_at_scale() {
        let fig = generate(Quality::Full);
        let n = fig.series_named("non-FEC").unwrap().last_y().unwrap();
        for label in ["(7,8)", "(7,9)", "(7,10)", "(7,inf)"] {
            let v = fig.series_named(label).unwrap().last_y().unwrap();
            assert!(v < n, "{label}={v} vs non-FEC={n}");
        }
    }
}
