//! Figure 12 — integrated FEC (`k = 7`) vs non-FEC under independent and
//! FBT shared loss, simulated.

use pm_sim::runner::Scheme;

use crate::common::{Figure, Quality};
use crate::fig11::shared_loss_figure;

/// Generate Figure 12.
pub fn generate(quality: Quality) -> Figure {
    shared_loss_figure(
        "fig12",
        "integrated FEC vs non-FEC under independent and FBT shared loss",
        Scheme::Integrated2 { k: 7 },
        quality,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrated_benefit_remains_substantial_but_smaller_when_shared() {
        let fig = generate(Quality::Quick);
        let at_edge = |label: &str| fig.series_named(label).unwrap().last_y().unwrap();
        let arq_i = at_edge("non-FEC, indep. loss");
        let arq_s = at_edge("non-FEC, FBT loss");
        let fec_i = at_edge("FEC, indep. loss");
        let fec_s = at_edge("FEC, FBT loss");
        // FEC wins in both environments...
        assert!(fec_i < arq_i, "{fec_i} vs {arq_i}");
        assert!(fec_s < arq_s, "{fec_s} vs {arq_s}");
        // ...but the absolute saving shrinks under shared loss.
        assert!(
            (arq_s - fec_s) < (arq_i - fec_i) + 0.05,
            "saving shared {} vs indep {}",
            arq_s - fec_s,
            arq_i - fec_i
        );
    }
}
