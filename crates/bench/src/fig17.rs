//! Figure 17 — sender/receiver processing rates for protocols N2 and NP,
//! `k = 20`, `p = 0.01`, the paper's DECstation cost table.

use pm_analysis::endhost::{n2_rates, np_rates, NpOptions};
use pm_analysis::CostModel;

use crate::common::{receiver_grid, Figure, Quality, Series};

const P: f64 = 0.01;
const K: usize = 20;

/// Generate Figure 17.
pub fn generate(quality: Quality) -> Figure {
    let grid = receiver_grid(quality);
    let cost = CostModel::paper_defaults();
    let mut n2_s = Vec::new();
    let mut n2_r = Vec::new();
    let mut np_s = Vec::new();
    let mut np_r = Vec::new();
    for &r in &grid {
        let n2 = n2_rates(P, r, &cost);
        let np = np_rates(K, P, r, &cost, NpOptions::default());
        // pkts/msec like the paper's y axis.
        n2_s.push((r as f64, n2.sender / 1e3));
        n2_r.push((r as f64, n2.receiver / 1e3));
        np_s.push((r as f64, np.sender / 1e3));
        np_r.push((r as f64, np.receiver / 1e3));
    }
    Figure {
        id: "fig17".into(),
        title: format!("processing rates, N2 vs NP, k = {K}, p = {P}"),
        x_label: "receivers R".into(),
        y_label: "processing rate [pkts/msec]".into(),
        log_x: true,
        series: vec![
            Series::new("N2 sender", n2_s),
            Series::new("N2 receiver", n2_r),
            Series::new("NP sender", np_s),
            Series::new("NP receiver", np_r),
        ],
        notes: vec!["Eqs. (10)-(16); paper cost constants (2KB pkts, DECstation 5000/200)".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape() {
        let fig = generate(Quality::Full);
        let at_edge = |l: &str| fig.series_named(l).unwrap().last_y().unwrap();
        // N2 sender and receiver curves nearly coincide.
        let (n2s, n2r) = (at_edge("N2 sender"), at_edge("N2 receiver"));
        assert!((n2s - n2r).abs() / n2s < 0.12, "{n2s} vs {n2r}");
        // NP: sender is the bottleneck (encoding), receiver much faster.
        let (nps, npr) = (at_edge("NP sender"), at_edge("NP receiver"));
        assert!(nps < npr, "NP sender {nps} must be below receiver {npr}");
        // All rates decrease with R.
        for s in &fig.series {
            assert!(
                s.points[0].1 >= s.last_y().unwrap(),
                "{} should decrease",
                s.label
            );
        }
        // Magnitudes in the paper's 0..1.1 pkts/msec window.
        for s in &fig.series {
            for &(_, y) in &s.points {
                assert!((0.01..=1.3).contains(&y), "{}: {y}", s.label);
            }
        }
    }
}
