#![forbid(unsafe_code)]
//! Regenerate the paper's figures.
//!
//! ```sh
//! # every figure at paper-scale grids (takes a few minutes):
//! cargo run --release -p pm-bench --bin figures -- all
//! # one figure, quick grids, with CSV/JSON dumped next to the tables:
//! cargo run --release -p pm-bench --bin figures -- fig5 --quick --out figures-out
//! ```
//!
//! Each figure prints as an aligned table (the paper's series as columns)
//! and, with `--out DIR`, is also written as `DIR/<id>.csv` and
//! `DIR/<id>.json`.

use std::io::Write as _;

use pm_bench::{all_figures, extension_figures, Figure, Quality};

struct Args {
    targets: Vec<String>,
    quality: Quality,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        targets: Vec::new(),
        quality: Quality::Full,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quality = Quality::Quick,
            "--out" => args.out = Some(it.next().expect("--out takes a directory")),
            "--help" | "-h" => {
                eprintln!("usage: figures [all|ext|fig1|...|fig18|extA|...|extE]... [--quick] [--out DIR]");
                std::process::exit(0);
            }
            other => args.targets.push(other.to_string()),
        }
    }
    if args.targets.is_empty() {
        args.targets.push("all".into());
    }
    args
}

fn emit(fig: &Figure, out: &Option<String>) {
    println!("{}", fig.to_table());
    if let Some(dir) = out {
        std::fs::create_dir_all(dir).expect("create output directory");
        let csv_path = format!("{dir}/{}.csv", fig.id);
        std::fs::File::create(&csv_path)
            .and_then(|mut f| f.write_all(fig.to_csv().as_bytes()))
            .expect("write CSV");
        let json_path = format!("{dir}/{}.json", fig.id);
        std::fs::File::create(&json_path)
            .and_then(|mut f| f.write_all(fig.to_json().as_bytes()))
            .expect("write JSON");
        eprintln!("wrote {csv_path} and {json_path}");
    }
}

fn main() {
    let args = parse_args();
    let mut registry = all_figures();
    registry.extend(extension_figures());
    let run_all = args.targets.iter().any(|t| t == "all");
    let run_ext = args.targets.iter().any(|t| t == "ext");
    let mut matched = 0;
    for (id, generate) in &registry {
        let is_ext = id.starts_with("ext");
        let selected =
            args.targets.iter().any(|t| t == id) || (run_all && !is_ext) || (run_ext && is_ext);
        if selected {
            let start = std::time::Instant::now();
            let fig = generate(args.quality);
            emit(&fig, &args.out);
            eprintln!("{id} generated in {:.2}s", start.elapsed().as_secs_f64());
            matched += 1;
        }
    }
    if matched == 0 {
        eprintln!(
            "no figure matched {:?}; known: {:?}",
            args.targets,
            registry.iter().map(|(id, _)| *id).collect::<Vec<_>>()
        );
        std::process::exit(1);
    }
}
