//! Figure 18 — achievable end-system throughput: N2 vs NP vs NP with
//! pre-encoding, `k = 20`, `p = 0.01`.

use pm_analysis::endhost::{n2_rates, np_rates, NpOptions};
use pm_analysis::CostModel;

use crate::common::{receiver_grid, Figure, Quality, Series};

const P: f64 = 0.01;
const K: usize = 20;

/// Generate Figure 18.
pub fn generate(quality: Quality) -> Figure {
    let grid = receiver_grid(quality);
    let cost = CostModel::paper_defaults();
    let series = vec![
        Series::new(
            "N2",
            grid.iter()
                .map(|&r| (r as f64, n2_rates(P, r, &cost).throughput() / 1e3))
                .collect(),
        ),
        Series::new(
            "NP",
            grid.iter()
                .map(|&r| {
                    (
                        r as f64,
                        np_rates(K, P, r, &cost, NpOptions::default()).throughput() / 1e3,
                    )
                })
                .collect(),
        ),
        Series::new(
            "NP pre-encode",
            grid.iter()
                .map(|&r| {
                    let opts = NpOptions {
                        preencode: true,
                        ..Default::default()
                    };
                    (r as f64, np_rates(K, P, r, &cost, opts).throughput() / 1e3)
                })
                .collect(),
        ),
    ];
    Figure {
        id: "fig18".into(),
        title: format!("throughput, N2 vs NP (with/without pre-encoding), k = {K}, p = {P}"),
        x_label: "receivers R".into(),
        y_label: "throughput [pkts/msec]".into(),
        log_x: true,
        series,
        notes: vec!["Eq. (9)/(12) over the Eqs. (10)-(16) rates".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preencoding_wins_by_about_3x_at_scale() {
        let fig = generate(Quality::Full);
        let n2 = fig.series_named("N2").unwrap().last_y().unwrap();
        let np = fig.series_named("NP").unwrap().last_y().unwrap();
        let pre = fig.series_named("NP pre-encode").unwrap().last_y().unwrap();
        assert!(pre > np, "pre-encode {pre} must beat online {np}");
        assert!(pre > n2, "pre-encode {pre} must beat N2 {n2}");
        let gain = pre / n2;
        assert!(
            (2.0..4.5).contains(&gain),
            "expected ~3x at R=1e6, got {gain}"
        );
    }

    #[test]
    fn online_np_encoding_bound() {
        // Without pre-encoding the NP sender pays k*c_e per parity; at
        // small R (few retransmissions) NP still lands in the same band as
        // N2 rather than collapsing.
        let fig = generate(Quality::Full);
        let np = fig.series_named("NP").unwrap().points[0].1;
        let n2 = fig.series_named("N2").unwrap().points[0].1;
        assert!(np > 0.5 * n2, "NP at R=1: {np} vs N2 {n2}");
    }
}
