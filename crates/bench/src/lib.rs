#![forbid(unsafe_code)]
//! Figure-regeneration harness.
//!
//! One module per measured figure of the paper; each builds a [`Figure`]
//! — labelled series of `(x, y)` points — from the same machinery a
//! downstream user would call (`pm-analysis` for the closed forms,
//! `pm-sim` for the simulated scenarios, `pm-rse` timed in-process for the
//! codec rates). The `figures` binary prints them as aligned tables and
//! dumps JSON/CSV for plotting.
//!
//! Figures 2 and 13 of the paper are architecture/timing diagrams (nothing
//! to measure); all others are covered:
//!
//! | module | paper figure |
//! |---|---|
//! | [`fig01`] | coding/decoding rate vs redundancy |
//! | [`fig03`], [`fig04`] | layered FEC vs no-FEC, h = 2 / h = 7 |
//! | [`fig05`], [`fig06`] | layered vs integrated; finite parity budgets |
//! | [`fig07`], [`fig08`] | integrated vs R; integrated vs p |
//! | [`fig09`], [`fig10`] | heterogeneous populations, no-FEC / integrated |
//! | [`fig11`], [`fig12`] | shared (FBT) loss vs independent, simulated |
//! | [`fig14`] | burst-length distribution |
//! | [`fig15`], [`fig16`] | burst loss: layered; integrated 1 vs 2 |
//! | [`fig17`], [`fig18`] | N2/NP processing rates and throughput |

pub mod common;
pub mod ext;
pub mod fig01;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;

pub use common::{Figure, Quality, Series};
pub use ext::extension_figures;

/// A figure generator: quality knob in, figure out.
pub type FigureFn = fn(Quality) -> Figure;

/// Every figure generator, in paper order: `(id, generate)`.
pub fn all_figures() -> Vec<(&'static str, FigureFn)> {
    vec![
        ("fig1", fig01::generate as FigureFn),
        ("fig3", fig03::generate),
        ("fig4", fig04::generate),
        ("fig5", fig05::generate),
        ("fig6", fig06::generate),
        ("fig7", fig07::generate),
        ("fig8", fig08::generate),
        ("fig9", fig09::generate),
        ("fig10", fig10::generate),
        ("fig11", fig11::generate),
        ("fig12", fig12::generate),
        ("fig14", fig14::generate),
        ("fig15", fig15::generate),
        ("fig16", fig16::generate),
        ("fig17", fig17::generate),
        ("fig18", fig18::generate),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let figs = all_figures();
        assert_eq!(figs.len(), 16);
        let mut ids: Vec<_> = figs.iter().map(|(id, _)| *id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 16);
    }

    /// Smoke-run every figure at Quick quality: non-empty series, finite
    /// values. (The real shape checks live in each module's tests and in
    /// the integration suite.)
    #[test]
    fn all_figures_generate_quick() {
        for (id, f) in all_figures() {
            let fig = f(Quality::Quick);
            assert!(!fig.series.is_empty(), "{id} has no series");
            for s in &fig.series {
                assert!(!s.points.is_empty(), "{id}/{} empty", s.label);
                for &(x, y) in &s.points {
                    assert!(
                        x.is_finite() && y.is_finite(),
                        "{id}/{}: ({x},{y})",
                        s.label
                    );
                }
            }
        }
    }
}
