//! Figure 1 — coding and decoding rates [packets/s] vs redundancy `h/k`.
//!
//! The paper measured Rizzo's coder on a Pentium 133 with 1 KB packets.
//! We *measure our own codec* the same way (wall-clock encode/decode of
//! 1 KB-packet groups) — absolute rates reflect this machine, but the
//! figure's law, rate inversely proportional to `h * k`, is
//! hardware-independent and is what the shape check asserts.

use std::time::Instant;

use pm_rse::{CodeSpec, RseDecoder, RseEncoder};

use crate::common::{Figure, Quality, Series};

/// Packet size of the paper's measurement.
const PACKET: usize = 1024;

fn group(k: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| {
            (0..PACKET)
                .map(|b| ((i * 31 + b * 7) % 256) as u8)
                .collect()
        })
        .collect()
}

/// Measure encode rate in *data packets per second* while producing `h`
/// parities per group of `k`.
pub fn measure_encode_rate(k: usize, h: usize, min_groups: usize) -> f64 {
    let spec = CodeSpec::new(k, h).expect("valid spec");
    let enc = RseEncoder::new(spec).expect("encoder");
    let data = group(k);
    // Warm up tables.
    let _ = enc.encode_all(&data).unwrap();
    let start = Instant::now();
    let mut groups = 0usize;
    while groups < min_groups || start.elapsed().as_millis() < 30 {
        std::hint::black_box(enc.encode_all(std::hint::black_box(&data)).unwrap());
        groups += 1;
    }
    (groups * k) as f64 / start.elapsed().as_secs_f64()
}

/// Measure decode rate in data packets per second given `h` of each group
/// of `k` are lost and reconstructed from parities.
pub fn measure_decode_rate(k: usize, h: usize, min_groups: usize) -> f64 {
    let spec = CodeSpec::new(k, h).expect("valid spec");
    let enc = RseEncoder::new(spec).expect("encoder");
    let dec = RseDecoder::from_encoder(&enc);
    let data = group(k);
    let parities = enc.encode_all(&data).unwrap();
    // Lose the first h data packets; decode from the rest + all parities.
    let shares: Vec<(usize, &[u8])> = data
        .iter()
        .enumerate()
        .skip(h)
        .map(|(i, d)| (i, d.as_slice()))
        .chain(
            parities
                .iter()
                .enumerate()
                .map(|(j, p)| (k + j, p.as_slice())),
        )
        .collect();
    let _ = dec.decode(&shares).unwrap();
    let start = Instant::now();
    let mut groups = 0usize;
    while groups < min_groups || start.elapsed().as_millis() < 30 {
        std::hint::black_box(dec.decode(std::hint::black_box(&shares)).unwrap());
        groups += 1;
    }
    (groups * k) as f64 / start.elapsed().as_secs_f64()
}

/// Generate Figure 1.
pub fn generate(quality: Quality) -> Figure {
    let min_groups = match quality {
        Quality::Quick => 2,
        Quality::Full => 20,
    };
    let ks = [7usize, 20, 100];
    let redundancies = [0.1f64, 0.2, 0.4, 0.6, 0.8, 1.0];
    let mut series = Vec::new();
    for &k in &ks {
        let mut enc_pts = Vec::new();
        let mut dec_pts = Vec::new();
        for &rho in &redundancies {
            let h = ((rho * k as f64).round() as usize).max(1);
            if k + h > 255 {
                continue;
            }
            let x = 100.0 * h as f64 / k as f64; // percent, like the paper
            enc_pts.push((x, measure_encode_rate(k, h, min_groups)));
            dec_pts.push((x, measure_decode_rate(k, h, min_groups)));
        }
        series.push(Series::new(format!("encode k={k}"), enc_pts));
        series.push(Series::new(format!("decode k={k}"), dec_pts));
    }
    Figure {
        id: "fig1".into(),
        title: "RSE coding/decoding rate vs redundancy (measured on this machine)".into(),
        x_label: "redundancy %".into(),
        y_label: "rate [packets/s]".into(),
        log_x: false,
        series,
        notes: vec![
            format!("packet size {PACKET} bytes, GF(2^8), systematic Vandermonde codec"),
            "paper hardware: Pentium 133; shape check: rate ∝ 1/(h·k)".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_inverse_in_h() {
        // Doubling h should roughly halve the encode rate (the Fig. 1 law).
        let r1 = measure_encode_rate(7, 1, 5);
        let r4 = measure_encode_rate(7, 4, 5);
        let ratio = r1 / r4;
        assert!(
            (2.0..8.0).contains(&ratio),
            "expected ~4x, got {ratio} ({r1} vs {r4})"
        );
    }

    #[test]
    fn rate_decreases_with_k_at_fixed_redundancy() {
        // 50% redundancy: k=20/h=10 does ~2.8x the per-packet work of
        // k=7/h=4 (h scales with k).
        let r7 = measure_encode_rate(7, 4, 5);
        let r20 = measure_encode_rate(20, 10, 5);
        assert!(r7 > r20, "k=7 rate {r7} should exceed k=20 rate {r20}");
    }

    #[test]
    fn decode_within_factor_of_encode() {
        // The paper's decode points sit near the encode points.
        let e = measure_encode_rate(7, 2, 5);
        let d = measure_decode_rate(7, 2, 5);
        let ratio = e / d;
        assert!((0.2..5.0).contains(&ratio), "encode {e} vs decode {d}");
    }
}
