//! Figure 9 — heterogeneous populations without FEC: 0/1/5/25% high-loss
//! receivers (`p = 0.25`) among `p = 0.01` receivers.

use pm_analysis::{nofec, Population};

use crate::common::{receiver_grid, Figure, Quality, Series};

/// The paper's two-class parameters.
pub const P_LOW: f64 = 0.01;
/// High-loss class probability.
pub const P_HIGH: f64 = 0.25;
/// High-loss fractions plotted.
pub const ALPHAS: [f64; 4] = [0.0, 0.01, 0.05, 0.25];

/// Shared generator for Figs. 9/10.
pub fn hetero_figure(
    id: &str,
    title: &str,
    quality: Quality,
    eval: impl Fn(&Population) -> f64,
) -> Figure {
    let grid = receiver_grid(quality);
    let mut series = Vec::new();
    for &alpha in &ALPHAS {
        let pts: Vec<(f64, f64)> = grid
            .iter()
            .map(|&r| {
                (
                    r as f64,
                    eval(&Population::two_class(r, alpha, P_LOW, P_HIGH)),
                )
            })
            .collect();
        series.push(Series::new(
            format!("high loss: {}%", (alpha * 100.0) as u32),
            pts,
        ));
    }
    Figure {
        id: id.into(),
        title: title.into(),
        x_label: "receivers R".into(),
        y_label: "transmissions E[M]".into(),
        log_x: true,
        series,
        notes: vec![format!(
            "two classes: p = {P_LOW} and p = {P_HIGH} (Eq. 7/8)"
        )],
    }
}

/// Generate Figure 9.
pub fn generate(quality: Quality) -> Figure {
    hetero_figure("fig9", "heterogeneous receivers, no FEC", quality, |pop| {
        nofec::expected_transmissions(pop)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_percent_roughly_doubles_at_a_million() {
        let fig = generate(Quality::Full);
        let clean = fig.series_named("high loss: 0%").unwrap().last_y().unwrap();
        let one = fig.series_named("high loss: 1%").unwrap().last_y().unwrap();
        let ratio = one / clean;
        assert!((1.5..2.6).contains(&ratio), "ratio at R=1e6: {ratio}");
    }

    #[test]
    fn degradation_ordered_by_alpha() {
        let fig = generate(Quality::Quick);
        let edge: Vec<f64> = fig.series.iter().map(|s| s.last_y().unwrap()).collect();
        for w in edge.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-9,
                "more high-loss receivers must cost more: {edge:?}"
            );
        }
    }

    #[test]
    fn single_high_loss_receiver_in_100_is_mild() {
        let fig = generate(Quality::Full);
        let clean = fig
            .series_named("high loss: 0%")
            .unwrap()
            .y_at(100.0)
            .unwrap();
        let one = fig
            .series_named("high loss: 1%")
            .unwrap()
            .y_at(100.0)
            .unwrap();
        assert!(one / clean < 1.5, "at R=100: {one} vs {clean}");
    }
}
