//! Figure 4 — no-FEC vs layered FEC with `h = 7` parities, `k = 7, 20,
//! 100`, `p = 0.01`.

use crate::common::{Figure, Quality};
use crate::fig03::layered_figure;

/// Generate Figure 4.
pub fn generate(quality: Quality) -> Figure {
    layered_figure("fig4", 7, quality)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape_h7() {
        let fig = generate(Quality::Full);
        // With 7 parities, k = 100 becomes the best choice for mid-size
        // populations (the paper: "1 - 200,000 range").
        let k7 = fig.series_named("layered FEC, k = 7").unwrap();
        let k20 = fig.series_named("layered FEC, k = 20").unwrap();
        let k100 = fig.series_named("layered FEC, k = 100").unwrap();
        for x in [100.0f64, 10_000.0, 100_000.0] {
            let (a, b, c) = (
                k100.y_at(x).unwrap(),
                k20.y_at(x).unwrap(),
                k7.y_at(x).unwrap(),
            );
            assert!(a < b && b < c, "at R={x}: k100={a} k20={b} k7={c}");
        }
    }

    #[test]
    fn more_parities_help_at_paper_scale() {
        // At R = 10^6 the h = 2 curves for k >= 20 are retransmission-
        // bound, so the h = 7 overhead pays for itself. (At R <= 1000 it
        // does not — extra parities are then pure expansion-factor cost.)
        let f3 = crate::fig03::generate(Quality::Full);
        let f4 = generate(Quality::Full);
        for k in [20, 100] {
            let label = format!("layered FEC, k = {k}");
            let h2 = f3.series_named(&label).unwrap().last_y().unwrap();
            let h7 = f4.series_named(&label).unwrap().last_y().unwrap();
            assert!(h7 < h2, "k={k}: h7={h7} h2={h2}");
        }
        let label = "layered FEC, k = 20";
        let h2_small = f3.series_named(label).unwrap().y_at(1000.0).unwrap();
        let h7_small = f4.series_named(label).unwrap().y_at(1000.0).unwrap();
        assert!(h7_small > h2_small, "at R=1e3 extra parities are overhead");
    }
}
