//! Figure 10 — heterogeneous populations with integrated FEC (`k = 7`).

use pm_analysis::integrated;

use crate::common::{Figure, Quality};
use crate::fig09::hetero_figure;

const K: usize = 7;

/// Generate Figure 10.
pub fn generate(quality: Quality) -> Figure {
    hetero_figure(
        "fig10",
        "heterogeneous receivers, integrated FEC (k = 7)",
        quality,
        |pop| integrated::lower_bound(K, 0, pop),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_loss_receivers_dominate_here_too() {
        let fig = generate(Quality::Full);
        let clean = fig.series_named("high loss: 0%").unwrap().last_y().unwrap();
        let one = fig.series_named("high loss: 1%").unwrap().last_y().unwrap();
        assert!((1.4..2.7).contains(&(one / clean)), "{one} / {clean}");
    }

    #[test]
    fn integrated_still_beats_nofec_per_class() {
        let f9 = crate::fig09::generate(Quality::Quick);
        let f10 = generate(Quality::Quick);
        for label in ["high loss: 0%", "high loss: 25%"] {
            let arq = f9.series_named(label).unwrap().last_y().unwrap();
            let fec = f10.series_named(label).unwrap().last_y().unwrap();
            assert!(fec < arq, "{label}: integrated {fec} vs no-FEC {arq}");
        }
    }

    #[test]
    fn high_loss_impact_substantial_under_fec() {
        // Paper: high-loss receivers have "a greater effect in the case of
        // integrated FEC than no FEC". In *relative* terms our evaluation
        // finds the opposite at alpha = 25% (no-FEC degrades 2.7x vs FEC's
        // 2.1x at R = 1e6) because ARQ's baseline grows with log R while
        // the FEC baseline stays near (k + E[L])/k; we read the paper's
        // remark as "FEC's hard-won savings are disproportionately eaten"
        // — which both hold: the degradation is substantial for FEC too,
        // and FEC's *absolute advantage* over no-FEC shrinks as alpha
        // grows. Both facts are pinned here; the nuance is recorded in
        // EXPERIMENTS.md.
        let f9 = crate::fig09::generate(Quality::Full);
        let f10 = generate(Quality::Full);
        let rel = |fig: &crate::Figure| {
            fig.series_named("high loss: 25%")
                .unwrap()
                .last_y()
                .unwrap()
                / fig.series_named("high loss: 0%").unwrap().last_y().unwrap()
        };
        assert!(
            rel(&f10) > 1.8,
            "FEC degradation must be substantial: {}",
            rel(&f10)
        );
        let advantage = |alpha: &str| {
            f9.series_named(alpha).unwrap().last_y().unwrap()
                - f10.series_named(alpha).unwrap().last_y().unwrap()
        };
        let adv_rel = |alpha: &str| {
            f9.series_named(alpha).unwrap().last_y().unwrap()
                / f10.series_named(alpha).unwrap().last_y().unwrap()
        };
        // Parity repair is most efficient exactly when repairs dominate:
        // FEC's relative advantage over ARQ *grows* with the high-loss
        // fraction, and its absolute saving stays positive throughout.
        assert!(
            adv_rel("high loss: 25%") > adv_rel("high loss: 0%"),
            "rel advantage {} vs {}",
            adv_rel("high loss: 25%"),
            adv_rel("high loss: 0%")
        );
        assert!(advantage("high loss: 0%") > 0.0 && advantage("high loss: 25%") > 0.0);
    }
}
