//! Figure 11 — layered FEC (`k = 7`, `h = 1`) and no-FEC under
//! independent vs shared full-binary-tree loss, simulated for `R = 2^d`.

use pm_sim::runner::{run_env, LossEnv, Scheme};
use pm_sim::SimConfig;

use crate::common::{pow2_grid, sim_trials, Figure, Quality, Series};

const P: f64 = 0.01;

/// Shared generator for Figs. 11/12 (they differ in the FEC scheme).
pub fn shared_loss_figure(id: &str, title: &str, fec: Scheme, quality: Quality) -> Figure {
    let cfg = SimConfig::paper_timing(sim_trials(quality));
    let grid = pow2_grid(quality);
    let runs = [
        (
            "non-FEC, indep. loss",
            Scheme::NoFec,
            LossEnv::Independent { p: P },
        ),
        (
            "non-FEC, FBT loss",
            Scheme::NoFec,
            LossEnv::FullBinaryTree { p: P },
        ),
        ("FEC, indep. loss", fec, LossEnv::Independent { p: P }),
        ("FEC, FBT loss", fec, LossEnv::FullBinaryTree { p: P }),
    ];
    let series = runs
        .iter()
        .map(|(label, scheme, env)| {
            let pts: Vec<(f64, f64)> = grid
                .iter()
                .map(|&r| {
                    let res = run_env(&cfg, *scheme, *env, r as usize, 0x51AB ^ r);
                    (r as f64, res.mean_transmissions)
                })
                .collect();
            Series::new(*label, pts)
        })
        .collect();
    Figure {
        id: id.into(),
        title: title.into(),
        x_label: "receivers R".into(),
        y_label: "transmissions E[M]".into(),
        log_x: true,
        series,
        notes: vec![
            format!("simulated, p = {P}; FBT: p_node = 1-(1-p)^(1/(d+1)), R = 2^d"),
            format!("FEC scheme: {}", fec.label()),
        ],
    }
}

/// Generate Figure 11.
pub fn generate(quality: Quality) -> Figure {
    shared_loss_figure(
        "fig11",
        "layered FEC vs non-FEC under independent and FBT shared loss",
        Scheme::Layered { k: 7, h: 1 },
        quality,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_loss_lowers_transmissions() {
        let fig = generate(Quality::Quick);
        let indep = fig
            .series_named("non-FEC, indep. loss")
            .unwrap()
            .last_y()
            .unwrap();
        let shared = fig
            .series_named("non-FEC, FBT loss")
            .unwrap()
            .last_y()
            .unwrap();
        assert!(shared < indep, "shared {shared} vs indep {indep}");
        let fec_i = fig
            .series_named("FEC, indep. loss")
            .unwrap()
            .last_y()
            .unwrap();
        let fec_s = fig.series_named("FEC, FBT loss").unwrap().last_y().unwrap();
        assert!(fec_s <= fec_i + 0.05, "FEC shared {fec_s} vs indep {fec_i}");
    }

    #[test]
    fn layered_crossover_later_under_shared_loss() {
        // Layered beats no-FEC for R > ~20 under independent loss but only
        // for R > ~60 under shared loss; check the ordering flips in the
        // right direction at a mid-size R.
        let fig = shared_loss_figure("t", "t", Scheme::Layered { k: 7, h: 1 }, Quality::Quick);
        let at = |label: &str, x: f64| fig.series_named(label).unwrap().y_at(x).unwrap();
        // At R = 64 independent-loss layered already wins clearly.
        assert!(at("FEC, indep. loss", 64.0) < at("non-FEC, indep. loss", 64.0));
        // Under shared loss the gap at R = 64 is smaller than under
        // independent loss (the crossover happens later).
        let gap_indep = at("non-FEC, indep. loss", 64.0) - at("FEC, indep. loss", 64.0);
        let gap_shared = at("non-FEC, FBT loss", 64.0) - at("FEC, FBT loss", 64.0);
        assert!(
            gap_shared < gap_indep + 0.02,
            "shared gap {gap_shared} should trail independent gap {gap_indep}"
        );
    }
}
