//! Criterion benchmarks of the full NP/N2 protocol over the in-memory
//! multicast hub: end-to-end transfer throughput with and without loss —
//! the measured counterpart to Fig. 18's modelled comparison.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pm_core::runtime::{drive_receiver, drive_sender, RuntimeConfig};
use pm_core::{CompletionPolicy, NpConfig, NpReceiver, NpSender};
use pm_net::{FaultConfig, FaultyTransport, MemHub};

const TRANSFER: usize = 64 * 1024;

fn config() -> NpConfig {
    let mut c = NpConfig::small(CompletionPolicy::KnownReceivers(1));
    c.k = 20;
    c.h = 60;
    c.payload_len = 1024;
    c.nak_slot = 0.0005;
    c
}

fn rt() -> RuntimeConfig {
    RuntimeConfig {
        packet_spacing: Duration::from_micros(5),
        stall_timeout: Duration::from_secs(10),
        complete_linger: Duration::from_millis(300),
        ..RuntimeConfig::default()
    }
}

/// One full transfer: sender thread + one receiver with `drop` loss.
fn transfer_np(drop: f64, preencode: bool, seed: u64) -> usize {
    let hub = MemHub::new();
    let data: Vec<u8> = (0..TRANSFER).map(|i| (i * 31 % 251) as u8).collect();
    let mut cfg = config();
    cfg.preencode = preencode;
    let mut sender_tp = hub.join();
    let recv_ep = hub.join();
    let expect = data.len();
    let sender = std::thread::spawn(move || {
        let mut s = NpSender::new(1, &data, cfg).unwrap();
        drive_sender(&mut s, &mut sender_tp, &rt()).unwrap();
    });
    let mut tp = FaultyTransport::new(recv_ep, FaultConfig::drop_only(drop), seed);
    let mut r = NpReceiver::new(1, 1, 0.0005, seed);
    let report = drive_receiver(&mut r, &mut tp, &rt()).unwrap();
    sender.join().unwrap();
    assert_eq!(report.data.len(), expect);
    report.data.len()
}

fn bench_np_transfer(c: &mut Criterion) {
    let mut g = c.benchmark_group("np_transfer_64k");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(TRANSFER as u64));
    for &(name, drop) in &[("lossless", 0.0f64), ("loss_5pct", 0.05)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &drop, |b, &d| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                transfer_np(d, false, seed)
            });
        });
    }
    g.bench_function("loss_5pct_preencoded", |b| {
        let mut seed = 1000u64;
        b.iter(|| {
            seed += 1;
            transfer_np(0.05, true, seed)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_np_transfer);
criterion_main!(benches);
