//! pm-mux scheduler throughput: whole NP session farms driven to
//! completion on one thread under a virtual clock. The clock jumps instead
//! of sleeping, so the measurement is pure runtime cost — socket sweeps,
//! timer-wheel churn, machine steps — with zero waiting in it. The second
//! group times the raw timer wheel on an insert/advance storm, the hot
//! path every session wait goes through. `BENCH_mux.json` at the repo root
//! records the reference numbers.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pm_core::config::{CompletionPolicy, NpConfig};
use pm_core::receiver::NpReceiver;
use pm_core::runtime::RuntimeConfig;
use pm_core::sender::NpSender;
use pm_mux::{Mux, MuxConfig, OverloadConfig, TimerWheel, VirtualClock};
use pm_net::MemHub;

fn np_cfg() -> NpConfig {
    let mut c = NpConfig::small(CompletionPolicy::KnownReceivers(1));
    c.k = 8;
    c.h = 40;
    c.payload_len = 128;
    c.nak_slot = 0.001;
    c
}

fn rt() -> RuntimeConfig {
    RuntimeConfig {
        packet_spacing: Duration::from_micros(50),
        stall_timeout: Duration::from_secs(5),
        complete_linger: Duration::from_millis(250),
        ..RuntimeConfig::default()
    }
}

fn payload(n: usize) -> Vec<u8> {
    (0..n)
        .map(|i| (i.wrapping_mul(2654435761) >> 11) as u8)
        .collect()
}

/// Drive `pairs` lossless NP sessions (2 × `pairs` endpoints) to
/// completion on the calling thread; returns the outcome count.
fn farm(pairs: u32) -> usize {
    let mut mux = Mux::new(MuxConfig::default(), VirtualClock::new());
    for i in 0..pairs {
        let hub = MemHub::new();
        let data = payload(1500);
        mux.add_sender(
            NpSender::new(i, &data, np_cfg()).expect("valid config"),
            hub.join(),
            rt(),
        );
        mux.add_receiver(
            NpReceiver::new(1000 + i, i, 0.001, i as u64),
            hub.join(),
            rt(),
        );
    }
    let outcomes = mux.run();
    assert!(outcomes.iter().all(|(_, o)| o.is_ok()));
    outcomes.len()
}

fn bench_mux_farm(c: &mut Criterion) {
    let mut g = c.benchmark_group("mux_farm_np_pairs");
    g.sample_size(10);
    for pairs in [8u32, 32, 128, 256, 512] {
        g.bench_with_input(BenchmarkId::from_parameter(pairs), &pairs, |b, &p| {
            b.iter(|| farm(p));
        });
    }
    g.finish();
}

/// A 64-pair farm against a drive budget sized for ~8 sessions: the
/// overload policy must declare the episode, shed down to a sustainable
/// population, and drive the survivors to completion. Measures the whole
/// degrade-and-recover arc, shed bookkeeping included.
fn overloaded_farm(pairs: u32) -> (usize, u64) {
    let overload = OverloadConfig {
        high_water: 0.5,
        drive_budget: 8,
        sustain_turns: 4,
        max_shed_per_turn: 2,
        alpha: 0.5,
        seed: 0xBE7C,
        ..OverloadConfig::default()
    };
    let cfg = MuxConfig {
        overload: Some(overload),
        ..MuxConfig::default()
    };
    let mut mux = Mux::new(cfg, VirtualClock::new());
    for i in 0..pairs {
        let hub = MemHub::new();
        let data = payload(1500);
        mux.add_sender(
            NpSender::new(i, &data, np_cfg()).expect("valid config"),
            hub.join(),
            rt(),
        );
        mux.add_receiver(
            NpReceiver::new(1000 + i, i, 0.001, i as u64),
            hub.join(),
            rt(),
        );
    }
    let outcomes = mux.run();
    let shed = mux.shed_count();
    assert!(shed > 0, "the overload bench must actually shed");
    (outcomes.len(), shed)
}

fn bench_mux_shed(c: &mut Criterion) {
    c.bench_function("mux_overload_shed_64_pairs", |b| {
        b.iter(|| overloaded_farm(64));
    });
}

fn bench_timer_wheel(c: &mut Criterion) {
    c.bench_function("timer_wheel_insert_advance_64k", |b| {
        b.iter(|| {
            let mut wheel: TimerWheel<u64> = TimerWheel::new();
            // Deadlines spread over every hierarchy level plus overflow.
            for i in 0..65_536u64 {
                wheel.insert((i % 4096) * (i % 7 + 1) + 1, i);
            }
            let mut fired = Vec::new();
            let mut total = 0usize;
            let mut now = 0u64;
            while !wheel.is_empty() {
                now += 64;
                fired.clear();
                wheel.advance(now, &mut fired);
                total += fired.len();
            }
            assert_eq!(total, 65_536);
            total
        });
    });
}

criterion_group!(benches, bench_mux_farm, bench_mux_shed, bench_timer_wheel);
criterion_main!(benches);
