//! Serial vs parallel Monte Carlo sweeps: the pm-par speedup benchmark.
//!
//! One data point is the ISSUE's reference workload — an R = 4096
//! integrated-FEC-2 run under independent loss — executed serially and on
//! pools of 2 and 4 workers. The parallel runs return bit-identical
//! statistics (asserted here, not just in the test suite), so the only
//! thing this benchmark measures is wall-clock. `BENCH_sim.json` at the
//! repo root records the reference numbers together with the host core
//! count: speedup tops out at `min(workers, physical cores)`, so expect
//! ~1× on a single-core host and ≳3× on 4 cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pm_par::Pool;
use pm_sim::runner::{run_env, run_env_par, LossEnv, Scheme};
use pm_sim::SimConfig;

const SCHEME: Scheme = Scheme::Integrated2 { k: 7 };
const ENV: LossEnv = LossEnv::Independent { p: 0.01 };
const RECEIVERS: usize = 4096;
const TRIALS: usize = 200;
const SEED: u64 = 42;

fn bench_sim_parallel(c: &mut Criterion) {
    let cfg = SimConfig::paper_timing(TRIALS);
    let reference = run_env(&cfg, SCHEME, ENV, RECEIVERS, SEED);
    let mut g = c.benchmark_group("sim_parallel_integrated2_r4096");
    g.sample_size(10);
    g.bench_function(BenchmarkId::from_parameter("serial"), |b| {
        b.iter(|| run_env(&cfg, SCHEME, ENV, RECEIVERS, SEED));
    });
    for workers in [2usize, 4] {
        let pool = Pool::new(workers);
        let par = run_env_par(&cfg, SCHEME, ENV, RECEIVERS, SEED, &pool);
        assert_eq!(
            reference.mean_transmissions.to_bits(),
            par.mean_transmissions.to_bits(),
            "parallel result must be bit-identical before timing it"
        );
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("workers{workers}")),
            &workers,
            |b, _| {
                b.iter(|| run_env_par(&cfg, SCHEME, ENV, RECEIVERS, SEED, &pool));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_sim_parallel);
criterion_main!(benches);
