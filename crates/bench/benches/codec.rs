//! Criterion benchmarks of the RSE codec — the measured basis of Fig. 1.
//!
//! Throughput is reported in bytes of *data* processed, so `thrpt` lines
//! convert directly to the paper's packets/second at 1 KB packets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pm_rse::{CodeSpec, RseDecoder, RseEncoder};

const PACKET: usize = 1024;

fn group_data_sized(k: usize, packet: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| {
            (0..packet)
                .map(|b| ((i * 37 + b * 11) % 256) as u8)
                .collect()
        })
        .collect()
}

fn group_data(k: usize) -> Vec<Vec<u8>> {
    group_data_sized(k, PACKET)
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("encode");
    for &(k, h) in &[
        (7usize, 1usize),
        (7, 3),
        (20, 2),
        (20, 10),
        (100, 7),
        (100, 20),
    ] {
        let enc = RseEncoder::new(CodeSpec::new(k, h).unwrap()).unwrap();
        let data = group_data(k);
        g.throughput(Throughput::Bytes((k * PACKET) as u64));
        g.bench_with_input(
            BenchmarkId::new(format!("k={k}"), format!("h={h}")),
            &h,
            |b, _| {
                b.iter(|| enc.encode_all(std::hint::black_box(&data)).unwrap());
            },
        );
    }
    g.finish();
}

fn bench_encode_kernels(c: &mut Criterion) {
    // Cached shared-table kernels vs the seed's per-call-row kernel on the
    // same k=20, h=10, P=1024 encode workload. The "uncached_seed" variant
    // rebuilds a 256-entry multiplication row on the stack for every
    // (parity, packet) coefficient application — exactly what the encoder
    // did before the shared 64 KB table — so the ratio of these two lines
    // is the cached-vs-uncached speedup quoted in CHANGES.md.
    use pm_gf::slice::reference::mul_add_slice_uncached;

    let (k, h) = (20usize, 10usize);
    let enc = RseEncoder::new(CodeSpec::new(k, h).unwrap()).unwrap();
    let data = group_data(k);
    let coeffs: Vec<Vec<pm_gf::Gf256>> = (0..h)
        .map(|j| (0..k).map(|i| enc.parity_coeff(j, i)).collect())
        .collect();

    let mut g = c.benchmark_group("encode_kernels_k20_h10");
    g.throughput(Throughput::Bytes((k * PACKET) as u64));
    g.bench_function("cached", |b| {
        b.iter(|| enc.encode_all(std::hint::black_box(&data)).unwrap());
    });
    g.bench_function("uncached_seed", |b| {
        b.iter(|| {
            let data = std::hint::black_box(&data);
            let mut parities = Vec::with_capacity(h);
            for row in &coeffs {
                let mut out = vec![0u8; PACKET];
                for (cf, d) in row.iter().zip(data) {
                    mul_add_slice_uncached(*cf, d, &mut out);
                }
                parities.push(out);
            }
            parities
        });
    });
    g.finish();
}

fn bench_backend_curves(c: &mut Criterion) {
    // Scalar-vs-SIMD encode/decode curves for BENCH_codec.json: every
    // backend this host can run, pinned explicitly via `with_kernels` so
    // one process measures them all, at the paper's workhorse geometries
    // across small/default/jumbo packets.
    use pm_simd::{kernels_for, Backend};

    let backends: Vec<&'static pm_simd::Kernels> = [Backend::Scalar, Backend::Avx2, Backend::Neon]
        .into_iter()
        .filter_map(kernels_for)
        .collect();
    for &(k, h) in &[(20usize, 10usize), (7, 1)] {
        for &packet in &[256usize, 1024, 8192] {
            let data = group_data_sized(k, packet);
            let mut g = c.benchmark_group(format!("encode_backend/k{k}_h{h}_p{packet}"));
            g.throughput(Throughput::Bytes((k * packet) as u64));
            for kern in &backends {
                let enc = RseEncoder::with_kernels(CodeSpec::new(k, h).unwrap(), kern).unwrap();
                g.bench_function(kern.backend().name(), |b| {
                    b.iter(|| enc.encode_all(std::hint::black_box(&data)).unwrap());
                });
            }
            g.finish();

            let lost = h.min(k);
            let mut g = c.benchmark_group(format!("decode_backend/k{k}_h{h}_p{packet}"));
            g.throughput(Throughput::Bytes((k * packet) as u64));
            for kern in &backends {
                let enc = RseEncoder::with_kernels(CodeSpec::new(k, h).unwrap(), kern).unwrap();
                let dec = RseDecoder::from_encoder(&enc);
                let parities = enc.encode_all(&data).unwrap();
                let shares: Vec<(usize, &[u8])> = data
                    .iter()
                    .enumerate()
                    .skip(lost)
                    .map(|(i, d)| (i, d.as_slice()))
                    .chain(
                        parities
                            .iter()
                            .enumerate()
                            .map(|(j, p)| (k + j, p.as_slice())),
                    )
                    .collect();
                g.bench_function(kern.backend().name(), |b| {
                    b.iter(|| dec.decode(std::hint::black_box(&shares)).unwrap());
                });
            }
            g.finish();
        }
    }
}

fn bench_single_parity(c: &mut Criterion) {
    // Protocol NP's hot path: produce exactly one fresh parity on NAK.
    let mut g = c.benchmark_group("single_parity");
    for &k in &[7usize, 20, 100] {
        let enc = RseEncoder::new(CodeSpec::new(k, 8).unwrap()).unwrap();
        let data = group_data(k);
        g.throughput(Throughput::Bytes((k * PACKET) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| enc.parity(3, std::hint::black_box(&data)).unwrap());
        });
    }
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("decode");
    for &(k, lost) in &[(7usize, 1usize), (7, 3), (20, 5), (100, 7)] {
        let enc = RseEncoder::new(CodeSpec::new(k, lost).unwrap()).unwrap();
        let dec = RseDecoder::from_encoder(&enc);
        let data = group_data(k);
        let parities = enc.encode_all(&data).unwrap();
        let shares: Vec<(usize, &[u8])> = data
            .iter()
            .enumerate()
            .skip(lost)
            .map(|(i, d)| (i, d.as_slice()))
            .chain(
                parities
                    .iter()
                    .enumerate()
                    .map(|(j, p)| (k + j, p.as_slice())),
            )
            .collect();
        g.throughput(Throughput::Bytes((k * PACKET) as u64));
        g.bench_with_input(
            BenchmarkId::new(format!("k={k}"), format!("lost={lost}")),
            &lost,
            |b, _| {
                b.iter(|| dec.decode(std::hint::black_box(&shares)).unwrap());
            },
        );
    }
    g.finish();
}

fn bench_decode_repeat_pattern(c: &mut Criterion) {
    // A receiver stuck behind one lossy link sees the same loss pattern
    // group after group: the steady-state cost is this benchmark (inverse
    // served from the decoder's LRU; only the l x k back-multiply remains).
    let (k, lost) = (20usize, 5usize);
    let enc = RseEncoder::new(CodeSpec::new(k, lost).unwrap()).unwrap();
    let dec = RseDecoder::from_encoder(&enc);
    let data = group_data(k);
    let parities = enc.encode_all(&data).unwrap();
    let shares: Vec<(usize, &[u8])> = data
        .iter()
        .enumerate()
        .skip(lost)
        .map(|(i, d)| (i, d.as_slice()))
        .chain(
            parities
                .iter()
                .enumerate()
                .map(|(j, p)| (k + j, p.as_slice())),
        )
        .collect();
    dec.decode(&shares).unwrap(); // prime the inverse cache
    c.bench_function("decode_repeat_pattern_k20_lost5", |b| {
        b.iter(|| dec.decode(std::hint::black_box(&shares)).unwrap());
    });
}

fn bench_decode_fast_path(c: &mut Criterion) {
    // All data received: decoding must be near-free (systematic code).
    let enc = RseEncoder::new(CodeSpec::new(20, 10).unwrap()).unwrap();
    let dec = RseDecoder::from_encoder(&enc);
    let data = group_data(20);
    let shares: Vec<(usize, &[u8])> = data
        .iter()
        .enumerate()
        .map(|(i, d)| (i, d.as_slice()))
        .collect();
    c.bench_function("decode_fast_path_k20", |b| {
        b.iter(|| dec.decode(std::hint::black_box(&shares)).unwrap());
    });
}

fn bench_incremental_decode(c: &mut Criterion) {
    use pm_rse::IncrementalDecoder;
    // Same recovery task as `decode` k=20/lost=5, spread across arrivals.
    let (k, lost) = (20usize, 5usize);
    let enc = RseEncoder::new(CodeSpec::new(k, lost).unwrap()).unwrap();
    let data = group_data(k);
    let parities = enc.encode_all(&data).unwrap();
    let order: Vec<(usize, &[u8])> = data
        .iter()
        .enumerate()
        .skip(lost)
        .map(|(i, d)| (i, d.as_slice()))
        .chain(
            parities
                .iter()
                .enumerate()
                .map(|(j, p)| (k + j, p.as_slice())),
        )
        .collect();
    c.bench_function("incremental_decode_k20_lost5", |b| {
        b.iter(|| {
            let mut dec = IncrementalDecoder::from_encoder(&enc);
            for &(i, p) in &order {
                dec.add_share(i, std::hint::black_box(p)).unwrap();
            }
            dec.finish().unwrap()
        });
    });
}

criterion_group!(
    benches,
    bench_encode,
    bench_encode_kernels,
    bench_backend_curves,
    bench_single_parity,
    bench_decode,
    bench_decode_repeat_pattern,
    bench_decode_fast_path,
    bench_incremental_decode
);
criterion_main!(benches);
