//! Criterion benchmarks of the observability fast path.
//!
//! The contract instrumented hot paths rely on: an [`Obs`] wrapping the
//! `NullRecorder` must cost a branch — low single-digit nanoseconds — per
//! emit, with the event closure never running. The other benches bound
//! what turning tracing *on* costs.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use pm_obs::{Event, JsonlRecorder, MetricsRegistry, Obs, RingRecorder};

fn event(i: u16) -> Event {
    Event::DataSent {
        session: 7,
        group: 3,
        index: i,
    }
}

fn bench_null_recorder(c: &mut Criterion) {
    let obs = Obs::null();
    c.bench_function("null_recorder_emit", |b| {
        let mut i = 0u16;
        b.iter(|| {
            i = i.wrapping_add(1);
            obs.emit(std::hint::black_box(0.5), || event(i));
        });
    });
}

fn bench_ring_recorder(c: &mut Criterion) {
    let obs = Obs::new(Arc::new(RingRecorder::new(1024)));
    c.bench_function("ring_recorder_emit", |b| {
        let mut i = 0u16;
        b.iter(|| {
            i = i.wrapping_add(1);
            obs.emit(std::hint::black_box(0.5), || event(i));
        });
    });
}

fn bench_jsonl_recorder(c: &mut Criterion) {
    let obs = Obs::new(Arc::new(JsonlRecorder::new(std::io::sink())));
    c.bench_function("jsonl_recorder_emit", |b| {
        let mut i = 0u16;
        b.iter(|| {
            i = i.wrapping_add(1);
            obs.emit(std::hint::black_box(0.5), || event(i));
        });
    });
}

fn bench_histogram(c: &mut Criterion) {
    let reg = MetricsRegistry::new();
    let hist = reg.histogram("bench.ns");
    c.bench_function("histogram_record", |b| {
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            hist.record(std::hint::black_box(v >> 40));
        });
    });
}

criterion_group!(
    benches,
    bench_null_recorder,
    bench_ring_recorder,
    bench_jsonl_recorder,
    bench_histogram
);
criterion_main!(benches);
