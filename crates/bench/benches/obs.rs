//! Criterion benchmarks of the observability fast path.
//!
//! The contract instrumented hot paths rely on: an [`Obs`] wrapping the
//! `NullRecorder` must cost a branch — low single-digit nanoseconds — per
//! emit, with the event closure never running. The other benches bound
//! what turning tracing *on* costs.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use pm_obs::{
    Event, FlightRecorder, JsonlRecorder, MetricsRegistry, Obs, Recorder, RingRecorder,
    WindowConfig, WindowTelemetry,
};

fn event(i: u16) -> Event {
    Event::DataSent {
        session: 7,
        group: 3,
        index: i,
    }
}

fn bench_null_recorder(c: &mut Criterion) {
    let obs = Obs::null();
    c.bench_function("null_recorder_emit", |b| {
        let mut i = 0u16;
        b.iter(|| {
            i = i.wrapping_add(1);
            obs.emit(std::hint::black_box(0.5), || event(i));
        });
    });
}

fn bench_ring_recorder(c: &mut Criterion) {
    let obs = Obs::new(Arc::new(RingRecorder::new(1024)));
    c.bench_function("ring_recorder_emit", |b| {
        let mut i = 0u16;
        b.iter(|| {
            i = i.wrapping_add(1);
            obs.emit(std::hint::black_box(0.5), || event(i));
        });
    });
}

fn bench_jsonl_recorder(c: &mut Criterion) {
    let obs = Obs::new(Arc::new(JsonlRecorder::new(std::io::sink())));
    c.bench_function("jsonl_recorder_emit", |b| {
        let mut i = 0u16;
        b.iter(|| {
            i = i.wrapping_add(1);
            obs.emit(std::hint::black_box(0.5), || event(i));
        });
    });
}

fn bench_histogram(c: &mut Criterion) {
    let reg = MetricsRegistry::new();
    let hist = reg.histogram("bench.ns");
    c.bench_function("histogram_record", |b| {
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            hist.record(std::hint::black_box(v >> 40));
        });
    });
}

fn bench_window_telemetry(c: &mut Criterion) {
    let obs = Obs::new(Arc::new(WindowTelemetry::new(WindowConfig::default())));
    c.bench_function("window_telemetry_emit", |b| {
        let mut i = 0u16;
        let mut t = 0.0f64;
        b.iter(|| {
            i = i.wrapping_add(1);
            t += 1e-4; // walk the session clock so buckets actually roll
            obs.emit(std::hint::black_box(t), || event(i));
        });
    });
}

fn bench_flight_recorder(c: &mut Criterion) {
    let obs = Obs::new(Arc::new(FlightRecorder::new(256)));
    c.bench_function("flight_recorder_emit", |b| {
        let mut i = 0u16;
        b.iter(|| {
            i = i.wrapping_add(1);
            obs.emit(std::hint::black_box(0.5), || event(i));
        });
    });
}

fn bench_window_snapshot(c: &mut Criterion) {
    let tel = WindowTelemetry::new(WindowConfig::default());
    let mut t = 0.0f64;
    for i in 0..4096u16 {
        t += 1e-4;
        tel.record(t, &event(i));
    }
    c.bench_function("window_farm_snapshot", |b| {
        b.iter(|| std::hint::black_box(tel.farm_snapshot()));
    });
}

criterion_group!(
    benches,
    bench_null_recorder,
    bench_ring_recorder,
    bench_jsonl_recorder,
    bench_histogram,
    bench_window_telemetry,
    bench_flight_recorder,
    bench_window_snapshot
);
criterion_main!(benches);
