//! Criterion benchmarks of the discrete-event simulator: the Fig. 11/12
//! sweeps run hundreds of (scheme, R) points, so per-trial cost matters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pm_sim::runner::{run_env, LossEnv, Scheme};
use pm_sim::SimConfig;

fn bench_schemes(c: &mut Criterion) {
    let cfg = SimConfig::paper_timing(50);
    let mut g = c.benchmark_group("sim_schemes_r256");
    for scheme in [
        Scheme::NoFec,
        Scheme::Layered { k: 7, h: 1 },
        Scheme::Integrated1 { k: 7 },
        Scheme::Integrated2 { k: 7 },
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &scheme,
            |b, &s| {
                b.iter(|| run_env(&cfg, s, LossEnv::Independent { p: 0.01 }, 256, 42));
            },
        );
    }
    g.finish();
}

fn bench_environments(c: &mut Criterion) {
    let cfg = SimConfig::paper_timing(50);
    let mut g = c.benchmark_group("sim_envs_nofec_r1024");
    for (name, env) in [
        ("independent", LossEnv::Independent { p: 0.01 }),
        ("fbt", LossEnv::FullBinaryTree { p: 0.01 }),
        (
            "burst",
            LossEnv::Burst {
                p: 0.01,
                mean_burst: 2.0,
            },
        ),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &env, |b, &e| {
            b.iter(|| run_env(&cfg, Scheme::NoFec, e, 1024, 42));
        });
    }
    g.finish();
}

fn bench_protocol_harness(c: &mut Criterion) {
    // Full NP implementation (state machines, suppression, rounds) on the
    // deterministic medium — the cost of one simulated session at scale.
    use pm_core::harness::{run_simulation, HarnessConfig};
    use pm_core::{CompletionPolicy, NpConfig, NpReceiver, NpSender};
    use pm_loss::IndependentLoss;
    let mut g = c.benchmark_group("protocol_harness");
    g.sample_size(10);
    for &r in &[32usize, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            b.iter(|| {
                let mut cfg = NpConfig::small(CompletionPolicy::KnownReceivers(r as u32));
                cfg.k = 20;
                cfg.h = 235;
                cfg.payload_len = 8;
                cfg.nak_slot = 0.002;
                cfg.round_timeout = 0.05;
                let data = vec![0xA5u8; 20 * 8 * 5];
                let mut sender = NpSender::new(1, &data, cfg).unwrap();
                let mut receivers: Vec<NpReceiver> = (0..r)
                    .map(|i| NpReceiver::new(i as u32, 1, 0.002, i as u64))
                    .collect();
                let mut loss = IndependentLoss::new(r, 0.02, 42);
                run_simulation(
                    &mut sender,
                    &mut receivers,
                    &mut loss,
                    &HarnessConfig::default(),
                )
                .unwrap()
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_schemes,
    bench_environments,
    bench_protocol_harness
);
criterion_main!(benches);
