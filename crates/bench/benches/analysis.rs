//! Criterion benchmarks of the analytical engine: the figure grids sweep
//! these functions hundreds of times, so they must stay fast even at
//! `R = 10^6`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pm_analysis::{integrated, layered, nofec, rounds, Population};

fn bench_expected_transmissions(c: &mut Criterion) {
    let mut g = c.benchmark_group("expected_transmissions");
    for &r in &[1_000u64, 1_000_000] {
        let pop = Population::homogeneous(0.01, r);
        g.bench_with_input(BenchmarkId::new("nofec", r), &pop, |b, pop| {
            b.iter(|| nofec::expected_transmissions(std::hint::black_box(pop)));
        });
        g.bench_with_input(BenchmarkId::new("layered_k7_h2", r), &pop, |b, pop| {
            b.iter(|| layered::expected_transmissions(7, 2, std::hint::black_box(pop)));
        });
        g.bench_with_input(
            BenchmarkId::new("integrated_bound_k7", r),
            &pop,
            |b, pop| {
                b.iter(|| integrated::lower_bound(7, 0, std::hint::black_box(pop)));
            },
        );
        g.bench_with_input(
            BenchmarkId::new("integrated_finite_k7_h3", r),
            &pop,
            |b, pop| {
                b.iter(|| integrated::finite(7, 3, 0, std::hint::black_box(pop)));
            },
        );
    }
    g.finish();
}

fn bench_hetero(c: &mut Criterion) {
    let pop = Population::two_class(1_000_000, 0.01, 0.01, 0.25);
    c.bench_function("hetero_integrated_bound_1e6", |b| {
        b.iter(|| integrated::lower_bound(7, 0, std::hint::black_box(&pop)));
    });
}

fn bench_rounds(c: &mut Criterion) {
    let pop = Population::homogeneous(0.01, 1_000_000);
    c.bench_function("expected_rounds_k20_1e6", |b| {
        b.iter(|| rounds::expected_rounds(20, std::hint::black_box(&pop)));
    });
}

criterion_group!(
    benches,
    bench_expected_transmissions,
    bench_hetero,
    bench_rounds
);
criterion_main!(benches);
