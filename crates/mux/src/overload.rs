//! Admission control and load shedding for the session multiplexer.
//!
//! The mux's fairness story ([`crate::Mux`]) bounds what one hostile
//! session can cost its neighbors *within* a turn. This module bounds
//! what the whole population can cost the turn: every turn runs under an
//! explicit budget (datagrams via the poll budget, drive passes via
//! [`OverloadConfig::drive_budget`]), the fraction of that budget
//! actually consumed feeds a rolling utilization estimate, and an
//! [`OverloadPolicy`] turns the estimate into three escalating answers —
//! refuse new sessions past the high-water mark (typed
//! [`AdmissionError`]), declare an overload episode when saturation
//! persists, and finally shed victims by a deterministic, seedable
//! priority so the survivors keep their unloaded schedule. Shedding is
//! graceful degradation, not failure: a shed session ends with a typed
//! `Shed` outcome carrying its flight-recorder postmortem.
//!
//! The scalability papers behind this repo (see PAPERS.md) make the same
//! argument at the protocol layer: reliability mechanisms must stay
//! stable when per-connection work outstrips the host. The policy here
//! is that argument applied to the driver layer.

use std::fmt;

/// Tuning knobs of the mux's overload policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadConfig {
    /// Rolling utilization above which the mux counts a turn as
    /// saturated, refuses admission, and — sustained — sheds.
    pub high_water: f64,
    /// Hard cap on live sessions; admission past it fails with
    /// [`AdmissionError::AtCapacity`] regardless of utilization.
    pub max_sessions: usize,
    /// Drive passes per turn that count as a fully-utilized turn (the
    /// drives half of the budget; the datagram half is the poll budget).
    pub drive_budget: usize,
    /// Consecutive saturated turns before the policy declares an
    /// overload episode and starts shedding.
    pub sustain_turns: u32,
    /// Victims shed per turn while the episode lasts — shedding is
    /// incremental so one bad turn cannot empty the farm.
    pub max_shed_per_turn: usize,
    /// EWMA smoothing factor for the utilization estimate (weight of the
    /// newest turn), in `(0, 1]`.
    pub alpha: f64,
    /// Seed for the victim-priority tie-break, so shedding order is
    /// reproducible in tests and drills.
    pub seed: u64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            high_water: 0.85,
            max_sessions: 4096,
            drive_budget: 1024,
            sustain_turns: 64,
            max_shed_per_turn: 4,
            alpha: 0.2,
            seed: 0,
        }
    }
}

/// Why the mux refused a new session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionError {
    /// The rolling utilization is above the high-water mark: the mux is
    /// saturated and taking more work would push it into shedding.
    Saturated {
        /// The utilization estimate at refusal.
        utilization: f64,
    },
    /// The hard session cap is reached.
    AtCapacity {
        /// The configured [`OverloadConfig::max_sessions`].
        limit: usize,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::Saturated { utilization } => {
                write!(
                    f,
                    "mux saturated (utilization {utilization:.3}), admission refused"
                )
            }
            AdmissionError::AtCapacity { limit } => {
                write!(f, "mux at its session cap ({limit}), admission refused")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// What the policy concluded from one turn's budget accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadSignal {
    /// Business as usual.
    Nominal,
    /// This turn tipped the policy into an overload episode.
    Entered,
    /// An episode is running and has sustained long enough: shed now.
    Shedding,
    /// Utilization fell back under the high-water mark; episode over.
    Cleared,
}

/// Rolling saturation tracker: EWMA utilization + episode state machine.
#[derive(Debug, Clone)]
pub struct OverloadPolicy {
    cfg: OverloadConfig,
    util: f64,
    saturated_turns: u32,
    overloaded: bool,
}

impl OverloadPolicy {
    /// A fresh policy at zero utilization.
    pub fn new(cfg: OverloadConfig) -> Self {
        OverloadPolicy {
            cfg,
            util: 0.0,
            saturated_turns: 0,
            overloaded: false,
        }
    }

    /// The configuration this policy runs under.
    pub fn config(&self) -> &OverloadConfig {
        &self.cfg
    }

    /// Current rolling utilization estimate (1.0 = the turn budget is
    /// fully consumed; transiently above 1.0 under a burst).
    pub fn utilization(&self) -> f64 {
        self.util
    }

    /// True while an overload episode is running.
    pub fn overloaded(&self) -> bool {
        self.overloaded
    }

    /// Fold one turn's utilization sample into the estimate and step the
    /// episode state machine.
    pub fn observe(&mut self, sample: f64) -> OverloadSignal {
        let sample = if sample.is_finite() {
            sample.max(0.0)
        } else {
            0.0
        };
        let a = self.cfg.alpha.clamp(f64::MIN_POSITIVE, 1.0);
        self.util += a * (sample - self.util);
        if self.util > self.cfg.high_water {
            self.saturated_turns = self.saturated_turns.saturating_add(1);
            if self.overloaded {
                OverloadSignal::Shedding
            } else if self.saturated_turns >= self.cfg.sustain_turns.max(1) {
                self.overloaded = true;
                OverloadSignal::Entered
            } else {
                OverloadSignal::Nominal
            }
        } else {
            self.saturated_turns = 0;
            if self.overloaded {
                self.overloaded = false;
                OverloadSignal::Cleared
            } else {
                OverloadSignal::Nominal
            }
        }
    }

    /// Admission check for a prospective session when `live` are running.
    ///
    /// # Errors
    /// [`AdmissionError`] when the cap is reached or the mux is past the
    /// high-water mark.
    pub fn admit(&self, live: usize) -> Result<(), AdmissionError> {
        if live >= self.cfg.max_sessions {
            return Err(AdmissionError::AtCapacity {
                limit: self.cfg.max_sessions,
            });
        }
        if self.util > self.cfg.high_water {
            return Err(AdmissionError::Saturated {
                utilization: self.util,
            });
        }
        Ok(())
    }

    /// Deterministic victim priority: newest session first (it has the
    /// least sunk work), then fewest drive passes (most behind), then a
    /// seeded hash of the slot so equal candidates still order stably
    /// but differently across seeds. Returns the sort key — *larger
    /// sorts earlier* via `sort_by` on the caller's side.
    pub fn victim_key(&self, slot: usize, started: f64, drives: u64) -> (u64, u64, u64) {
        // Later start → larger bits → earlier victim. f64 start times in
        // a mux are non-negative, so the IEEE bit pattern is monotonic.
        let recency = started.max(0.0).to_bits();
        // Fewer drives → earlier victim.
        let behind = u64::MAX - drives;
        let tiebreak = splitmix64(self.cfg.seed ^ slot as u64);
        (recency, behind, tiebreak)
    }
}

/// SplitMix64 — the same tiny seeded mixer the resilience backoff uses.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> OverloadConfig {
        OverloadConfig {
            high_water: 0.8,
            sustain_turns: 3,
            alpha: 1.0, // no smoothing: samples are the estimate
            ..OverloadConfig::default()
        }
    }

    #[test]
    fn episode_lifecycle() {
        let mut p = OverloadPolicy::new(cfg());
        assert_eq!(p.observe(0.5), OverloadSignal::Nominal);
        assert_eq!(p.observe(1.0), OverloadSignal::Nominal);
        assert_eq!(p.observe(1.0), OverloadSignal::Nominal);
        assert_eq!(
            p.observe(1.0),
            OverloadSignal::Entered,
            "3rd saturated turn"
        );
        assert!(p.overloaded());
        assert_eq!(p.observe(1.0), OverloadSignal::Shedding);
        assert_eq!(p.observe(0.1), OverloadSignal::Cleared);
        assert!(!p.overloaded());
        // A fresh burst must sustain again from scratch.
        assert_eq!(p.observe(1.0), OverloadSignal::Nominal);
    }

    #[test]
    fn admission_tracks_utilization_and_cap() {
        let mut p = OverloadPolicy::new(cfg());
        assert!(p.admit(10).is_ok());
        p.observe(1.0);
        match p.admit(10) {
            Err(AdmissionError::Saturated { utilization }) => assert!(utilization > 0.8),
            other => panic!("expected Saturated, got {other:?}"),
        }
        p.observe(0.0);
        assert!(p.admit(10).is_ok(), "recovers when utilization drops");
        match p.admit(cfg().max_sessions) {
            Err(AdmissionError::AtCapacity { limit }) => assert_eq!(limit, cfg().max_sessions),
            other => panic!("expected AtCapacity, got {other:?}"),
        }
    }

    #[test]
    fn victim_priority_is_newest_then_most_behind_and_seeded() {
        let p = OverloadPolicy::new(cfg());
        // Newer session outranks older regardless of drives.
        assert!(p.victim_key(0, 5.0, 1000) > p.victim_key(1, 1.0, 2));
        // Same start: fewer drives outranks more.
        assert!(p.victim_key(0, 2.0, 3) > p.victim_key(1, 2.0, 30));
        // Same start and drives: seed decides, deterministically.
        let a = p.victim_key(0, 2.0, 5);
        let b = p.victim_key(1, 2.0, 5);
        assert_ne!(a, b);
        assert_eq!(a, p.victim_key(0, 2.0, 5));
        let p2 = OverloadPolicy::new(OverloadConfig { seed: 99, ..cfg() });
        assert_ne!(
            a.2,
            p2.victim_key(0, 2.0, 5).2,
            "tie-break follows the seed"
        );
    }

    #[test]
    fn hostile_samples_do_not_poison_the_estimate() {
        let mut p = OverloadPolicy::new(cfg());
        p.observe(f64::NAN);
        p.observe(f64::INFINITY);
        assert!(p.utilization().is_finite());
        p.observe(-3.0);
        assert!(p.utilization() >= 0.0);
    }
}
