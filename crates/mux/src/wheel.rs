//! Hierarchical timer wheel over `u64` ticks.
//!
//! The multiplexer replaces every blocking wait — pacing, retry backoff,
//! machine wakeups, receiver poll cadence — with an entry here, so the
//! driver thread never parks on one session's behalf. The wheel is the
//! classic hashed hierarchy (64 slots × 4 levels; level `l` spans deltas
//! in `[64^l, 64^(l+1))` ticks), giving O(1) insertion and
//! O(expired + cascades) advancement regardless of how many timers are
//! pending.
//!
//! Determinism contract: for a fixed sequence of `insert`/`advance` calls
//! the set *and order* of expirations is a pure function of that sequence.
//! Expirations come out in deadline order; entries sharing a deadline come
//! out in insertion order. Nothing in this module reads a clock — ticks
//! are whatever the caller says they are, which is what lets the same
//! wheel serve a virtual clock in tests and a wall clock in production.

use std::collections::VecDeque;

/// Slots per level (the classic 64-way fanout: slot index is 6 bits).
const SLOTS: usize = 64;
/// Hierarchy depth. Four levels cover deltas up to `64^4 ≈ 16.7M` ticks;
/// anything farther parks in the overflow list and re-enters the
/// hierarchy as time approaches.
const LEVELS: usize = 4;
const SLOT_BITS: u32 = 6;

#[derive(Debug, Clone, Copy)]
struct Entry<K> {
    deadline: u64,
    key: K,
}

/// Hierarchical timer wheel: `insert` keys at absolute tick deadlines,
/// `advance` the current tick, and collect expirations in deadline order.
///
/// Keys are opaque `Copy` handles; cancellation is the caller's problem
/// (the multiplexer uses per-key generation counters and simply ignores
/// stale expirations — lazy cancellation keeps the wheel allocation-free
/// on the cancel path).
#[derive(Debug)]
pub struct TimerWheel<K: Copy> {
    now: u64,
    /// `levels[l][s]` holds entries whose deadline maps to slot `s` of
    /// level `l`; FIFO order within a slot is insertion order.
    levels: Vec<Vec<VecDeque<Entry<K>>>>,
    /// Bitmask of non-empty slots per level.
    occupancy: [u64; LEVELS],
    /// Entries too far out for the hierarchy.
    overflow: Vec<Entry<K>>,
    /// Entries inserted with `deadline <= now`: due immediately.
    due: VecDeque<Entry<K>>,
    len: usize,
}

impl<K: Copy> TimerWheel<K> {
    /// An empty wheel positioned at tick 0.
    pub fn new() -> Self {
        TimerWheel {
            now: 0,
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| VecDeque::new()).collect())
                .collect(),
            occupancy: [0; LEVELS],
            overflow: Vec::new(),
            due: VecDeque::new(),
            len: 0,
        }
    }

    /// Current tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Pending entries (hierarchy + overflow + immediately-due).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedule `key` to expire at absolute tick `deadline`. Deadlines at
    /// or before the current tick expire on the next `advance` call, in
    /// insertion order.
    pub fn insert(&mut self, deadline: u64, key: K) {
        self.len += 1;
        let entry = Entry { deadline, key };
        if deadline <= self.now {
            self.due.push_back(entry);
            return;
        }
        let delta = deadline - self.now;
        let level = (63 - delta.leading_zeros()) as usize / SLOT_BITS as usize;
        if level >= LEVELS {
            self.overflow.push(entry);
            return;
        }
        let slot = ((deadline >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.levels[level][slot].push_back(entry);
        self.occupancy[level] |= 1u64 << slot;
    }

    /// Earliest tick at which something may expire, or `None` when empty.
    ///
    /// For entries above level 0 this is a *lower bound* (the start of
    /// their slot's granule): `advance`-ing to it cascades them toward
    /// level 0 and a subsequent call tightens the bound; it never
    /// overshoots a real deadline. That is exactly what both clock
    /// drivers need — a tick it is safe to jump (virtual) or sleep (wall)
    /// until.
    pub fn next_deadline(&self) -> Option<u64> {
        if !self.due.is_empty() {
            return Some(self.now);
        }
        let mut best: Option<u64> = None;
        for level in 0..LEVELS {
            if let Some(c) = self.level_candidate(level) {
                best = Some(best.map_or(c, |b| b.min(c)));
            }
        }
        for e in &self.overflow {
            best = Some(best.map_or(e.deadline, |b| b.min(e.deadline)));
        }
        best
    }

    /// Earliest candidate tick for `level`, from its occupancy mask.
    fn level_candidate(&self, level: usize) -> Option<u64> {
        let occ = self.occupancy[level];
        if occ == 0 {
            return None;
        }
        let shift = SLOT_BITS * level as u32;
        let granule = self.now >> shift;
        let cur_slot = (granule & (SLOTS as u64 - 1)) as usize;
        let base = granule & !(SLOTS as u64 - 1);
        let mut best = u64::MAX;
        let mut bits = occ;
        while bits != 0 {
            let slot = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let cand = if level > 0 && slot == cur_slot {
                // The current granule is partially elapsed; entries here
                // may be due as soon as the next tick. Cascading at
                // `now + 1` re-sorts them into lower levels.
                self.now + 1
            } else {
                let mut g = base + slot as u64;
                if g <= granule {
                    g += SLOTS as u64;
                }
                g << shift
            };
            best = best.min(cand);
        }
        Some(best)
    }

    /// Move the clock to `to`, appending every expiration with
    /// `deadline <= to` onto `expired` as `(deadline, key)` pairs, in
    /// deadline order (ties in insertion order within a slot).
    pub fn advance(&mut self, to: u64, expired: &mut Vec<(u64, K)>) {
        loop {
            while let Some(e) = self.due.pop_front() {
                self.len -= 1;
                expired.push((e.deadline, e.key));
            }
            let Some(cand) = self.next_candidate_before(to) else {
                break;
            };
            self.now = self.now.max(cand);
            self.collect_at(expired);
        }
        self.now = self.now.max(to);
    }

    /// Smallest candidate tick `<= to`, if any.
    fn next_candidate_before(&self, to: u64) -> Option<u64> {
        let mut best: Option<u64> = None;
        for level in 0..LEVELS {
            if let Some(c) = self.level_candidate(level) {
                if c <= to {
                    best = Some(best.map_or(c, |b| b.min(c)));
                }
            }
        }
        for e in &self.overflow {
            if e.deadline <= to {
                best = Some(best.map_or(e.deadline, |b| b.min(e.deadline)));
            }
        }
        best
    }

    /// Fire or cascade everything ripe now (`self.now` has already been
    /// moved to the minimal candidate tick).
    ///
    /// Because `advance` walks candidates in ascending order, the only
    /// slot that can be ripe at each step is the one the cursor sits in:
    /// any other occupied slot's candidate is strictly in the future. At
    /// level 0 the cursor slot's entries with `deadline == now` fire; at
    /// higher levels its entries cascade toward level 0 (re-inserted
    /// relative to the new `now`, they land at a strictly lower level or
    /// a later slot, so the advance loop always makes progress).
    fn collect_at(&mut self, expired: &mut Vec<(u64, K)>) {
        for level in 0..LEVELS {
            if self.occupancy[level] == 0 {
                continue;
            }
            let shift = SLOT_BITS * level as u32;
            let cur_slot = ((self.now >> shift) & (SLOTS as u64 - 1)) as usize;
            if self.occupancy[level] & (1u64 << cur_slot) == 0 {
                continue;
            }
            let drained: VecDeque<Entry<K>> = std::mem::take(&mut self.levels[level][cur_slot]);
            self.occupancy[level] &= !(1u64 << cur_slot);
            for e in drained {
                self.len -= 1;
                if e.deadline <= self.now {
                    expired.push((e.deadline, e.key));
                } else {
                    self.insert(e.deadline, e.key);
                }
            }
        }
        // Pull overflow entries back into the hierarchy once they are in
        // range (or due).
        if !self.overflow.is_empty() {
            let near: Vec<Entry<K>> = {
                let now = self.now;
                let (near, far): (Vec<_>, Vec<_>) = self
                    .overflow
                    .drain(..)
                    .partition(|e| e.deadline <= now || in_hierarchy_range(now, e.deadline));
                self.overflow = far;
                near
            };
            for e in near {
                self.len -= 1;
                self.insert(e.deadline, e.key);
            }
        }
    }
}

/// True when `deadline` is close enough to `now` for the 4-level
/// hierarchy.
fn in_hierarchy_range(now: u64, deadline: u64) -> bool {
    deadline > now && (deadline - now) < (1u64 << (SLOT_BITS * LEVELS as u32))
}

impl<K: Copy> Default for TimerWheel<K> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimerWheel<u32>, to: u64) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        w.advance(to, &mut out);
        out
    }

    #[test]
    fn fires_in_deadline_order_across_levels() {
        let mut w = TimerWheel::new();
        // Deadlines spanning all four levels plus overflow.
        let deadlines = [
            1u64, 63, 64, 100, 4095, 4096, 262143, 262144, 16_777_215, 16_777_216, 20_000_000,
        ];
        for (i, &d) in deadlines.iter().enumerate() {
            w.insert(d, i as u32);
        }
        assert_eq!(w.len(), deadlines.len());
        let fired = drain(&mut w, 25_000_000);
        assert_eq!(fired.len(), deadlines.len());
        assert!(w.is_empty());
        let ticks: Vec<u64> = fired.iter().map(|&(d, _)| d).collect();
        let mut sorted = deadlines.to_vec();
        sorted.sort_unstable();
        assert_eq!(ticks, sorted, "expirations in deadline order");
        for &(d, k) in &fired {
            assert_eq!(d, deadlines[k as usize]);
        }
    }

    #[test]
    fn same_tick_entries_fire_in_insertion_order() {
        let mut w = TimerWheel::new();
        for k in 0..10u32 {
            w.insert(500, k);
        }
        let fired = drain(&mut w, 500);
        assert_eq!(
            fired.iter().map(|&(_, k)| k).collect::<Vec<_>>(),
            (0..10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn past_deadlines_fire_immediately() {
        let mut w = TimerWheel::new();
        assert!(drain(&mut w, 100).is_empty());
        w.insert(50, 1); // already past
        w.insert(100, 2); // exactly now
        assert_eq!(w.next_deadline(), Some(100), "due entries are due now");
        let fired = drain(&mut w, 100);
        assert_eq!(fired.len(), 2);
        assert_eq!(fired[0].1, 1);
        assert_eq!(fired[1].1, 2);
    }

    #[test]
    fn partial_advance_leaves_future_entries() {
        let mut w = TimerWheel::new();
        w.insert(10, 1);
        w.insert(1000, 2);
        let fired = drain(&mut w, 500);
        assert_eq!(fired, vec![(10, 1)]);
        assert_eq!(w.len(), 1);
        assert_eq!(drain(&mut w, 1000), vec![(1000, 2)]);
    }

    #[test]
    fn next_deadline_is_a_safe_lower_bound() {
        let mut w = TimerWheel::new();
        w.insert(7777, 1);
        let mut jumps = 0;
        while let Some(t) = w.next_deadline() {
            assert!(t <= 7777, "bound never overshoots the real deadline");
            let mut fired = Vec::new();
            w.advance(t, &mut fired);
            jumps += 1;
            assert!(jumps < 16, "bound must tighten, not loop");
            if !fired.is_empty() {
                assert_eq!(fired, vec![(7777, 1)]);
                break;
            }
        }
        assert!(w.is_empty());
    }

    #[test]
    fn cascades_preserve_exact_deadlines() {
        let mut w = TimerWheel::new();
        // Insert far-future entries, advance close, then past them: the
        // cascade through levels must not distort any deadline.
        for k in 0..50u32 {
            w.insert(100_000 + k as u64 * 37, k);
        }
        let early = drain(&mut w, 99_999);
        assert!(early.is_empty());
        let fired = drain(&mut w, 200_000);
        assert_eq!(fired.len(), 50);
        for &(d, k) in &fired {
            assert_eq!(d, 100_000 + k as u64 * 37);
        }
        let ticks: Vec<u64> = fired.iter().map(|&(d, _)| d).collect();
        let mut sorted = ticks.clone();
        sorted.sort_unstable();
        assert_eq!(ticks, sorted);
    }

    #[test]
    fn interleaved_insert_and_advance() {
        // A dense pacing-like workload: always re-arm 3 ticks out while
        // advancing 1 tick at a time.
        let mut w = TimerWheel::new();
        w.insert(3, 0);
        let mut fired_total = 0u32;
        for t in 1..=300u64 {
            let mut fired = Vec::new();
            w.advance(t, &mut fired);
            for &(d, k) in &fired {
                assert_eq!(d, t, "pacing timer fires exactly on schedule");
                fired_total += 1;
                if fired_total < 100 {
                    w.insert(t + 3, k + 1);
                }
            }
        }
        assert_eq!(fired_total, 100);
        assert!(w.is_empty());
    }

    #[test]
    fn next_deadline_is_exact_for_overflow_entries() {
        // The idle nap of a wall-clocked mux is capped at next_deadline:
        // when the earliest pending entry lives on the overflow list
        // (beyond the 2^24-tick hierarchy horizon), the bound must be
        // that entry's exact deadline, not a horizon-sized guess.
        let mut w = TimerWheel::new();
        let far = (1u64 << 24) + 12_345;
        w.insert(far, 0);
        assert_eq!(w.next_deadline(), Some(far));
        let farther = (1u64 << 30) + 7;
        w.insert(farther, 1);
        assert_eq!(w.next_deadline(), Some(far), "earliest overflow entry wins");
        w.insert(50, 2); // level 0: the bound is exact there too
        assert_eq!(w.next_deadline(), Some(50), "in-hierarchy entry wins");
    }

    #[test]
    fn far_deadline_cascades_preserve_fire_times() {
        // Property-style sweep: seeded pseudo-random deadlines spanning
        // every level AND the overflow list, advanced in pseudo-random
        // strides. Every entry must fire exactly at its own tick, in
        // deadline order, regardless of how the cascade path (including
        // overflow migration back into the hierarchy) chops the journey.
        let mut rng: u64 = 0x9E37_79B9;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut w = TimerWheel::new();
        let mut expected: Vec<(u64, u32)> = (0..96u32)
            .map(|k| {
                // Bias toward the far end: half the entries beyond the
                // 2^24 horizon (the overflow list), the rest spread
                // across the four hierarchy levels.
                let d = if k % 2 == 0 {
                    (1u64 << 24) + next() % (1u64 << 24)
                } else {
                    1 + next() % (1u64 << 24)
                };
                w.insert(d, k);
                (d, k)
            })
            .collect();
        expected.sort_by_key(|&(d, k)| (d, k));
        let horizon = expected.last().map(|&(d, _)| d).unwrap_or(0);
        let mut fired = Vec::new();
        let mut t = 0u64;
        while t < horizon {
            t += 1 + next() % ((1u64 << 23) + 1);
            // The advance target must respect the lower bound contract:
            // next_deadline never overshoots the true earliest entry.
            if let Some(bound) = w.next_deadline() {
                assert!(
                    bound <= expected[fired.len()].0,
                    "bound {bound} past true earliest {}",
                    expected[fired.len()].0
                );
            }
            w.advance(t.min(horizon), &mut fired);
        }
        assert!(w.is_empty());
        assert_eq!(fired.len(), expected.len());
        for (&(got_d, got_k), &(want_d, _)) in fired.iter().zip(&expected) {
            assert_eq!(got_d, want_d, "cascade distorted a deadline");
            let original = expected.iter().find(|&&(_, k)| k == got_k).unwrap().0;
            assert_eq!(got_d, original, "entry {got_k} fired off its deadline");
        }
    }

    #[test]
    fn len_tracks_hierarchy_overflow_and_due() {
        let mut w = TimerWheel::new();
        w.insert(0, 0); // due
        w.insert(10, 1); // level 0
        w.insert(1_000_000, 2); // level 3
        w.insert(1u64 << 40, 3); // overflow
        assert_eq!(w.len(), 4);
        drain(&mut w, 10);
        assert_eq!(w.len(), 2);
        drain(&mut w, 1u64 << 41);
        assert!(w.is_empty());
    }
}
