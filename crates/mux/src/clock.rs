//! The multiplexer's notion of time: a trait with a virtual
//! implementation (deterministic tests) and a wall implementation
//! (production).
//!
//! The mux never reads `Instant` directly — all waiting funnels through
//! [`MuxClock::advance_to`], which a [`VirtualClock`] satisfies by
//! *jumping* (zero wall time, perfectly reproducible) and a [`WallClock`]
//! by napping in bounded slices (so the I/O sweep keeps running between
//! naps). This is the same sans-io discipline the protocol machines
//! follow, applied to the runtime itself.

use std::time::Duration;

use pm_core::runtime::clamp_wait;
use pm_obs::Stopwatch;

/// Time source driving a [`Mux`](crate::Mux).
pub trait MuxClock {
    /// Seconds since the mux epoch.
    fn now(&self) -> f64;

    /// Move time toward `deadline` (seconds since epoch). Virtual clocks
    /// jump exactly; wall clocks sleep a bounded slice and may return
    /// early (the caller re-polls I/O and calls again). Must tolerate
    /// hostile inputs: a `NaN`, infinite or past deadline advances by at
    /// most one minimal step and never panics.
    fn advance_to(&mut self, deadline: f64);
}

/// Deterministic simulated time: starts at zero, moves only when told to.
///
/// Under a virtual clock the mux's whole schedule — pacing, backoff,
/// stall deadlines — becomes a pure function of the session set and the
/// transport contents, which is what lets tests pin byte-identical
/// transcripts across runs.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: f64,
}

impl VirtualClock {
    /// A clock at `t = 0`.
    pub fn new() -> Self {
        VirtualClock::default()
    }
}

impl MuxClock for VirtualClock {
    fn now(&self) -> f64 {
        self.now
    }

    fn advance_to(&mut self, deadline: f64) {
        if deadline.is_finite() && deadline > self.now {
            self.now = deadline;
        }
    }
}

/// Real time, read through the observability stopwatch.
///
/// `advance_to` naps at most `max_nap` per call so a far-out timer can
/// never blind the mux to arriving datagrams: the run loop re-polls every
/// endpoint between naps.
#[derive(Debug, Clone)]
pub struct WallClock {
    epoch: Stopwatch,
    max_nap: Duration,
}

impl WallClock {
    /// A clock whose epoch is now, napping at most 500µs at a time.
    pub fn new() -> Self {
        WallClock {
            epoch: Stopwatch::start(),
            max_nap: Duration::from_micros(500),
        }
    }

    /// Override the nap ceiling (coarser naps trade latency for CPU).
    pub fn with_max_nap(mut self, max_nap: Duration) -> Self {
        self.max_nap = max_nap.max(Duration::from_micros(1));
        self
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl MuxClock for WallClock {
    fn now(&self) -> f64 {
        self.epoch.now()
    }

    fn advance_to(&mut self, deadline: f64) {
        let nap = clamp_wait(
            deadline - self.now(),
            Duration::from_micros(20),
            self.max_nap,
        );
        std::thread::sleep(nap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_jumps_forward_only() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now(), 0.0);
        c.advance_to(1.5);
        assert_eq!(c.now(), 1.5);
        c.advance_to(1.0);
        assert_eq!(c.now(), 1.5, "never moves backwards");
        c.advance_to(f64::NAN);
        c.advance_to(f64::INFINITY);
        c.advance_to(f64::NEG_INFINITY);
        assert_eq!(c.now(), 1.5, "hostile deadlines are ignored");
    }

    #[test]
    fn wall_clock_naps_are_bounded() {
        let mut c = WallClock::new().with_max_nap(Duration::from_millis(1));
        let before = c.now();
        // An hour-out (and an infinite) deadline must return promptly.
        c.advance_to(before + 3600.0);
        c.advance_to(f64::INFINITY);
        c.advance_to(f64::NAN);
        let waited = c.now() - before;
        assert!(waited < 0.5, "bounded naps, waited {waited}s");
        assert!(c.now() >= before);
    }
}
