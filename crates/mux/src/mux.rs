//! The multiplexer proper: N sessions, one thread, zero blocking waits.
//!
//! Every wait the blocking drivers express as a timed `recv` or a sleep —
//! packet pacing, retry backoff, machine wakeups, the receiver poll
//! cadence — becomes a [`TimerWheel`] entry keyed by `(session, kind,
//! generation)`. Stall, linger and eviction deadlines stay what they are
//! in the blocking drivers: checks performed at the same cadence those
//! drivers perform them (every drive pass), so the two runtimes observe
//! identical timeout semantics.
//!
//! The run loop is three strokes per turn: sweep the socket set
//! ([`PollSet::poll_round`] — fairness-bounded, round-robin), fire due
//! timers ([`TimerWheel::advance`] — deadline order, FIFO within a tick),
//! and only when *both* came up empty, advance the clock toward the next
//! deadline. A hostile session can therefore cost its neighbors at most
//! its own bounded slice of each sweep — never a blocking wait.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use pm_core::error::ProtocolError;
use pm_core::receiver::ReceiverAction;
use pm_core::runtime::{
    absorb_feedback, clamp_wait, error_outcome, ReceiverMachine, ReceiverReport, ResilienceCore,
    RuntimeConfig, SenderMachine, SessionReport,
};
use pm_core::sender::SenderStep;
use pm_net::{Message, NetError, PollSet, PollTransport, Token};
use pm_obs::{
    Counter, Event, FlightRecorder, Gauge, Histogram, MetricsRegistry, Obs, Outcome, Postmortem,
    Recorder, Role, WindowTelemetry,
};

use crate::clock::MuxClock;
use crate::overload::{AdmissionError, OverloadConfig, OverloadPolicy, OverloadSignal};
use crate::wheel::TimerWheel;

/// Ceiling on a sender machine's requested wait (mirrors the blocking
/// driver's `WaitUntil` clamp).
const SENDER_WAIT_CEIL: Duration = Duration::from_millis(50);
/// Ceiling on the receiver poll cadence (mirrors the blocking driver).
const RECEIVER_WAIT_CEIL: Duration = Duration::from_millis(20);

/// Tuning knobs of a [`Mux`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MuxConfig {
    /// Timer-wheel granularity. Deadlines round up to the next tick, so
    /// this bounds both scheduling error and the idle nap length.
    pub tick: Duration,
    /// Datagrams drained per endpoint per sweep — the fairness bound: a
    /// flooding session yields the sweep after this many datagrams.
    pub poll_budget: usize,
    /// When set, every session gets a [`FlightRecorder`] ring of this
    /// capacity: its driver lifecycle and I/O events are retained, and a
    /// session ending degraded or errored leaves a [`Postmortem`]
    /// (attached to the degraded [`SessionReport`], collected via
    /// [`Mux::take_postmortems`] otherwise).
    pub flight_capacity: Option<usize>,
    /// When set, the mux runs under admission control and load shedding:
    /// per-turn budget accounting feeds an [`OverloadPolicy`], admission
    /// via [`Mux::try_add_sender`] / [`Mux::try_add_receiver`] is refused
    /// past the high-water mark, and sustained saturation sheds sessions
    /// with typed [`SessionOutcome::Shed`] outcomes.
    pub overload: Option<OverloadConfig>,
}

impl Default for MuxConfig {
    fn default() -> Self {
        MuxConfig {
            tick: Duration::from_micros(50),
            poll_budget: 32,
            flight_capacity: None,
            overload: None,
        }
    }
}

/// Which of a session's schedulable waits a timer entry represents.
///
/// Stall, linger and eviction are *not* timer kinds — they are deadline
/// checks made on every drive pass, exactly as the blocking drivers make
/// them on every loop turn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TimerKind {
    /// Inter-packet pacing gap after a successful transmit (sender).
    Pace,
    /// Machine-requested wakeup (`WaitUntil` for senders, the NAK/poll
    /// cadence for receivers).
    Wake,
    /// Retry backoff for a parked transmission.
    Retry,
}

/// Wheel key: token + kind + arming generation. Cancellation is lazy — a
/// fired entry whose generation no longer matches the session's current
/// one for that kind is simply stale and ignored.
#[derive(Debug, Clone, Copy)]
struct TimerKey {
    token: Token,
    kind: TimerKind,
    generation: u64,
}

/// The protocol machine a session wraps.
enum Engine {
    Sender(Box<dyn SenderMachine>),
    Receiver(Box<dyn ReceiverMachine>),
}

/// A transmission that hit a transient I/O failure and is waiting out its
/// retry backoff. While parked, the session transmits nothing else — the
/// same total order the blocking drivers' in-place retry loop enforces.
struct PendingSend {
    msg: Message,
    attempt: u32,
    keepalive: bool,
}

/// Per-session driver state: the machine plus everything the blocking
/// drivers keep in locals.
struct SessionState {
    token: Token,
    rt: RuntimeConfig,
    engine: Engine,
    res: ResilienceCore,
    /// Mux-clock time this session was added; machine time is relative
    /// to it, so every session starts at its own `t = 0` just as it
    /// would under a dedicated blocking driver.
    started: f64,
    /// Stall/linger clock (absolute mux time).
    last_progress: f64,
    /// Eviction clock (absolute mux time) — resets only on receiver
    /// liveness, see [`absorb_feedback`].
    last_liveness: f64,
    /// Last event that counted as progress (`Stalled` context).
    last_event: Option<Event>,
    pending: Option<PendingSend>,
    /// Receiver-side transmissions queued behind a parked retry.
    outbound: VecDeque<Message>,
    gen_pace: u64,
    gen_wake: u64,
    gen_retry: u64,
    /// True while a sender sits in `WaitUntil` with a Wake armed — the
    /// only state where fresh feedback warrants an immediate re-drive.
    wait_armed: bool,
    /// Drive passes consumed (the fairness unit).
    drives: u64,
    evicted_total: u32,
    /// The mux obs teed with this session's flight ring (or a plain
    /// clone of it when flight recording is off) — every session-scoped
    /// lifecycle/resilience event goes through here so the ring sees it.
    obs: Obs,
    /// Bounded event history for postmortems, when enabled.
    flight: Option<Arc<FlightRecorder>>,
}

impl SessionState {
    fn role(&self) -> Role {
        match self.engine {
            Engine::Sender(_) => Role::Sender,
            Engine::Receiver(_) => Role::Receiver,
        }
    }

    fn generation(&self, kind: TimerKind) -> u64 {
        match kind {
            TimerKind::Pace => self.gen_pace,
            TimerKind::Wake => self.gen_wake,
            TimerKind::Retry => self.gen_retry,
        }
    }

    fn generation_mut(&mut self, kind: TimerKind) -> &mut u64 {
        match kind {
            TimerKind::Pace => &mut self.gen_pace,
            TimerKind::Wake => &mut self.gen_wake,
            TimerKind::Retry => &mut self.gen_retry,
        }
    }
}

/// How a multiplexed session ended — the same reports and errors the
/// blocking drivers return.
// One outcome per session lifetime; the postmortem-carrying report is
// big, but this is never a hot-path value worth the Box indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum SessionOutcome {
    /// A sender session's result.
    Sender(Result<SessionReport, ProtocolError>),
    /// A receiver session's result.
    Receiver(Result<ReceiverReport, ProtocolError>),
    /// The session was shed by the overload policy: removed mid-flight,
    /// deliberately, to keep the rest of the farm on schedule. Not an
    /// error — graceful degradation with a typed report.
    Shed(ShedReport),
}

/// What the mux knows about a session it shed. The session never reached
/// a protocol outcome, so this carries the driver-side facts instead:
/// who it was, how far it got, and the overload that claimed it.
#[derive(Debug)]
pub struct ShedReport {
    /// Sender or receiver side.
    pub role: Role,
    /// The mux slot the session occupied.
    pub session: u32,
    /// Session-relative runtime at the moment of shedding.
    pub elapsed: Duration,
    /// Drive passes consumed before shedding (the fairness unit; the
    /// victim policy prefers the fewest).
    pub drives: u64,
    /// The rolling utilization estimate that sustained the overload.
    pub utilization: f64,
    /// The session's flight-recorder postmortem, when
    /// [`MuxConfig::flight_capacity`] is set.
    pub postmortem: Option<Postmortem>,
}

impl SessionOutcome {
    /// True when the session completed without a fatal error. A shed
    /// session did not complete: `false`, though [`Self::err`] is `None`
    /// too — shedding is its own third state.
    pub fn is_ok(&self) -> bool {
        match self {
            SessionOutcome::Sender(r) => r.is_ok(),
            SessionOutcome::Receiver(r) => r.is_ok(),
            SessionOutcome::Shed(_) => false,
        }
    }

    /// True when the overload policy shed this session.
    pub fn is_shed(&self) -> bool {
        matches!(self, SessionOutcome::Shed(_))
    }

    /// The shed report, if the overload policy shed this session.
    pub fn shed_report(&self) -> Option<&ShedReport> {
        match self {
            SessionOutcome::Shed(r) => Some(r),
            _ => None,
        }
    }

    /// The sender report, if this was a successful sender session.
    pub fn sender_report(&self) -> Option<&SessionReport> {
        match self {
            SessionOutcome::Sender(Ok(r)) => Some(r),
            _ => None,
        }
    }

    /// The receiver report, if this was a successful receiver session.
    pub fn receiver_report(&self) -> Option<&ReceiverReport> {
        match self {
            SessionOutcome::Receiver(Ok(r)) => Some(r),
            _ => None,
        }
    }

    /// The fatal error, if the session failed. Shed sessions carry no
    /// error: they were removed by policy, not by failure.
    pub fn err(&self) -> Option<&ProtocolError> {
        match self {
            SessionOutcome::Sender(Err(e)) | SessionOutcome::Receiver(Err(e)) => Some(e),
            _ => None,
        }
    }
}

/// Gauges and histograms a mux maintains when bound to a registry.
#[derive(Debug, Clone)]
pub struct MuxMetrics {
    /// `mux.active_sessions` — sessions currently live.
    pub active_sessions: Gauge,
    /// `mux.timer_wheel_depth` — pending timer entries after each turn.
    pub wheel_depth: Gauge,
    /// `mux.session_queue_depth` — datagrams drained from one endpoint in
    /// one sweep (per-session backlog distribution).
    pub queue_depth: Histogram,
    /// `mux.session_drives` — drive passes per finished session (the
    /// fairness histogram: under a fair mux, peer sessions draw similar
    /// counts).
    pub session_drives: Histogram,
    /// `sender.state_bytes_per_receiver` — sender-side per-receiver state
    /// footprint at completion (the paper's scalability argument: NP keeps
    /// this constant as `R` grows). Set when a sender session finishes.
    pub sender_state_bytes: Gauge,
    /// `mux.shed_sessions` — sessions the overload policy has shed.
    pub shed_sessions: Counter,
    /// `mux.admission_rejected` — sessions refused at admission.
    pub admission_rejected: Counter,
    /// `mux.utilization_permille` — the rolling poll-budget utilization
    /// estimate, in thousandths (gauges are integral).
    pub utilization_permille: Gauge,
}

impl MuxMetrics {
    /// Create (or re-attach to) the mux instrument family in `reg`.
    pub fn register(reg: &MetricsRegistry) -> Self {
        MuxMetrics {
            active_sessions: reg.gauge("mux.active_sessions"),
            wheel_depth: reg.gauge("mux.timer_wheel_depth"),
            queue_depth: reg.histogram("mux.session_queue_depth"),
            session_drives: reg.histogram("mux.session_drives"),
            sender_state_bytes: reg.gauge("sender.state_bytes_per_receiver"),
            shed_sessions: reg.counter("mux.shed_sessions"),
            admission_rejected: reg.counter("mux.admission_rejected"),
            utilization_permille: reg.gauge("mux.utilization_permille"),
        }
    }
}

/// What to do after the session-local part of an I/O event is absorbed.
#[allow(clippy::large_enum_variant)] // carries a SessionOutcome, see above
enum AfterIo {
    Nothing,
    Finish(SessionOutcome),
    DriveSender,
    DriveReceiver,
}

/// Result of flushing a receiver's outbound queue.
enum Flush {
    /// Everything went out.
    Clear,
    /// A transient failure parked a message; a Retry timer is armed.
    Parked,
    /// A fatal transport failure.
    Fatal(ProtocolError),
}

/// Event-driven session multiplexer: drives any number of concurrent
/// sender/receiver machines on the calling thread.
///
/// ```text
/// loop {                       // Mux::run
///     sockets.poll_round()     // fair I/O sweep   -> on_io per datagram
///     wheel.advance(now)       // due timers       -> drive / retry
///     if idle { clock.advance_to(next deadline) }  // the ONLY wait
/// }
/// ```
pub struct Mux<T: PollTransport, C: MuxClock> {
    cfg: MuxConfig,
    tick_secs: f64,
    clock: C,
    wheel: TimerWheel<TimerKey>,
    sockets: PollSet<T>,
    /// Dense session table indexed by `Token::slot`.
    sessions: Vec<Option<SessionState>>,
    live: usize,
    obs: Obs,
    metrics: Option<MuxMetrics>,
    telemetry: Option<Arc<WindowTelemetry>>,
    outcomes: Vec<(Token, SessionOutcome)>,
    postmortems: Vec<(Token, Postmortem)>,
    io_sink: Vec<(Token, Result<Message, NetError>)>,
    fired: Vec<(u64, TimerKey)>,
    /// Admission control + shedding, when [`MuxConfig::overload`] is set.
    policy: Option<OverloadPolicy>,
    /// Drive passes taken this turn (half of the turn budget; datagrams
    /// drained are the other half).
    turn_drives: usize,
    /// Sessions shed over this mux's lifetime (the reconciliation ledger
    /// count, mirrored by the `mux.shed_sessions` counter and the
    /// `mux_session_shed` trace census).
    shed_total: u64,
}

impl<T: PollTransport, C: MuxClock> Mux<T, C> {
    /// An empty mux over `clock`.
    pub fn new(cfg: MuxConfig, clock: C) -> Self {
        let tick_secs = cfg.tick.max(Duration::from_nanos(1)).as_secs_f64();
        Mux {
            cfg,
            tick_secs,
            clock,
            wheel: TimerWheel::new(),
            sockets: PollSet::new(),
            sessions: Vec::new(),
            live: 0,
            obs: Obs::null(),
            metrics: None,
            telemetry: None,
            outcomes: Vec::new(),
            postmortems: Vec::new(),
            io_sink: Vec::new(),
            fired: Vec::new(),
            policy: cfg.overload.map(OverloadPolicy::new),
            turn_drives: 0,
            shed_total: 0,
        }
    }

    /// Emit runtime lifecycle events to `obs`.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Maintain mux gauges/histograms in `reg`.
    pub fn bind_metrics(&mut self, reg: &MetricsRegistry) {
        let m = MuxMetrics::register(reg);
        m.active_sessions.set(self.live as i64);
        self.metrics = Some(m);
    }

    /// Feed farm-level samples (currently the timer-wheel depth, after
    /// every turn) into a windowed-telemetry instance. Tee the same
    /// instance into the machines' and transports' obs handles to get
    /// their event streams windowed too.
    pub fn bind_telemetry(&mut self, telemetry: Arc<WindowTelemetry>) {
        self.telemetry = Some(telemetry);
    }

    /// Postmortems of sessions that ended with an error since the last
    /// call (degraded sender sessions carry theirs on the
    /// [`SessionReport`] instead). Empty unless
    /// [`MuxConfig::flight_capacity`] is set.
    pub fn take_postmortems(&mut self) -> Vec<(Token, Postmortem)> {
        std::mem::take(&mut self.postmortems)
    }

    /// Sessions currently live.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no session is live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Pending timer entries (the wheel-depth gauge, readable directly).
    pub fn wheel_depth(&self) -> usize {
        self.wheel.len()
    }

    /// The mux clock, for inspection.
    pub fn clock(&self) -> &C {
        &self.clock
    }

    /// The rolling utilization estimate (0.0 when overload control is
    /// off — an unbudgeted mux never reports pressure).
    pub fn utilization(&self) -> f64 {
        self.policy
            .as_ref()
            .map_or(0.0, OverloadPolicy::utilization)
    }

    /// True while the overload policy is in a declared overload episode.
    pub fn overloaded(&self) -> bool {
        self.policy.as_ref().is_some_and(OverloadPolicy::overloaded)
    }

    /// Sessions shed over this mux's lifetime.
    pub fn shed_count(&self) -> u64 {
        self.shed_total
    }

    /// Admission-checked [`Mux::add_sender`]: refused with a typed
    /// [`AdmissionError`] (and a `mux_admission_rejected` event) when the
    /// overload policy says the mux cannot take more work. Without an
    /// [`MuxConfig::overload`] config, admission always succeeds.
    ///
    /// # Errors
    /// [`AdmissionError`] past the high-water mark or the session cap.
    pub fn try_add_sender<M: SenderMachine + 'static>(
        &mut self,
        machine: M,
        transport: T,
        rt: RuntimeConfig,
    ) -> Result<Token, AdmissionError> {
        self.admit(Role::Sender)?;
        Ok(self.add_sender(machine, transport, rt))
    }

    /// Admission-checked [`Mux::add_receiver`]; see [`Mux::try_add_sender`].
    ///
    /// # Errors
    /// [`AdmissionError`] past the high-water mark or the session cap.
    pub fn try_add_receiver<M: ReceiverMachine + 'static>(
        &mut self,
        machine: M,
        transport: T,
        rt: RuntimeConfig,
    ) -> Result<Token, AdmissionError> {
        self.admit(Role::Receiver)?;
        Ok(self.add_receiver(machine, transport, rt))
    }

    fn admit(&mut self, role: Role) -> Result<(), AdmissionError> {
        let Some(policy) = &self.policy else {
            return Ok(());
        };
        match policy.admit(self.live) {
            Ok(()) => Ok(()),
            Err(e) => {
                let active = self.live as u32;
                let utilization = policy.utilization();
                // The refused session never got a slot; label the event
                // with the next fresh one as a prospective id.
                let session = self.sessions.len() as u32;
                self.obs
                    .emit(self.clock.now(), || Event::MuxAdmissionRejected {
                        session,
                        role,
                        active,
                        utilization,
                    });
                if let Some(m) = &self.metrics {
                    m.admission_rejected.inc();
                }
                Err(e)
            }
        }
    }

    /// Add a sender session; it is driven from the next turn on.
    pub fn add_sender<M: SenderMachine + 'static>(
        &mut self,
        machine: M,
        transport: T,
        rt: RuntimeConfig,
    ) -> Token {
        self.add_session(
            Engine::Sender(Box::new(machine)),
            transport,
            rt,
            TimerKind::Pace,
        )
    }

    /// Add a receiver session; it is driven from the next turn on.
    pub fn add_receiver<M: ReceiverMachine + 'static>(
        &mut self,
        machine: M,
        transport: T,
        rt: RuntimeConfig,
    ) -> Token {
        self.add_session(
            Engine::Receiver(Box::new(machine)),
            transport,
            rt,
            TimerKind::Wake,
        )
    }

    fn add_session(
        &mut self,
        engine: Engine,
        transport: T,
        rt: RuntimeConfig,
        first: TimerKind,
    ) -> Token {
        let token = self.sockets.register(transport);
        let slot = token.slot();
        if self.sessions.len() <= slot {
            self.sessions.resize_with(slot + 1, || None);
        }
        let now_abs = self.clock.now();
        let (obs, flight) = match self.cfg.flight_capacity {
            Some(cap) => {
                let ring = Arc::new(FlightRecorder::new(cap));
                (self.obs.tee(ring.clone()), Some(ring))
            }
            None => (self.obs.clone(), None),
        };
        let mut sess = SessionState {
            token,
            rt,
            res: ResilienceCore::new(rt.resilience),
            engine,
            started: now_abs,
            last_progress: now_abs,
            last_liveness: now_abs,
            last_event: None,
            pending: None,
            outbound: VecDeque::new(),
            gen_pace: 0,
            gen_wake: 0,
            gen_retry: 0,
            wait_armed: false,
            drives: 0,
            evicted_total: 0,
            obs,
            flight,
        };
        let role = sess.role();
        // First drive is due immediately: the entry lands in the wheel's
        // due queue and fires on the next advance, before time moves.
        let at = self.wheel.now();
        arm_at(&mut self.wheel, &mut sess, first, at);
        self.sessions[slot] = Some(sess);
        self.live += 1;
        let active = self.live as u32;
        self.obs.emit(now_abs, || Event::MuxSessionAdded {
            session: slot as u32,
            role,
            active,
        });
        if let Some(m) = &self.metrics {
            m.active_sessions.set(self.live as i64);
        }
        token
    }

    /// Drive every session to its end and return the outcomes in
    /// completion order, tagged by token.
    pub fn run(&mut self) -> Vec<(Token, SessionOutcome)> {
        while self.live > 0 {
            self.turn();
        }
        std::mem::take(&mut self.outcomes)
    }

    /// One scheduler turn, for callers that interleave driving with their
    /// own work (churn harnesses adding and removing sessions mid-run).
    /// Outcomes accumulate; drain them with [`Mux::take_outcomes`].
    pub fn turn_once(&mut self) {
        self.turn();
    }

    /// Outcomes of sessions finished since the last call (or since the
    /// last [`Mux::run`], which drains them itself).
    pub fn take_outcomes(&mut self) -> Vec<(Token, SessionOutcome)> {
        std::mem::take(&mut self.outcomes)
    }

    /// One scheduler turn: I/O sweep, due timers, then — only if both
    /// were empty — one bounded clock advance toward the next deadline.
    fn turn(&mut self) {
        self.turn_drives = 0;
        // 1. Fair I/O sweep over every live endpoint.
        let mut sink = std::mem::take(&mut self.io_sink);
        sink.clear();
        let got = self.sockets.poll_round(self.cfg.poll_budget, &mut sink);
        if let Some(m) = &self.metrics {
            // poll_round drains each endpoint contiguously, so run
            // lengths are per-session backlog depths.
            let mut run = 0u64;
            let mut cur: Option<Token> = None;
            for (tok, _) in &sink {
                if cur == Some(*tok) {
                    run += 1;
                } else {
                    if cur.is_some() {
                        m.queue_depth.record(run);
                    }
                    cur = Some(*tok);
                    run = 1;
                }
            }
            if cur.is_some() {
                m.queue_depth.record(run);
            }
        }
        for (token, outcome) in sink.drain(..) {
            self.on_io(token, outcome);
        }
        self.io_sink = sink;

        // 2. Fire timers due at the current tick.
        let now_tick = self.tick_of(self.clock.now());
        let mut fired = std::mem::take(&mut self.fired);
        fired.clear();
        self.wheel.advance(now_tick, &mut fired);
        let n_fired = fired.len();
        for (_, key) in fired.drain(..) {
            self.on_fired(key);
        }
        self.fired = fired;

        // Budget accounting: how much of this turn's capacity (datagrams
        // per sweep, drive passes per turn) the population consumed,
        // folded into the policy's rolling estimate.
        let io_capacity = (self.live.max(1) * self.cfg.poll_budget.max(1)) as f64;
        let turn_drives = self.turn_drives;
        let signal = self.policy.as_mut().map(|policy| {
            let io_frac = got as f64 / io_capacity;
            let drive_frac = turn_drives as f64 / policy.config().drive_budget.max(1) as f64;
            (
                policy.observe(io_frac.max(drive_frac)),
                policy.utilization(),
            )
        });
        if let Some((signal, utilization)) = signal {
            let now_abs = self.clock.now();
            let active = self.live as u32;
            match signal {
                OverloadSignal::Nominal => {}
                OverloadSignal::Entered => {
                    self.obs.emit(now_abs, || Event::MuxOverload {
                        active,
                        utilization,
                    });
                }
                OverloadSignal::Cleared => {
                    self.obs.emit(now_abs, || Event::MuxOverloadCleared {
                        active,
                        utilization,
                    });
                }
                OverloadSignal::Shedding => self.shed_victims(utilization),
            }
            if let Some(m) = &self.metrics {
                m.utilization_permille.set((utilization * 1000.0) as i64);
            }
        }

        // 3. Quiescent: advance time toward the next deadline. This is
        // the only place the mux waits, and it waits for the *earliest*
        // deadline across every session — never for one session's sake.
        // `next_deadline` is exact even for entries parked on the
        // overflow list beyond the wheel horizon, and the advance goes
        // *to* the deadline, not a tick past it: under a `WallClock`
        // that difference is a real oversleep on every idle nap.
        if got == 0 && n_fired == 0 && self.live > 0 {
            let now = self.clock.now();
            let target = match self.wheel.next_deadline() {
                Some(t) => {
                    let deadline = t as f64 * self.tick_secs;
                    if deadline > now {
                        deadline
                    } else {
                        now + self.tick_secs
                    }
                }
                None => now + self.tick_secs,
            };
            self.clock.advance_to(target);
        }

        if let Some(m) = &self.metrics {
            m.wheel_depth.set(self.wheel.len() as i64);
        }
        if let Some(tel) = &self.telemetry {
            tel.set_wheel_depth(self.clock.now(), self.wheel.len() as u64);
        }
    }

    /// Seconds-to-tick, rounded to nearest: round-tripping a tick through
    /// `f64` seconds and back must be the identity, or a virtual clock
    /// that jumped to "tick 100 exactly" could land on tick 99 and strand
    /// the wheel one tick short of its deadline forever.
    fn tick_of(&self, secs: f64) -> u64 {
        let t = secs / self.tick_secs;
        if t.is_finite() && t > 0.0 {
            t.round() as u64
        } else {
            0
        }
    }

    /// Absorb one datagram (or per-endpoint receive error) for a session.
    fn on_io(&mut self, token: Token, outcome: Result<Message, NetError>) {
        let now_abs = self.clock.now();
        let after = {
            let Some(sess) = self
                .sessions
                .get_mut(token.slot())
                .and_then(|s| s.as_mut())
                .filter(|s| s.token == token)
            else {
                // Session already finished this sweep; late datagrams for
                // a retired slot are dropped, as a closed socket would.
                return;
            };
            let now_rel = now_abs - sess.started;
            // pm-audit: allow(hot-loop-alloc): obs handle clone is a refcount bump
            let sess_obs = sess.obs.clone();
            match sess.res.absorb_recv(outcome.map(Some), now_rel, &sess_obs) {
                // Quarantine or fatal transport error: abort with the
                // typed error and no session_end event, exactly like the
                // blocking drivers' error path.
                Err(e) => AfterIo::Finish(match sess.engine {
                    Engine::Sender(_) => SessionOutcome::Sender(Err(e)),
                    Engine::Receiver(_) => SessionOutcome::Receiver(Err(e)),
                }),
                // Recoverable damage absorbed: counted, not progress.
                Ok(None) => AfterIo::Nothing,
                Ok(Some(msg)) => {
                    sess.last_progress = now_abs;
                    sess.last_event = Some(Event::NetRecv {
                        kind: msg.obs_kind(),
                    });
                    if let Some(ring) = &sess.flight {
                        ring.record(
                            now_rel,
                            &Event::NetRecv {
                                kind: msg.obs_kind(),
                            },
                        );
                    }
                    match &mut sess.engine {
                        Engine::Sender(machine) => {
                            match absorb_feedback(machine.as_mut(), &msg, now_rel) {
                                Err(e) => AfterIo::Finish(SessionOutcome::Sender(Err(e))),
                                Ok(lively) => {
                                    if lively {
                                        sess.last_liveness = now_abs;
                                    }
                                    // Feedback while parked in WaitUntil
                                    // may change the machine's plan (a NAK
                                    // wants repairs *now*): cancel the
                                    // armed Wake and re-drive immediately.
                                    // The generation bump is what prevents
                                    // the stale Wake from later double-
                                    // driving alongside the new schedule.
                                    if sess.wait_armed && sess.pending.is_none() {
                                        sess.gen_wake += 1;
                                        sess.wait_armed = false;
                                        AfterIo::DriveSender
                                    } else {
                                        AfterIo::Nothing
                                    }
                                }
                            }
                        }
                        Engine::Receiver(machine) => match machine.handle(&msg, now_rel) {
                            Err(e) => AfterIo::Finish(SessionOutcome::Receiver(Err(e))),
                            Ok(actions) => {
                                for action in actions {
                                    if let ReceiverAction::Send(m) = action {
                                        sess.outbound.push_back(m);
                                    }
                                }
                                AfterIo::DriveReceiver
                            }
                        },
                    }
                }
            }
        };
        match after {
            AfterIo::Nothing => {}
            AfterIo::Finish(o) => self.finish(token, o),
            AfterIo::DriveSender => self.drive_sender_session(token),
            AfterIo::DriveReceiver => self.drive_receiver_session(token),
        }
    }

    /// Dispatch one fired timer entry, dropping stale generations.
    fn on_fired(&mut self, key: TimerKey) {
        let Some(is_sender) = self
            .sessions
            .get(key.token.slot())
            .and_then(|s| s.as_ref())
            .filter(|s| s.token == key.token && s.generation(key.kind) == key.generation)
            .map(|s| matches!(s.engine, Engine::Sender(_)))
        else {
            return; // lazily cancelled or session gone
        };
        match key.kind {
            TimerKind::Retry => self.fire_retry(key.token),
            TimerKind::Pace | TimerKind::Wake => {
                if is_sender {
                    self.drive_sender_session(key.token);
                } else {
                    self.drive_receiver_session(key.token);
                }
            }
        }
    }

    /// One sender drive pass: the body of `drive_sender_obs`'s loop, with
    /// every wait turned into a timer. Exits after arming exactly one of
    /// Pace/Wake/Retry, or finishes the session.
    fn drive_sender_session(&mut self, token: Token) {
        let now_abs = self.clock.now();
        let tick = self.cfg.tick;
        let Mux {
            sessions,
            sockets,
            wheel,
            metrics,
            turn_drives,
            ..
        } = self;
        let outcome = 'drive: {
            let Some(sess) = sessions
                .get_mut(token.slot())
                .and_then(|s| s.as_mut())
                .filter(|s| s.token == token)
            else {
                break 'drive None;
            };
            if sess.pending.is_some() {
                break 'drive None; // parked on a retry; Retry timer owns us
            }
            sess.drives += 1;
            *turn_drives += 1;
            // pm-audit: allow(hot-loop-alloc): obs handle clone is a refcount bump
            let obs = sess.obs.clone();
            loop {
                let now_rel = now_abs - sess.started;
                let Engine::Sender(machine) = &mut sess.engine else {
                    break 'drive None;
                };
                // Graceful degradation, checked on every drive — not only
                // when the machine goes idle (the blocking drivers' hoisted
                // check): a carousel pinned in back-to-back transmits
                // evicts exactly as promptly as an idle sender.
                if let Some(deadline) = sess.rt.resilience.eviction_timeout {
                    let quiet = now_abs - sess.last_liveness;
                    if quiet > deadline.as_secs_f64()
                        && machine.outstanding() > 0
                        && machine.done_count() > 0
                    {
                        let evicted = machine.evict_outstanding();
                        if evicted > 0 {
                            sess.evicted_total += evicted;
                            let completed = machine.done_count() as u32;
                            obs.emit(now_rel, || Event::ReceiverEvicted { evicted, completed });
                            sess.last_progress = now_abs;
                            sess.last_liveness = now_abs;
                            continue;
                        }
                    }
                }
                match machine.next_step(now_rel) {
                    SenderStep::Finished => {
                        let end = if sess.evicted_total > 0 {
                            Outcome::Degraded
                        } else {
                            Outcome::Completed
                        };
                        obs.emit(now_rel, || Event::SessionEnd {
                            role: Role::Sender,
                            outcome: end,
                        });
                        if let Some(m) = metrics.as_ref() {
                            let done = machine.done_count().max(1);
                            m.sender_state_bytes
                                .set((machine.state_bytes() / done) as i64);
                        }
                        break 'drive Some(SessionOutcome::Sender(Ok(SessionReport {
                            counters: *machine.counters(),
                            elapsed: elapsed_of(now_rel),
                            completed: machine.done_ids(),
                            evicted: sess.evicted_total,
                            corrupt_dropped: sess.res.corrupt_dropped(),
                            send_retries: sess.res.send_retries(),
                            postmortem: None,
                        })));
                    }
                    SenderStep::Transmit(msg) => {
                        let keepalive = matches!(msg, Message::Announce { .. });
                        let Some(transport) = sockets.get_mut(token) else {
                            break 'drive Some(SessionOutcome::Sender(
                                Err(NetError::Closed.into()),
                            ));
                        };
                        match transport.send(&msg) {
                            Ok(()) => {
                                if !keepalive {
                                    sess.last_progress = now_abs;
                                    sess.last_event = Some(Event::NetSent {
                                        kind: msg.obs_kind(),
                                    });
                                    if let Some(ring) = &sess.flight {
                                        ring.record(
                                            now_rel,
                                            &Event::NetSent {
                                                kind: msg.obs_kind(),
                                            },
                                        );
                                    }
                                }
                                sess.wait_armed = false;
                                let spacing = sess.rt.packet_spacing;
                                arm(wheel, sess, TimerKind::Pace, spacing, tick);
                                break 'drive None;
                            }
                            Err(NetError::Io(_)) if sess.res.policy().send_retries > 0 => {
                                let backoff = sess.res.retry_backoff(1, now_rel, &obs);
                                sess.pending = Some(PendingSend {
                                    msg,
                                    attempt: 1,
                                    keepalive,
                                });
                                sess.wait_armed = false;
                                arm(wheel, sess, TimerKind::Retry, backoff, tick);
                                break 'drive None;
                            }
                            Err(e) => break 'drive Some(SessionOutcome::Sender(Err(e.into()))),
                        }
                    }
                    SenderStep::WaitUntil(t) => {
                        let idle = now_abs - sess.last_progress;
                        if idle > sess.rt.stall_timeout.as_secs_f64() {
                            obs.emit(now_rel, || Event::StallTimeout {
                                role: Role::Sender,
                                waited_secs: idle,
                            });
                            obs.emit(now_rel, || Event::SessionEnd {
                                role: Role::Sender,
                                outcome: Outcome::Stalled,
                            });
                            break 'drive Some(SessionOutcome::Sender(Err(
                                ProtocolError::Stalled {
                                    waited_secs: idle,
                                    // pm-audit: allow(hot-loop-alloc): terminal error path, not per-packet
                                    last_progress: sess.last_event.clone(),
                                },
                            )));
                        }
                        let wait = clamp_wait(t - now_rel, tick, SENDER_WAIT_CEIL);
                        sess.wait_armed = true;
                        arm(wheel, sess, TimerKind::Wake, wait, tick);
                        break 'drive None;
                    }
                }
            }
        };
        if let Some(o) = outcome {
            self.finish(token, o);
        }
    }

    /// One receiver drive pass: fire machine timers, flush outbound,
    /// run the end-of-session checks, re-arm the poll cadence.
    fn drive_receiver_session(&mut self, token: Token) {
        let now_abs = self.clock.now();
        let tick = self.cfg.tick;
        let Mux {
            sessions,
            sockets,
            wheel,
            turn_drives,
            ..
        } = self;
        let outcome = 'drive: {
            let Some(sess) = sessions
                .get_mut(token.slot())
                .and_then(|s| s.as_mut())
                .filter(|s| s.token == token)
            else {
                break 'drive None;
            };
            if sess.pending.is_some() {
                break 'drive None; // parked on a retry; Retry timer owns us
            }
            sess.drives += 1;
            *turn_drives += 1;
            let now_rel = now_abs - sess.started;
            let actions = {
                let Engine::Receiver(machine) = &mut sess.engine else {
                    break 'drive None;
                };
                machine.on_timer(now_rel)
            };
            for action in actions {
                if let ReceiverAction::Send(m) = action {
                    sess.outbound.push_back(m);
                }
            }
            match flush_outbound(sess, sockets, wheel, tick, now_abs) {
                Flush::Parked => break 'drive None,
                Flush::Fatal(e) => break 'drive Some(SessionOutcome::Receiver(Err(e))),
                Flush::Clear => {}
            }
            if let Some(done) = receiver_checks(sess, now_abs) {
                break 'drive Some(done);
            }
            let deadline = {
                let Engine::Receiver(machine) = &sess.engine else {
                    break 'drive None;
                };
                machine.next_deadline()
            };
            let wait = match deadline {
                Some(d) => clamp_wait(d - now_rel, tick, RECEIVER_WAIT_CEIL),
                None => RECEIVER_WAIT_CEIL,
            };
            arm(wheel, sess, TimerKind::Wake, wait, tick);
            None
        };
        if let Some(o) = outcome {
            self.finish(token, o);
        }
    }

    /// A Retry timer fired: re-attempt the parked transmission.
    fn fire_retry(&mut self, token: Token) {
        let now_abs = self.clock.now();
        let tick = self.cfg.tick;
        let after = {
            let Mux {
                sessions,
                sockets,
                wheel,
                ..
            } = self;
            let Some(sess) = sessions
                .get_mut(token.slot())
                .and_then(|s| s.as_mut())
                .filter(|s| s.token == token)
            else {
                return;
            };
            let Some(mut pending) = sess.pending.take() else {
                return;
            };
            let now_rel = now_abs - sess.started;
            let sent = match sockets.get_mut(token) {
                Some(transport) => transport.send(&pending.msg),
                None => Err(NetError::Closed),
            };
            match sent {
                Ok(()) => {
                    if !pending.keepalive {
                        sess.last_progress = now_abs;
                        sess.last_event = Some(Event::NetSent {
                            kind: pending.msg.obs_kind(),
                        });
                        if let Some(ring) = &sess.flight {
                            ring.record(
                                now_rel,
                                &Event::NetSent {
                                    kind: pending.msg.obs_kind(),
                                },
                            );
                        }
                    }
                    match sess.engine {
                        Engine::Sender(_) => {
                            // The send finally landed: resume pacing from
                            // here, as the blocking driver does after its
                            // in-place retry loop returns.
                            let spacing = sess.rt.packet_spacing;
                            arm(wheel, sess, TimerKind::Pace, spacing, tick);
                            AfterIo::Nothing
                        }
                        Engine::Receiver(_) => AfterIo::DriveReceiver,
                    }
                }
                Err(NetError::Io(_)) if pending.attempt < sess.res.policy().send_retries => {
                    pending.attempt += 1;
                    // pm-audit: allow(hot-loop-alloc): obs handle clone is a refcount bump
                    let sess_obs = sess.obs.clone();
                    let backoff = sess.res.retry_backoff(pending.attempt, now_rel, &sess_obs);
                    sess.pending = Some(pending);
                    arm(wheel, sess, TimerKind::Retry, backoff, tick);
                    AfterIo::Nothing
                }
                Err(e) => AfterIo::Finish(match sess.role() {
                    Role::Sender => SessionOutcome::Sender(Err(e.into())),
                    Role::Receiver => SessionOutcome::Receiver(Err(e.into())),
                }),
            }
        };
        match after {
            AfterIo::Nothing => {}
            AfterIo::Finish(o) => self.finish(token, o),
            AfterIo::DriveReceiver => self.drive_receiver_session(token),
            AfterIo::DriveSender => self.drive_sender_session(token),
        }
    }

    /// Shed up to `max_shed_per_turn` victims by the policy's
    /// deterministic priority: newest session first, then fewest drives,
    /// then the seeded tie-break. Each victim ends with a typed
    /// [`SessionOutcome::Shed`] carrying its runtime facts (and its
    /// postmortem, attached in [`Mux::finish`] when flight recording is
    /// on) — never a stall, never a panic.
    fn shed_victims(&mut self, utilization: f64) {
        let Some(policy) = &self.policy else {
            return;
        };
        let quota = policy.config().max_shed_per_turn.min(self.live);
        if quota == 0 {
            return;
        }
        let mut candidates: Vec<((u64, u64, u64), Token)> = self
            .sessions
            .iter()
            .flatten()
            .map(|s| {
                (
                    policy.victim_key(s.token.slot(), s.started, s.drives),
                    s.token,
                )
            })
            .collect();
        // Larger key = higher victim priority.
        candidates.sort_by(|a, b| b.cmp(a));
        let victims: Vec<Token> = candidates.into_iter().take(quota).map(|(_, t)| t).collect();
        for token in victims {
            self.shed(token, utilization);
        }
    }

    fn shed(&mut self, token: Token, utilization: f64) {
        let now_abs = self.clock.now();
        let Some(sess) = self
            .sessions
            .get(token.slot())
            .and_then(|s| s.as_ref())
            .filter(|s| s.token == token)
        else {
            return;
        };
        let role = sess.role();
        let drives = sess.drives;
        let slot = token.slot() as u32;
        let report = ShedReport {
            role,
            session: slot,
            elapsed: elapsed_of(now_abs - sess.started),
            drives,
            utilization,
            postmortem: None,
        };
        self.shed_total += 1;
        if let Some(m) = &self.metrics {
            m.shed_sessions.inc();
        }
        let active = (self.live - 1) as u32;
        self.obs.emit(now_abs, || Event::MuxSessionShed {
            session: slot,
            role,
            active,
            drives,
            utilization,
        });
        self.finish(token, SessionOutcome::Shed(report));
    }

    /// Retire a session: drop its transport, record its outcome, emit the
    /// lifecycle event, and freeze a postmortem when the flight ring is on
    /// and the ending warrants one. Outstanding wheel entries die by
    /// staleness.
    fn finish(&mut self, token: Token, mut outcome: SessionOutcome) {
        let slot = token.slot();
        let Some(entry) = self.sessions.get_mut(slot) else {
            return;
        };
        let Some(sess) = entry.take() else {
            return;
        };
        if sess.token != token {
            *entry = Some(sess);
            return;
        }
        drop(self.sockets.deregister(token));
        self.live -= 1;
        let now_abs = self.clock.now();
        let role = sess.role();
        let drives = sess.drives;
        let active = self.live as u32;
        if let Some(ring) = &sess.flight {
            match &mut outcome {
                // Degraded-but-ok sender: the artifact travels on the
                // report, exactly as the blocking `drive_sender_flight`
                // attaches it.
                SessionOutcome::Sender(Ok(report)) if report.is_degraded() => {
                    report.postmortem =
                        Some(ring.postmortem(role.as_str(), "degraded", Some(slot as u32)));
                }
                // Errored either side: no report to carry it — ledger it
                // for `take_postmortems`.
                SessionOutcome::Sender(Err(e)) | SessionOutcome::Receiver(Err(e)) => {
                    let pm = ring.postmortem(role.as_str(), error_outcome(e), Some(slot as u32));
                    self.postmortems.push((token, pm));
                }
                // Shed: the typed report is the carrier, like a degraded
                // sender's — the caller gets the artifact with the verdict.
                SessionOutcome::Shed(report) => {
                    report.postmortem =
                        Some(ring.postmortem(role.as_str(), "shed", Some(slot as u32)));
                }
                _ => {}
            }
        }
        self.obs.emit(now_abs, || Event::MuxSessionEnded {
            session: slot as u32,
            role,
            active,
            drives,
        });
        if let Some(m) = &self.metrics {
            m.active_sessions.set(self.live as i64);
            m.session_drives.record(drives);
        }
        if let Some(tel) = &self.telemetry {
            tel.retire_session(slot as u32);
        }
        self.outcomes.push((token, outcome));
    }
}

/// Session-relative seconds → report duration, total over hostile floats.
fn elapsed_of(now_rel: f64) -> Duration {
    if now_rel.is_finite() && now_rel > 0.0 {
        Duration::try_from_secs_f64(now_rel).unwrap_or_default()
    } else {
        Duration::ZERO
    }
}

/// Ceil a delay to whole ticks, at least one: a timer never fires early,
/// and "now" is never a valid future deadline.
fn ticks_for(tick: Duration, delay: Duration) -> u64 {
    let t = tick.as_nanos().max(1);
    let ticks = delay.as_nanos().div_ceil(t).max(1);
    u64::try_from(ticks).unwrap_or(u64::MAX)
}

/// Arm (or re-arm) `kind` for `sess` at `delay` from now. Bumping the
/// generation first makes any previously armed entry of the same kind
/// stale — cancellation without touching the wheel.
fn arm(
    wheel: &mut TimerWheel<TimerKey>,
    sess: &mut SessionState,
    kind: TimerKind,
    delay: Duration,
    tick: Duration,
) {
    let at = wheel.now().saturating_add(ticks_for(tick, delay));
    arm_at(wheel, sess, kind, at);
}

fn arm_at(wheel: &mut TimerWheel<TimerKey>, sess: &mut SessionState, kind: TimerKind, at: u64) {
    let generation = sess.generation_mut(kind);
    *generation += 1;
    let generation = *generation;
    wheel.insert(
        at,
        TimerKey {
            token: sess.token,
            kind,
            generation,
        },
    );
}

/// Send everything in a receiver's outbound queue, parking on the first
/// transient failure (mirrors `ResilienceState::send` plus the blocking
/// receiver's one-message-at-a-time flush).
fn flush_outbound<T: PollTransport>(
    sess: &mut SessionState,
    sockets: &mut PollSet<T>,
    wheel: &mut TimerWheel<TimerKey>,
    tick: Duration,
    now_abs: f64,
) -> Flush {
    while let Some(msg) = sess.outbound.pop_front() {
        let Some(transport) = sockets.get_mut(sess.token) else {
            return Flush::Fatal(NetError::Closed.into());
        };
        match transport.send(&msg) {
            Ok(()) => {
                sess.last_progress = now_abs;
                sess.last_event = Some(Event::NetSent {
                    kind: msg.obs_kind(),
                });
                if let Some(ring) = &sess.flight {
                    ring.record(
                        now_abs - sess.started,
                        &Event::NetSent {
                            kind: msg.obs_kind(),
                        },
                    );
                }
            }
            Err(NetError::Io(_)) if sess.res.policy().send_retries > 0 => {
                let now_rel = now_abs - sess.started;
                let sess_obs = sess.obs.clone();
                let backoff = sess.res.retry_backoff(1, now_rel, &sess_obs);
                sess.pending = Some(PendingSend {
                    msg,
                    attempt: 1,
                    keepalive: false,
                });
                arm(wheel, sess, TimerKind::Retry, backoff, tick);
                return Flush::Parked;
            }
            Err(e) => return Flush::Fatal(e.into()),
        }
    }
    Flush::Clear
}

/// The blocking receiver driver's end-of-loop checks: FIN, linger, stall.
fn receiver_checks(sess: &mut SessionState, now_abs: f64) -> Option<SessionOutcome> {
    let obs = sess.obs.clone();
    let now_rel = now_abs - sess.started;
    let corrupt_dropped = sess.res.corrupt_dropped();
    let Engine::Receiver(machine) = &sess.engine else {
        return None;
    };
    if machine.fin_seen() {
        return Some(if machine.is_complete() {
            obs.emit(now_rel, || Event::SessionEnd {
                role: Role::Receiver,
                outcome: Outcome::Completed,
            });
            SessionOutcome::Receiver(finish_receiver(machine.as_ref(), now_rel, corrupt_dropped))
        } else {
            obs.emit(now_rel, || Event::SessionEnd {
                role: Role::Receiver,
                outcome: Outcome::SenderGone,
            });
            SessionOutcome::Receiver(Err(ProtocolError::SenderGone { groups_missing: 1 }))
        });
    }
    let idle = now_abs - sess.last_progress;
    if machine.is_complete() && idle > sess.rt.complete_linger.as_secs_f64() {
        // FIN was lost but the data is whole; stop lingering.
        obs.emit(now_rel, || Event::LingerExpired { waited_secs: idle });
        obs.emit(now_rel, || Event::SessionEnd {
            role: Role::Receiver,
            outcome: Outcome::Completed,
        });
        return Some(SessionOutcome::Receiver(finish_receiver(
            machine.as_ref(),
            now_rel,
            corrupt_dropped,
        )));
    }
    if idle > sess.rt.stall_timeout.as_secs_f64() {
        obs.emit(now_rel, || Event::StallTimeout {
            role: Role::Receiver,
            waited_secs: idle,
        });
        obs.emit(now_rel, || Event::SessionEnd {
            role: Role::Receiver,
            outcome: Outcome::Stalled,
        });
        return Some(SessionOutcome::Receiver(Err(ProtocolError::Stalled {
            waited_secs: idle,
            last_progress: sess.last_event.clone(),
        })));
    }
    None
}

fn finish_receiver(
    machine: &dyn ReceiverMachine,
    now_rel: f64,
    corrupt_dropped: u64,
) -> Result<ReceiverReport, ProtocolError> {
    Ok(ReceiverReport {
        data: machine.take_data()?,
        counters: *machine.counters(),
        elapsed: elapsed_of(now_rel),
        corrupt_dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use pm_core::config::{CompletionPolicy, NpConfig};
    use pm_core::receiver::NpReceiver;
    use pm_core::sender::NpSender;
    use pm_net::MemHub;
    use pm_obs::{MetricsRegistry, RingRecorder};
    use std::sync::Arc;

    fn np_config(receivers: u32) -> NpConfig {
        let mut cfg = NpConfig::small(CompletionPolicy::KnownReceivers(receivers));
        cfg.nak_slot = 0.001;
        cfg
    }

    fn rt() -> RuntimeConfig {
        RuntimeConfig {
            stall_timeout: Duration::from_secs(5),
            ..RuntimeConfig::default()
        }
    }

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 31 % 251) as u8).collect()
    }

    fn mux() -> Mux<pm_net::mem::MemEndpoint, VirtualClock> {
        Mux::new(MuxConfig::default(), VirtualClock::new())
    }

    #[test]
    fn one_pair_transfers_bytes_in_virtual_time() {
        let hub = MemHub::new();
        let mut m = mux();
        let data = payload(3000);
        let s_tok = m.add_sender(
            NpSender::new(1, &data, np_config(1)).unwrap(),
            hub.join(),
            rt(),
        );
        let r_tok = m.add_receiver(NpReceiver::new(7, 1, 0.001, 42), hub.join(), rt());
        let outcomes = m.run();
        assert_eq!(outcomes.len(), 2);
        assert!(m.is_empty());
        for (tok, out) in &outcomes {
            assert!(out.is_ok(), "session failed: {:?}", out.err());
            if *tok == s_tok {
                let rep = out.sender_report().unwrap();
                assert_eq!(rep.completed, vec![7]);
                assert_eq!(rep.evicted, 0);
            } else {
                assert_eq!(*tok, r_tok);
                assert_eq!(out.receiver_report().unwrap().data, data);
            }
        }
    }

    #[test]
    fn many_concurrent_sessions_complete_on_one_thread() {
        let mut m = mux();
        let mut want = Vec::new();
        for i in 0..8u32 {
            let hub = MemHub::new();
            let data = payload(1200 + 97 * i as usize);
            m.add_sender(
                NpSender::new(i, &data, np_config(1)).unwrap(),
                hub.join(),
                rt(),
            );
            let r_tok = m.add_receiver(
                NpReceiver::new(100 + i, i, 0.001, i as u64),
                hub.join(),
                rt(),
            );
            want.push((r_tok, data));
        }
        let outcomes = m.run();
        assert_eq!(outcomes.len(), 16);
        for (tok, out) in &outcomes {
            assert!(out.is_ok(), "session failed: {:?}", out.err());
            if let Some(rep) = out.receiver_report() {
                let (_, data) = want.iter().find(|(t, _)| t == tok).unwrap();
                assert_eq!(&rep.data, data);
            }
        }
    }

    #[test]
    fn virtual_runs_are_deterministic() {
        let run = || {
            let hub = MemHub::new();
            let mut m = mux();
            let data = payload(2048);
            m.add_sender(
                NpSender::new(9, &data, np_config(1)).unwrap(),
                hub.join(),
                rt(),
            );
            m.add_receiver(NpReceiver::new(3, 9, 0.001, 7), hub.join(), rt());
            let outcomes = m.run();
            let clock_end = m.clock().now();
            let reports: Vec<String> = outcomes
                .iter()
                .map(|(t, o)| format!("{t:?}={o:?}"))
                .collect();
            (reports, clock_end.to_bits())
        };
        assert_eq!(run(), run(), "same inputs, same virtual schedule");
    }

    #[test]
    fn orphan_receiver_stalls_in_zero_wall_time() {
        let hub = MemHub::new();
        let mut m = mux();
        let cfg = RuntimeConfig {
            stall_timeout: Duration::from_secs(3600), // an hour, virtually
            ..RuntimeConfig::default()
        };
        m.add_receiver(NpReceiver::new(1, 1, 0.001, 0), hub.join(), cfg);
        let outcomes = m.run();
        assert_eq!(outcomes.len(), 1);
        match &outcomes[0].1 {
            SessionOutcome::Receiver(Err(ProtocolError::Stalled { waited_secs, .. })) => {
                assert!(*waited_secs > 3600.0);
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
        // The virtual clock covered the whole hour by jumping.
        assert!(m.clock().now() > 3600.0);
    }

    #[test]
    fn lifecycle_events_and_metrics_are_maintained() {
        let rec = Arc::new(RingRecorder::new(65536));
        let reg = MetricsRegistry::new();
        let hub = MemHub::new();
        let mut m = mux().with_obs(Obs::new(rec.clone()));
        m.bind_metrics(&reg);
        let data = payload(900);
        m.add_sender(
            NpSender::new(2, &data, np_config(1)).unwrap(),
            hub.join(),
            rt(),
        );
        m.add_receiver(NpReceiver::new(5, 2, 0.001, 1), hub.join(), rt());
        let outcomes = m.run();
        assert!(outcomes.iter().all(|(_, o)| o.is_ok()));

        let metrics = m.metrics.as_ref().unwrap();
        assert_eq!(metrics.active_sessions.get(), 0, "all sessions retired");
        let drives = metrics.session_drives.snapshot();
        assert_eq!(drives.count, 2, "one fairness sample per session");
        assert!(drives.max >= 1);

        let events = rec.events();
        let added = events
            .iter()
            .filter(|(_, e)| matches!(e, Event::MuxSessionAdded { .. }))
            .count();
        let ended: Vec<_> = events
            .iter()
            .filter_map(|(_, e)| match e {
                Event::MuxSessionEnded { drives, .. } => Some(*drives),
                _ => None,
            })
            .collect();
        assert_eq!(added, 2);
        assert_eq!(ended.len(), 2);
        assert!(ended.iter().all(|&d| d >= 1), "every session was driven");
        assert!(
            events
                .iter()
                .any(|(_, e)| matches!(e, Event::SessionEnd { .. })),
            "driver lifecycle events flow through the mux obs"
        );
    }

    #[test]
    fn stale_timers_are_lazily_cancelled() {
        // A session that ends leaves entries in the wheel; they must fire
        // into the void, not into a recycled slot.
        let hub = MemHub::new();
        let mut m = mux();
        let data = payload(500);
        m.add_sender(
            NpSender::new(4, &data, np_config(1)).unwrap(),
            hub.join(),
            rt(),
        );
        m.add_receiver(NpReceiver::new(8, 4, 0.001, 3), hub.join(), rt());
        let first = m.run();
        assert!(first.iter().all(|(_, o)| o.is_ok()));

        // Immediately reuse the mux (and its retired slots) for a second
        // wave; stale generations from wave one must not disturb it.
        let hub2 = MemHub::new();
        let data2 = payload(700);
        m.add_sender(
            NpSender::new(6, &data2, np_config(1)).unwrap(),
            hub2.join(),
            rt(),
        );
        m.add_receiver(NpReceiver::new(9, 6, 0.001, 4), hub2.join(), rt());
        let second = m.run();
        assert_eq!(second.len(), 2);
        for (_, out) in &second {
            assert!(out.is_ok(), "wave two failed: {:?}", out.err());
            if let Some(rep) = out.receiver_report() {
                assert_eq!(rep.data, data2);
            }
        }
    }
}
