#![forbid(unsafe_code)]
//! # pm-mux — event-driven session multiplexer
//!
//! Runs N concurrent sender/receiver protocol machines on **one thread**
//! over a shared non-blocking socket set, with every wait — packet
//! pacing, retry backoff, machine wakeups, receiver poll cadence, stall
//! and eviction deadlines — expressed as a [`wheel::TimerWheel`] entry
//! instead of a blocking call. The driver never parks on one session's
//! behalf, so a hostile or dead session cannot stall its neighbors.
//!
//! The crate reuses the blocking drivers' semantics wholesale:
//! [`pm_core::runtime::ResilienceCore`] for corruption absorption and
//! retry accounting, [`pm_core::runtime::absorb_feedback`] for the
//! eviction liveness classification, and the same
//! [`SessionReport`](pm_core::runtime::SessionReport) /
//! [`ReceiverReport`](pm_core::runtime::ReceiverReport) outcomes — a
//! session driven by the mux is observably the session the blocking
//! drivers would have run (the equivalence tests pin byte-identical
//! transcripts).
//!
//! Time comes from a [`MuxClock`]: [`VirtualClock`] for deterministic
//! tests (the clock jumps to the next timer deadline when the system is
//! quiescent), [`WallClock`] for production (bounded naps between I/O
//! sweeps).
//!
//! When capacity runs out, the [`overload`] module keeps the mux up:
//! per-turn budget accounting feeds an [`overload::OverloadPolicy`] that
//! refuses admission past a high-water mark (typed
//! [`overload::AdmissionError`]) and, under sustained saturation, sheds
//! victims deterministically with typed
//! [`SessionOutcome::Shed`](mux::SessionOutcome::Shed) reports — graceful
//! degradation at the driver layer, mirroring what parity recovery does
//! at the protocol layer.

pub mod clock;
pub mod mux;
pub mod overload;
pub mod wheel;

pub use clock::{MuxClock, VirtualClock, WallClock};
pub use mux::{Mux, MuxConfig, MuxMetrics, SessionOutcome, ShedReport};
pub use overload::{AdmissionError, OverloadConfig, OverloadPolicy, OverloadSignal};
pub use wheel::TimerWheel;
