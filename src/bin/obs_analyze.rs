#![forbid(unsafe_code)]
//! `obs-analyze` — offline analytics over a JSONL trace produced by
//! `--trace`.
//!
//! Usage: `obs-analyze <trace.jsonl> [--compare-analysis] [--max-dev
//! <frac>] [--json]`
//!
//! Where `obs-check` only validates, this tool *measures*: per-session
//! E\[M\] (transmissions per distinct data packet), per-receiver
//! completion fairness (Jain's index), feedback bandwidth, and the
//! stall/linger incident timeline — the live-trace counterparts of the
//! paper's Figures 4–7 cost curves. With `--compare-analysis` it reruns
//! the `pm-analysis` analytical engine at each session's recorded
//! `(k, h, R, p)` and reports the deviation of measured from analytic
//! E\[M\], exiting non-zero when any session deviates by more than
//! `--max-dev` (default 5%). `--json` renders the whole report as one
//! JSON object for scripting.

use std::process::ExitCode;

use pm_analysis::integrated;
use pm_analysis::population::Population;
use pm_obs::{SessionAnalysis, TraceAnalysis};
use serde::Value;

/// One session's analytic-vs-measured comparison.
struct Comparison {
    session: u32,
    measured: f64,
    analytic: f64,
    deviation: f64,
}

struct Args {
    path: String,
    compare: bool,
    max_dev: f64,
    json: bool,
}

fn usage() -> ExitCode {
    eprintln!("usage: obs-analyze <trace.jsonl> [--compare-analysis] [--max-dev <frac>] [--json]");
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut args = Args {
        path: String::new(),
        compare: false,
        max_dev: 0.05,
        json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--compare-analysis" => args.compare = true,
            "--json" => args.json = true,
            "--max-dev" => {
                let val = it.next().ok_or_else(usage)?;
                match val.parse::<f64>() {
                    Ok(frac) if frac.is_finite() && frac >= 0.0 => args.max_dev = frac,
                    _ => {
                        eprintln!(
                            "obs-analyze: --max-dev wants a non-negative fraction, got {val}"
                        );
                        return Err(ExitCode::from(2));
                    }
                }
            }
            other if other.starts_with("--") => {
                eprintln!("obs-analyze: unknown flag {other}");
                return Err(usage());
            }
            other if args.path.is_empty() => args.path = other.to_string(),
            _ => return Err(usage()),
        }
    }
    if args.path.is_empty() {
        return Err(usage());
    }
    Ok(args)
}

/// Analytic E\[M\] at the session's recorded `(k, h, R, p)`, reactive
/// parities only (`a = 0`) — the NP operating point of Section 3.
fn compare_session(id: u32, sess: &SessionAnalysis) -> Option<Comparison> {
    let cfg = sess.config.as_ref()?;
    let measured = sess.measured_em()?;
    if cfg.receivers == 0 {
        return None;
    }
    let pop = Population::homogeneous(cfg.loss, u64::from(cfg.receivers));
    let analytic = integrated::finite(cfg.k as usize, cfg.h as usize, 0, &pop);
    let deviation = if analytic > 0.0 {
        (measured - analytic).abs() / analytic
    } else {
        f64::INFINITY
    };
    Some(Comparison {
        session: id,
        measured,
        analytic,
        deviation,
    })
}

fn print_human(path: &str, ta: &TraceAnalysis, comparisons: &[Comparison], max_dev: f64) {
    println!(
        "{path}: {} events, {} sessions, {} incidents, span {:.2}s",
        ta.events,
        ta.sessions.len(),
        ta.incidents.len(),
        ta.last_t
    );
    for (id, sess) in &ta.sessions {
        match &sess.config {
            Some(cfg) => println!(
                "session {id}: k={} h={} R={} p={:.4} backend={}",
                cfg.k,
                cfg.h,
                cfg.receivers,
                cfg.loss,
                cfg.backend.as_deref().unwrap_or("?")
            ),
            None => println!("session {id}: (no session_config recorded)"),
        }
        println!("  data packets   {:>10}", sess.data_packets);
        println!("  data tx        {:>10}", sess.data_tx);
        println!("  parity tx      {:>10}", sess.parity_tx);
        println!("  naks           {:>10}", sess.naks());
        println!("  repair rounds  {:>10}", sess.repair_rounds);
        match sess.measured_em() {
            Some(em) => println!("  measured E[M]  {em:>10.4}"),
            None => println!("  measured E[M]         n/a"),
        }
        match sess.fairness() {
            Some(j) => println!("  fairness       {j:>10.4}"),
            None => println!("  fairness              n/a"),
        }
        match sess.feedback_bandwidth() {
            Some(bw) => println!("  feedback bw    {bw:>10.2} msg/s"),
            None => println!("  feedback bw           n/a"),
        }
        println!("  duration       {:>10.2} s", sess.duration());
        println!(
            "  completed      {:>10}",
            if sess.completed { "yes" } else { "no" }
        );
        println!("  verdict        {:>10}", sess.verdict());
    }
    if !ta.incidents.is_empty() {
        println!("incidents:");
        for inc in &ta.incidents {
            let role = inc.role.as_deref().unwrap_or("?");
            let mut extra = String::new();
            if let Some(session) = inc.session {
                extra.push_str(&format!(" session={session}"));
            }
            match inc.utilization {
                Some(util) => extra.push_str(&format!(" util={util:.3}")),
                None => extra.push_str(&format!(" waited={:.2}s", inc.waited_secs)),
            }
            println!("  t={:.2} {} role={role}{extra}", inc.t, inc.kind);
        }
    }
    let shed = ta.shed_sessions();
    if shed > 0 {
        println!("shed sessions: {shed}");
    }
    for cmp in comparisons {
        let verdict = if cmp.deviation <= max_dev {
            "ok"
        } else {
            "EXCEEDED"
        };
        println!(
            "compare session {}: measured E[M]={:.4} analytic E[M]={:.4} deviation={:.2}% (max {:.2}%) {verdict}",
            cmp.session,
            cmp.measured,
            cmp.analytic,
            cmp.deviation * 100.0,
            max_dev * 100.0
        );
    }
}

fn session_json(id: u32, sess: &SessionAnalysis) -> Value {
    let mut m = vec![("session".into(), Value::Number(f64::from(id)))];
    if let Some(cfg) = &sess.config {
        m.push((
            "config".into(),
            Value::Object(vec![
                ("k".into(), Value::Number(f64::from(cfg.k))),
                ("h".into(), Value::Number(f64::from(cfg.h))),
                ("receivers".into(), Value::Number(f64::from(cfg.receivers))),
                ("loss".into(), Value::Number(cfg.loss)),
                (
                    "backend".into(),
                    cfg.backend
                        .as_ref()
                        .map_or(Value::Null, |b| Value::String(b.clone())),
                ),
            ]),
        ));
    }
    m.push((
        "data_packets".into(),
        Value::Number(sess.data_packets as f64),
    ));
    m.push(("data_tx".into(), Value::Number(sess.data_tx as f64)));
    m.push(("parity_tx".into(), Value::Number(sess.parity_tx as f64)));
    m.push(("naks".into(), Value::Number(sess.naks() as f64)));
    m.push((
        "repair_rounds".into(),
        Value::Number(sess.repair_rounds as f64),
    ));
    let opt = |v: Option<f64>| v.map_or(Value::Null, Value::Number);
    m.push(("measured_em".into(), opt(sess.measured_em())));
    m.push(("fairness".into(), opt(sess.fairness())));
    m.push(("feedback_bandwidth".into(), opt(sess.feedback_bandwidth())));
    m.push(("duration_secs".into(), Value::Number(sess.duration())));
    m.push(("completed".into(), Value::Bool(sess.completed)));
    m.push(("shed".into(), Value::Bool(sess.shed)));
    m.push(("verdict".into(), Value::String(sess.verdict().into())));
    Value::Object(m)
}

fn report_json(ta: &TraceAnalysis, comparisons: &[Comparison], max_dev: f64) -> Value {
    let sessions = ta
        .sessions
        .iter()
        .map(|(id, sess)| session_json(*id, sess))
        .collect();
    let incidents = ta
        .incidents
        .iter()
        .map(|inc| {
            Value::Object(vec![
                ("t".into(), Value::Number(inc.t)),
                ("kind".into(), Value::String(inc.kind.clone())),
                (
                    "role".into(),
                    inc.role
                        .as_ref()
                        .map_or(Value::Null, |r| Value::String(r.clone())),
                ),
                ("waited_secs".into(), Value::Number(inc.waited_secs)),
                (
                    "utilization".into(),
                    inc.utilization.map_or(Value::Null, Value::Number),
                ),
                (
                    "session".into(),
                    inc.session
                        .map_or(Value::Null, |s| Value::Number(f64::from(s))),
                ),
            ])
        })
        .collect();
    let compare = comparisons
        .iter()
        .map(|cmp| {
            Value::Object(vec![
                ("session".into(), Value::Number(f64::from(cmp.session))),
                ("measured_em".into(), Value::Number(cmp.measured)),
                ("analytic_em".into(), Value::Number(cmp.analytic)),
                ("deviation".into(), Value::Number(cmp.deviation)),
                ("max_dev".into(), Value::Number(max_dev)),
                ("ok".into(), Value::Bool(cmp.deviation <= max_dev)),
            ])
        })
        .collect();
    Value::Object(vec![
        ("schema".into(), Value::String("pm.analysis.v1".into())),
        ("events".into(), Value::Number(ta.events as f64)),
        ("span_secs".into(), Value::Number(ta.last_t)),
        ("sessions".into(), Value::Array(sessions)),
        ("incidents".into(), Value::Array(incidents)),
        ("compare".into(), Value::Array(compare)),
    ])
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(code) => return code,
    };
    let text = match std::fs::read_to_string(&args.path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("obs-analyze: cannot read {}: {e}", args.path);
            return ExitCode::FAILURE;
        }
    };
    let ta = match pm_obs::analyze_trace(&text) {
        Ok(ta) => ta,
        Err(err) => {
            eprintln!("obs-analyze: {}: {err}", args.path);
            return ExitCode::FAILURE;
        }
    };

    let comparisons: Vec<Comparison> = if args.compare {
        ta.sessions
            .iter()
            .filter_map(|(id, sess)| compare_session(*id, sess))
            .collect()
    } else {
        Vec::new()
    };

    if args.json {
        let report = report_json(&ta, &comparisons, args.max_dev);
        match serde_json::to_string_pretty(&report) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("obs-analyze: render failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        print_human(&args.path, &ta, &comparisons, args.max_dev);
    }

    if args.compare {
        if comparisons.is_empty() {
            eprintln!(
                "obs-analyze: --compare-analysis found no session with both a \
                 session_config and a measurable E[M]"
            );
            return ExitCode::FAILURE;
        }
        if comparisons.iter().any(|c| c.deviation > args.max_dev) {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
