#![forbid(unsafe_code)]
//! # parity-multicast
//!
//! A faithful, production-quality reproduction of *Parity-Based Loss
//! Recovery for Reliable Multicast Transmission* (Nonnenmacher, Biersack,
//! Towsley, SIGCOMM 1997): Reed–Solomon erasure coding, the **NP** hybrid
//! FEC/ARQ multicast protocol, the **N2** ARQ baseline, the paper's
//! analytical models, and the loss-model/simulation machinery behind every
//! figure in its evaluation.
//!
//! This crate is a façade re-exporting the workspace members under stable
//! names:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`gf`] | `pm-gf` | GF(2^m) arithmetic, matrices, polynomials |
//! | [`simd`] | `pm-simd` | runtime-dispatched AVX2/NEON GF(2^8)/GF(2^16) slice kernels (the one sanctioned `unsafe` boundary) |
//! | [`rse`] | `pm-rse` | systematic Reed–Solomon erasure codec over packets |
//! | [`loss`] | `pm-loss` | Bernoulli / heterogeneous / Markov-burst / shared-tree loss models |
//! | [`analysis`] | `pm-analysis` | Eqs. (2)–(17): E\[M\], rounds, end-host rates |
//! | [`sim`] | `pm-sim` | scheme simulations (no-FEC, layered, integrated 1/2) |
//! | [`net`] | `pm-net` | wire format, UDP multicast + in-memory transports, NAK suppression |
//! | [`protocol`] | `pm-core` | protocol NP and baseline N2 (sans-io + runtime) |
//! | [`obs`] | `pm-obs` | structured trace events, counters/histograms, JSONL recorders |
//! | [`par`] | `pm-par` | scoped thread pool: deterministic `par_map` / `par_map_reduce` |
//! | [`mux`] | `pm-mux` | event-driven session multiplexer: N sessions, one thread, a timer wheel |
//!
//! ## Quickstart
//!
//! Erasure-code a transmission group and survive packet loss:
//!
//! ```
//! use parity_multicast::rse::{CodeSpec, RseDecoder, RseEncoder};
//!
//! // k = 7 data packets, up to h = 3 parities (the paper's workhorse).
//! let spec = CodeSpec::new(7, 3).unwrap();
//! let encoder = RseEncoder::new(spec).unwrap();
//! let decoder = RseDecoder::from_encoder(&encoder);
//!
//! let group: Vec<Vec<u8>> = (0..7).map(|i| vec![i as u8; 64]).collect();
//! let parities = encoder.encode_all(&group).unwrap();
//!
//! // Lose data packets 1 and 4; any 7 of the 10 block packets suffice.
//! let mut shares: Vec<(usize, &[u8])> = group
//!     .iter()
//!     .enumerate()
//!     .filter(|(i, _)| *i != 1 && *i != 4)
//!     .map(|(i, d)| (i, d.as_slice()))
//!     .collect();
//! shares.push((7, parities[0].as_slice()));
//! shares.push((8, parities[1].as_slice()));
//!
//! let recovered = decoder.decode(&shares).unwrap();
//! assert_eq!(recovered, group);
//! ```
//!
//! Run the full NP protocol over an in-memory multicast group (see
//! `examples/file_multicast.rs` for the real-UDP version):
//!
//! ```
//! use std::time::Duration;
//! use parity_multicast::net::MemHub;
//! use parity_multicast::protocol::{
//!     runtime::{drive_receiver, drive_sender, RuntimeConfig},
//!     CompletionPolicy, NpConfig, NpReceiver, NpSender,
//! };
//!
//! let hub = MemHub::new();
//! let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
//! let mut cfg = NpConfig::small(CompletionPolicy::KnownReceivers(1));
//! cfg.payload_len = 512;
//! let rt = RuntimeConfig {
//!     packet_spacing: Duration::from_micros(20),
//!     stall_timeout: Duration::from_secs(5),
//!     complete_linger: Duration::from_millis(300),
//!     ..RuntimeConfig::default()
//! };
//!
//! let mut sender_tp = hub.join();
//! let mut receiver_tp = hub.join();
//! let to_send = payload.clone();
//! let sender = std::thread::spawn(move || {
//!     let mut s = NpSender::new(1, &to_send, cfg).unwrap();
//!     drive_sender(&mut s, &mut sender_tp, &rt).unwrap()
//! });
//! let mut r = NpReceiver::new(1, 1, 0.001, 42);
//! let report = drive_receiver(&mut r, &mut receiver_tp, &rt).unwrap();
//! sender.join().unwrap();
//! assert_eq!(report.data, payload);
//! ```

pub use pm_analysis as analysis;
pub use pm_core as protocol;
pub use pm_gf as gf;
pub use pm_loss as loss;
pub use pm_mux as mux;
pub use pm_net as net;
pub use pm_obs as obs;
pub use pm_par as par;
pub use pm_rse as rse;
pub use pm_sim as sim;
pub use pm_simd as simd;
