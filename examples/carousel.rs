//! Feedback-free carousel distribution (the paper's Integrated FEC 1):
//! broadcast a file in continuous interleaved FEC cycles; receivers join
//! whenever, collect `k` packets per group, decode, and leave — no NAKs,
//! no polls, no return channel at all.
//!
//! ```sh
//! cargo run --release --example carousel -- --receivers 8 --drop 0.15 --cycles 4
//! ```

use parity_multicast::loss::IndependentLoss;
use parity_multicast::protocol::harness::{run_simulation, HarnessConfig};
use parity_multicast::protocol::{CarouselConfig, CarouselSender, CarouselStop, NpReceiver};

struct Args {
    receivers: usize,
    drop: f64,
    cycles: u32,
    size: usize,
    redundancy: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        receivers: 8,
        drop: 0.15,
        cycles: 4,
        size: 200_000,
        redundancy: 4,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--receivers" => args.receivers = val().parse().expect("count"),
            "--drop" => args.drop = val().parse().expect("probability"),
            "--cycles" => args.cycles = val().parse().expect("count"),
            "--size" => args.size = val().parse().expect("bytes"),
            "--redundancy" => args.redundancy = val().parse().expect("parities per group"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let session = 0xCAFE;
    let data: Vec<u8> = (0..args.size)
        .map(|i| (i.wrapping_mul(613) >> 2) as u8)
        .collect();

    let cfg = CarouselConfig {
        k: 20,
        h: args.redundancy,
        payload_len: 1024,
        stop: CarouselStop::Cycles(args.cycles),
        announce_every: 64,
    };
    println!(
        "carousel: {} bytes, k = 20, h = {} per cycle, {} cycles, {} receivers at {:.0}% loss",
        args.size,
        args.redundancy,
        args.cycles,
        args.receivers,
        args.drop * 100.0
    );

    let mut sender = CarouselSender::new(session, &data, cfg).expect("valid config");
    let mut receivers: Vec<NpReceiver> = (0..args.receivers)
        .map(|i| NpReceiver::new(i as u32, session, 0.002, i as u64))
        .collect();
    let mut loss = IndependentLoss::new(args.receivers, args.drop, 0xCA20);
    let report = run_simulation(
        &mut sender,
        &mut receivers,
        &mut loss,
        &HarnessConfig {
            delta: 0.001,
            latency: 0.002,
            lossy_control: false,
            time_cap: 600.0,
        },
    )
    .expect("carousel run");

    let mut verified = 0;
    for rx in &receivers {
        if rx.is_complete() && rx.take_data().expect("complete") == data {
            verified += 1;
        }
    }
    println!(
        "completed {}/{} receivers (verified {verified}); {} data + {} parity frames over {:.1}s virtual",
        report.completed,
        args.receivers,
        report.sender.data_sent,
        report.sender.repairs_sent,
        report.elapsed,
    );
    println!(
        "repair feedback received by the sender: {} NAKs (the whole point: zero)",
        report.naks_at_sender
    );
    let per_cycle_cost = (20 + args.redundancy) as f64 / 20.0;
    println!(
        "wire cost: {:.2}x the data volume per cycle, {} cycles total = {:.2}x overall \
         (fixed-cycle carousels trade bandwidth for zero feedback; AllDone stops early)",
        per_cycle_cost,
        args.cycles,
        per_cycle_cost * args.cycles as f64,
    );
    assert_eq!(report.naks_at_sender, 0);
    if report.completed < args.receivers {
        println!(
            "note: {} receivers did not finish within {} cycles — raise --cycles or --redundancy",
            args.receivers - report.completed,
            args.cycles
        );
    }
}
