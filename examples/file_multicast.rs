//! Reliable file transfer over **real UDP multicast** with protocol NP.
//!
//! One process plays the sender and any number of receivers on the same
//! multicast group (239.255.42.99:47999 by default), with optional
//! receive-side fault injection so the parity-repair path actually runs.
//! Falls back to the in-memory hub when the host has no multicast support.
//!
//! ```sh
//! # generate-and-send 1 MiB to 4 receivers with 15% injected loss
//! cargo run --example file_multicast -- --size 1048576 --receivers 4 --drop 0.15
//! # or transfer a real file
//! cargo run --example file_multicast -- --file /path/to/file --receivers 2
//! # with a JSONL event trace and a metrics dump
//! cargo run --example file_multicast -- --trace transfer.jsonl --metrics
//! # hostile-network drill: byte-level chaos at every receiver
//! cargo run --example file_multicast -- --chaos heavy --receivers 3
//! # farm mode: 32 concurrent sessions on ONE driver thread (pm-mux)
//! cargo run --example file_multicast -- --sessions 32 --size 65536
//! # real-UDP farm: every session shares ONE socket, demuxed by session id
//! cargo run --example file_multicast -- --sessions 256 --udp-farm --size 8192
//! # watch it live: Prometheus-text metrics on http://127.0.0.1:9898/metrics
//! cargo run --example file_multicast -- --sessions 16 --export 127.0.0.1:9898
//! ```

use std::net::{Ipv4Addr, SocketAddrV4};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parity_multicast::mux::{Mux, MuxClock, MuxConfig, SessionOutcome, WallClock};
use parity_multicast::net::udp::UdpHub;
use parity_multicast::net::{
    ChaosPreset, FarmHub, FarmRole, FaultConfig, FaultStats, FaultyTransport, MemHub,
    PollTransport, Transport,
};
use parity_multicast::obs::{
    render_prometheus, Event, ExportServer, JsonlRecorder, MetricsRegistry, Obs, SnapshotFile,
    WindowConfig, WindowTelemetry,
};
use parity_multicast::protocol::runtime::{
    drive_receiver_obs, drive_sender_obs, ReceiverReport, RuntimeConfig,
};
use parity_multicast::protocol::{
    CompletionPolicy, NpConfig, NpReceiver, NpSender, ProtocolError, ResiliencePolicy,
};
use parity_multicast::rse::CacheStats;

struct Args {
    size: usize,
    file: Option<String>,
    receivers: u32,
    drop: f64,
    k: usize,
    port: u16,
    adaptive: bool,
    trace: Option<String>,
    metrics: bool,
    chaos: Option<ChaosPreset>,
    sessions: u32,
    udp_farm: bool,
    export: Option<String>,
    export_file: Option<String>,
    export_hold: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        size: 262_144,
        file: None,
        receivers: 3,
        drop: 0.10,
        k: 20,
        port: 47999,
        adaptive: false,
        trace: None,
        metrics: false,
        chaos: None,
        sessions: 1,
        udp_farm: false,
        export: None,
        export_file: None,
        export_hold: 0.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--size" => args.size = val().parse().expect("--size takes bytes"),
            "--file" => args.file = Some(val()),
            "--receivers" => args.receivers = val().parse().expect("--receivers takes a count"),
            "--drop" => args.drop = val().parse().expect("--drop takes a probability"),
            "--k" => args.k = val().parse().expect("--k takes a group size"),
            "--port" => args.port = val().parse().expect("--port takes a port"),
            "--adaptive" => args.adaptive = true,
            "--trace" => args.trace = Some(val()),
            "--metrics" => args.metrics = true,
            "--chaos" => {
                let preset = val();
                args.chaos =
                    Some(ChaosPreset::parse(&preset).unwrap_or_else(|| {
                        panic!("--chaos takes light|heavy|blackout, got {preset}")
                    }));
            }
            "--sessions" => args.sessions = val().parse().expect("--sessions takes a count"),
            "--udp-farm" => args.udp_farm = true,
            "--export" => args.export = Some(val()),
            "--export-file" => args.export_file = Some(val()),
            "--export-hold" => {
                args.export_hold = val().parse().expect("--export-hold takes seconds");
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// Farm mode (`--sessions N`): N independent sender/receiver sessions,
/// every one driven by a single event-driven multiplexer (`pm-mux`) on the
/// calling thread — no per-session threads, all waiting pooled in one
/// timer wheel. Each session gets its own in-memory group; the drop/chaos
/// profile wraps each receiver's endpoint so the repair path runs.
fn run_farm(
    args: &Args,
    data: &[u8],
    obs: &Obs,
    registry: &MetricsRegistry,
    telemetry: Option<&Arc<WindowTelemetry>>,
) {
    println!(
        "farm mode: {} sessions ({} endpoints) on one driver thread",
        args.sessions,
        2 * args.sessions
    );
    // `--udp-farm`: every endpoint shares ONE real non-blocking UDP
    // socket; the hub demultiplexes arriving datagrams by the wire-v2
    // session id (and direction), counting strays instead of crashing.
    let farm = args.udp_farm.then(|| {
        let hub = FarmHub::loopback()
            .expect("udp farm socket")
            .with_obs(obs.clone());
        match hub.local_addr() {
            Ok(addr) => println!("udp farm: shared socket at {addr}"),
            Err(_) => println!("udp farm: shared socket"),
        }
        hub
    });
    let fault = match args.chaos {
        Some(preset) => Some(preset.fault_config()),
        None if args.drop > 0.0 => Some(FaultConfig::drop_only(args.drop)),
        None => None,
    };
    let mut cfg = NpConfig::small(CompletionPolicy::KnownReceivers(1));
    cfg.k = args.k;
    cfg.h = 255 - args.k;
    cfg.payload_len = 1024;
    cfg.nak_slot = 0.002;
    cfg.round_timeout = 0.2;
    cfg.adaptive_parity = args.adaptive;
    let rt = RuntimeConfig {
        packet_spacing: Duration::from_micros(100),
        stall_timeout: Duration::from_secs(15),
        complete_linger: Duration::from_millis(300),
        resilience: ResiliencePolicy {
            eviction_timeout: args.chaos.map(|_| Duration::from_secs(2)),
            ..ResiliencePolicy::default()
        },
    };

    let mut mux: Mux<Box<dyn PollTransport>, WallClock> =
        Mux::new(MuxConfig::default(), WallClock::new()).with_obs(obs.clone());
    mux.bind_metrics(registry);
    if let Some(tel) = telemetry {
        mux.bind_telemetry(tel.clone());
    }
    let loss = fault.map_or(0.0, |f| f.drop);
    for i in 0..args.sessions {
        let session = 0xF000 + i;
        obs.emit(0.0, || Event::SessionConfig {
            session,
            k: cfg.k as u32,
            h: cfg.h as u32,
            receivers: 1,
            loss,
            backend: pm_simd::backend_name(),
        });
        let (sender_tp, receiver_inner): (Box<dyn PollTransport>, Box<dyn PollTransport>) =
            match &farm {
                Some(hub) => (
                    Box::new(
                        hub.endpoint(session, FarmRole::Sender)
                            .expect("farm sender"),
                    ),
                    Box::new(
                        hub.endpoint(session, FarmRole::Receiver)
                            .expect("farm receiver"),
                    ),
                ),
                None => {
                    let hub = MemHub::new();
                    (Box::new(hub.join()), Box::new(hub.join()))
                }
            };
        let sender = NpSender::new(session, data, cfg.clone()).expect("valid sender config");
        mux.add_sender(sender, sender_tp, rt);
        let receiver_tp: Box<dyn PollTransport> = match fault {
            Some(f) => Box::new(FaultyTransport::new(receiver_inner, f, 0xBEEF + i as u64)),
            None => receiver_inner,
        };
        mux.add_receiver(
            NpReceiver::new(i, session, 0.002, i as u64),
            receiver_tp,
            rt,
        );
    }
    let outcomes = mux.run();
    let wall = mux.clock().now();

    let mut ok = true;
    let mut completed = 0usize;
    for (tok, out) in &outcomes {
        match out {
            SessionOutcome::Receiver(Ok(rep)) => {
                let good = rep.data == data;
                ok &= good;
                completed += 1;
                if !good {
                    println!("receiver {tok:?}: CORRUPT");
                }
            }
            SessionOutcome::Sender(Ok(_)) => completed += 1,
            SessionOutcome::Receiver(Err(e)) | SessionOutcome::Sender(Err(e)) => {
                // A typed failure: expected under chaos, fatal otherwise.
                ok &= args.chaos.is_some();
                println!("session {tok:?}: FAILED — {e}");
            }
            SessionOutcome::Shed(rep) => {
                // Graceful degradation under overload, not a failure —
                // but this farm runs without an overload policy, so a
                // shed here is as fatal as a typed error.
                ok &= args.chaos.is_some();
                println!(
                    "session {tok:?}: SHED at utilization {:.2} after {} drives",
                    rep.utilization, rep.drives
                );
            }
        }
    }
    let drives = registry.histogram("mux.session_drives").snapshot();
    let mean_drives = drives.sum as f64 / drives.count.max(1) as f64;
    println!(
        "farm: {completed}/{} sessions completed in {wall:.2}s wall on one driver thread; \
         drives/session mean {mean_drives:.0} max {} (fair when close)",
        outcomes.len(),
        drives.max,
    );
    if let Some(hub) = &farm {
        let stats = hub.stats();
        println!(
            "udp farm: {} unknown-session drops, {} queue overflows, {} foreign datagrams",
            stats.unknown_session, stats.queue_overflow, stats.foreign,
        );
    }
    assert!(ok, "a farm session failed outside chaos mode");
    if args.metrics {
        eprintln!("\n{}", registry.render_text());
    }
}

/// Transport factory abstracting UDP vs in-memory fallback.
enum Net {
    Udp(UdpHub),
    Mem(MemHub),
}

impl Net {
    fn endpoint(&self, obs: Obs) -> Box<dyn Transport> {
        match self {
            Net::Udp(hub) => Box::new(hub.endpoint().expect("udp endpoint").with_obs(obs)),
            Net::Mem(hub) => Box::new(hub.join().with_obs(obs)),
        }
    }
}

fn main() {
    let args = parse_args();
    let trace_rec = args
        .trace
        .as_deref()
        .map(|path| Arc::new(JsonlRecorder::create(path).expect("cannot open trace file")));
    let obs = match &trace_rec {
        Some(rec) => Obs::new(rec.clone()),
        None => Obs::null(),
    };
    let registry = Arc::new(MetricsRegistry::new());
    let encode_ns = registry.histogram("rse.encode_ns");
    let decode_ns = registry.histogram("rse.decode_ns");

    // Live telemetry (`--export` / `--export-file`): a windowed-rate
    // aggregator teed into the event stream before any machine is built,
    // so every session's events flow through it from the first packet.
    let telemetry = (args.export.is_some() || args.export_file.is_some())
        .then(|| Arc::new(WindowTelemetry::new(WindowConfig::default())));
    let obs = match &telemetry {
        Some(tel) => obs.tee(tel.clone()),
        None => obs,
    };
    let exporter = args.export.as_deref().map(|addr| {
        let reg = registry.clone();
        let tel = telemetry.clone().expect("--export implies telemetry");
        let server =
            ExportServer::serve(addr, move || render_prometheus(&reg, &tel.export_gauges()))
                .expect("cannot bind --export address");
        println!("exporter: http://{}/metrics", server.local_addr());
        server
    });
    let snap_stop = Arc::new(AtomicBool::new(false));
    let snap_thread = args.export_file.clone().map(|path| {
        let stop = snap_stop.clone();
        let reg = registry.clone();
        let tel = telemetry.clone().expect("--export-file implies telemetry");
        std::thread::Builder::new()
            .name("snapshot-writer".into())
            .spawn(move || {
                let mut snap = SnapshotFile::new(path, 1.0);
                let mut now = 0.0f64;
                while !stop.load(Ordering::Relaxed) {
                    let body = render_prometheus(&reg, &tel.export_gauges());
                    snap.tick(now, &body).expect("snapshot write");
                    std::thread::sleep(Duration::from_millis(250));
                    now += 0.25;
                }
                // Final snapshot so the file reflects transfer completion.
                let body = render_prometheus(&reg, &tel.export_gauges());
                snap.write(&body).expect("snapshot write");
            })
            .expect("spawn snapshot writer")
    });
    let data = match &args.file {
        Some(path) => std::fs::read(path).expect("readable input file"),
        None => {
            // Deterministic pseudo-file so receivers can be verified.
            (0..args.size)
                .map(|i| (i.wrapping_mul(2654435761) >> 7) as u8)
                .collect()
        }
    };
    if args.sessions > 1 {
        run_farm(&args, &data, &obs, &registry, telemetry.as_ref());
        finish_export(args.export_hold, exporter, &snap_stop, snap_thread);
        if let Some(rec) = &trace_rec {
            rec.flush();
            eprintln!("trace written to {}", args.trace.as_deref().unwrap());
        }
        return;
    }
    match args.chaos {
        Some(preset) => println!(
            "transferring {} bytes to {} receivers (k = {}, chaos preset: {})",
            data.len(),
            args.receivers,
            args.k,
            preset.name(),
        ),
        None => println!(
            "transferring {} bytes to {} receivers (k = {}, injected loss {:.0}%)",
            data.len(),
            args.receivers,
            args.k,
            args.drop * 100.0
        ),
    }

    let group = SocketAddrV4::new(Ipv4Addr::new(239, 255, 42, 99), args.port);
    let net = match UdpHub::join(group) {
        Ok(hub) => {
            println!("using UDP multicast group {group}");
            Net::Udp(hub)
        }
        Err(e) => {
            println!("UDP multicast unavailable ({e}); using the in-memory hub");
            Net::Mem(MemHub::new())
        }
    };

    let mut cfg = NpConfig::small(CompletionPolicy::KnownReceivers(args.receivers));
    cfg.k = args.k;
    cfg.h = 255 - args.k; // full parity budget: the sender never runs dry
    cfg.payload_len = 1024;
    cfg.nak_slot = 0.002;
    cfg.round_timeout = 0.2;
    // Extension: learn the proactive parity count from measured round-1
    // demand (visible when pacing is slow enough for feedback to overlap
    // transmission).
    cfg.adaptive_parity = args.adaptive;
    let rt = RuntimeConfig {
        packet_spacing: Duration::from_micros(100),
        stall_timeout: Duration::from_secs(15),
        complete_linger: Duration::from_millis(300),
        resilience: ResiliencePolicy {
            // Under chaos a receiver may die inside a blackout window; let
            // the sender complete for the responsive population instead of
            // stalling out.
            eviction_timeout: args.chaos.map(|_| Duration::from_secs(2)),
            ..ResiliencePolicy::default()
        },
    };

    // Receivers first (multicast has no replay for late joiners).
    let session = 0xF11E;
    // The chaos preset replaces the plain drop profile at every receiver.
    let fault = match args.chaos {
        Some(preset) => preset.fault_config(),
        None => FaultConfig::drop_only(args.drop),
    };
    obs.emit(0.0, || Event::SessionConfig {
        session,
        k: cfg.k as u32,
        h: cfg.h as u32,
        receivers: args.receivers,
        loss: fault.drop,
        backend: pm_simd::backend_name(),
    });
    type ReceiverOutcome = (
        Result<ReceiverReport, ProtocolError>,
        CacheStats,
        FaultStats,
    );
    let receiver_handles: Vec<std::thread::JoinHandle<ReceiverOutcome>> = (0..args.receivers)
        .map(|id| {
            let endpoint = net.endpoint(obs.clone());
            let obs = obs.clone();
            let decode_ns = decode_ns.clone();
            std::thread::Builder::new()
                .name(format!("receiver-{id}"))
                .spawn(move || {
                    let mut tp = FaultyTransport::new(endpoint, fault, 0xBEEF + id as u64)
                        .with_obs(obs.clone());
                    let mut machine =
                        NpReceiver::new(id, session, 0.002, id as u64).with_obs(obs.clone());
                    machine.set_decode_timer(decode_ns);
                    // Under chaos a receiver failing is a reportable outcome,
                    // not a crash.
                    let outcome = drive_receiver_obs(&mut machine, &mut tp, &rt, &obs);
                    (outcome, machine.decode_cache_stats(), tp.stats())
                })
                .expect("spawn receiver")
        })
        .collect();

    let mut sender_tp = net.endpoint(obs.clone());
    let mut sender = NpSender::new(session, &data, cfg)
        .expect("valid sender config")
        .with_obs(obs.clone());
    sender.set_encode_timer(encode_ns);
    let report = drive_sender_obs(&mut sender, &mut sender_tp, &rt, &obs).expect("send failed");
    // The paper's scalability argument in one number: sender-side state
    // per receiver stays flat as R grows (ROADMAP item 2's metric).
    registry
        .gauge("sender.state_bytes_per_receiver")
        .set(sender.state_bytes_per_receiver().round() as i64);

    let mut ok = true;
    let mut merged = parity_multicast::protocol::CostCounters::default();
    let mut cache = CacheStats::default();
    for (id, h) in receiver_handles.into_iter().enumerate() {
        let (outcome, rc, fs) = h.join().expect("receiver thread");
        cache.hits += rc.hits;
        cache.misses += rc.misses;
        match outcome {
            Ok(r) => {
                merged.merge(&r.counters);
                let good = r.data == data;
                ok &= good;
                println!(
                    "receiver {id}: {} — {} pkts in, {} repaired by decode, {} unneeded, \
                     {} corrupt dropped, {:.2}s",
                    if good { "OK" } else { "CORRUPT" },
                    r.counters.packets_received,
                    r.counters.packets_decoded,
                    r.counters.unneeded_receptions,
                    r.corrupt_dropped,
                    r.elapsed.as_secs_f64(),
                );
            }
            Err(e) => {
                // A typed failure: expected under chaos, fatal otherwise.
                ok &= args.chaos.is_some();
                println!("receiver {id}: FAILED — {e}");
            }
        }
        if args.chaos.is_some() {
            println!(
                "    faults at receiver {id}: {} dropped, {} corrupted, {} truncated, \
                 {} garbage, {} in blackout",
                fs.dropped,
                fs.corrupted,
                fs.truncated,
                fs.garbage_injected,
                fs.blackout_recv + fs.blackout_send,
            );
        }
    }
    let c = report.counters;
    let m = (c.data_sent + c.repairs_sent) as f64 / c.data_sent.max(1) as f64;
    println!(
        "sender: {} data + {} parities in {:.2}s; E[M] = {m:.3}; {} NAKs, {} parities encoded",
        c.data_sent,
        c.repairs_sent,
        report.elapsed.as_secs_f64(),
        c.feedback_received,
        c.parities_encoded,
    );
    println!(
        "session: {} — completed {:?}, {} evicted, {} corrupt dropped, {} send retries",
        if report.is_degraded() {
            "DEGRADED"
        } else {
            "complete"
        },
        report.completed,
        report.evicted,
        report.corrupt_dropped,
        report.send_retries,
    );
    assert!(ok, "a receiver completed with corrupt data");
    if args.chaos.is_some() {
        println!("chaos drill finished: every surviving receiver verified byte-identical");
    } else {
        println!("transfer verified on all receivers");
    }

    if args.metrics {
        report.counters.register_into(&registry, "sender");
        merged.register_into(&registry, "receiver");
        registry.counter("rse.decode_cache_hits").add(cache.hits);
        registry
            .counter("rse.decode_cache_misses")
            .add(cache.misses);
        eprintln!("\n{}", registry.render_text());
    }
    finish_export(args.export_hold, exporter, &snap_stop, snap_thread);
    if let Some(rec) = &trace_rec {
        rec.flush();
        eprintln!("trace written to {}", args.trace.as_deref().unwrap());
    }
}

/// Tear down the live-telemetry side cars: optionally hold the HTTP
/// exporter open (`--export-hold`) so a scraper can observe the final
/// gauges, then stop the listener and the snapshot writer.
fn finish_export(
    hold: f64,
    exporter: Option<ExportServer>,
    snap_stop: &AtomicBool,
    snap_thread: Option<std::thread::JoinHandle<()>>,
) {
    if let Some(server) = exporter {
        if hold > 0.0 {
            println!("holding exporter open for {hold:.1}s");
            std::thread::sleep(Duration::from_secs_f64(hold));
        }
        drop(server); // Drop stops the listener thread.
    }
    snap_stop.store(true, Ordering::Relaxed);
    if let Some(handle) = snap_thread {
        handle.join().expect("snapshot writer");
    }
}
