//! The paper's two architectures, live and head-to-head (Figure 2):
//!
//! * **(a) layered FEC** — plain ARQ (protocol N2) running unchanged over
//!   the transparent `FecTransport` sublayer;
//! * **(b) integrated FEC** — protocol NP with parity retransmission.
//!
//! Both transfer the same data to the same lossy receiver population; the
//! example reports the wire cost of each (data + parity + retransmission
//! frames) next to the no-FEC baseline, reproducing the Figure 5 ordering
//! with real packets instead of formulas.
//!
//! ```sh
//! cargo run --release --example layered_vs_integrated -- --receivers 4 --drop 0.08
//! ```

use std::time::Duration;

use parity_multicast::net::{
    FaultConfig, FaultyTransport, FecLayerConfig, FecTransport, MemHub, Transport,
};
use parity_multicast::protocol::n2::{N2Receiver, N2Sender};
use parity_multicast::protocol::runtime::{drive_receiver, drive_sender, RuntimeConfig};
use parity_multicast::protocol::{CompletionPolicy, NpConfig, NpReceiver, NpSender};

struct Args {
    receivers: u32,
    drop: f64,
    size: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        receivers: 4,
        drop: 0.08,
        size: 120_000,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--receivers" => args.receivers = val().parse().expect("count"),
            "--drop" => args.drop = val().parse().expect("probability"),
            "--size" => args.size = val().parse().expect("bytes"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn rt() -> RuntimeConfig {
    RuntimeConfig {
        packet_spacing: Duration::from_micros(80),
        stall_timeout: Duration::from_secs(20),
        complete_linger: Duration::from_millis(300),
        ..RuntimeConfig::default()
    }
}

const K: usize = 10;
const LAYER_K: usize = 7;
const LAYER_H: usize = 1;

fn config(receivers: u32, h: usize) -> NpConfig {
    let mut c = NpConfig::small(CompletionPolicy::KnownReceivers(receivers));
    c.k = K;
    c.h = h;
    c.payload_len = 512;
    c.nak_slot = 0.001;
    c
}

enum Arch {
    NoFec,
    Layered,
    Integrated,
}

/// Returns (wire frames sent by the sender side, verified).
fn run(arch: &Arch, data: &[u8], receivers: u32, drop: f64) -> (u64, bool) {
    let hub = MemHub::new();
    let session = 0xA5C;
    let wrap = |ep: parity_multicast::net::mem::MemEndpoint,
                tag: u32,
                lossy: bool,
                seed: u64,
                layered: bool|
     -> Box<dyn Transport> {
        let base: Box<dyn Transport> = if lossy {
            Box::new(FaultyTransport::new(ep, FaultConfig::drop_only(drop), seed))
        } else {
            Box::new(ep)
        };
        if layered {
            Box::new(
                FecTransport::new(
                    base,
                    FecLayerConfig {
                        k: LAYER_K,
                        h: LAYER_H,
                        max_delay: Duration::from_millis(5),
                        sender_tag: tag,
                    },
                )
                .expect("valid geometry"),
            )
        } else {
            base
        }
    };
    let layered = matches!(arch, Arch::Layered);
    let integrated = matches!(arch, Arch::Integrated);

    let handles: Vec<_> = (0..receivers)
        .map(|id| {
            let mut tp = wrap(hub.join(), 100 + id, true, 7 * id as u64 + 3, layered);
            std::thread::spawn(move || {
                if integrated {
                    let mut m = NpReceiver::new(id, session, 0.001, id as u64);
                    drive_receiver(&mut m, &mut tp, &rt())
                        .expect("receiver")
                        .data
                } else {
                    let mut m = N2Receiver::new(id, session, 0.001, id as u64);
                    drive_receiver(&mut m, &mut tp, &rt())
                        .expect("receiver")
                        .data
                }
            })
        })
        .collect();

    let mut sender_tp = wrap(hub.join(), 1, false, 0, layered);
    let frames = if integrated {
        let mut s = NpSender::new(session, data, config(receivers, 120)).expect("config");
        let r = drive_sender(&mut s, &mut sender_tp, &rt()).expect("sender");
        r.counters.data_sent + r.counters.repairs_sent
    } else {
        // For the layered run the caller scales by n/k afterwards — that
        // is the honest wire cost (Figs. 3-4's expansion factor).
        let mut s = N2Sender::new(session, data, config(receivers, 0)).expect("config");
        let r = drive_sender(&mut s, &mut sender_tp, &rt()).expect("sender");
        r.counters.data_sent + r.counters.repairs_sent
    };
    let mut ok = true;
    for h in handles {
        ok &= h.join().expect("thread") == data;
    }
    (frames, ok)
}

fn main() {
    let args = parse_args();
    let data: Vec<u8> = (0..args.size)
        .map(|i| (i.wrapping_mul(977) >> 3) as u8)
        .collect();
    println!(
        "transfer {} bytes to {} receivers at {:.0}% loss (k = {K}, layered = {LAYER_K}+{LAYER_H})\n",
        args.size,
        args.receivers,
        args.drop * 100.0
    );
    println!(
        "{:<22}{:>16}{:>14}{:>10}",
        "architecture", "RM frames sent", "E[M] per pkt", "verified"
    );
    let base_packets = args.size.div_ceil(512) as f64;
    for (name, arch, note) in [
        ("no FEC (N2)", Arch::NoFec, ""),
        (
            "layered (N2 + FEC)",
            Arch::Layered,
            " +n/k sublayer parities",
        ),
        ("integrated (NP)", Arch::Integrated, ""),
    ] {
        let (frames, ok) = run(&arch, &data, args.receivers, args.drop);
        let mut wire = frames as f64;
        if matches!(arch, Arch::Layered) {
            wire *= (LAYER_K + LAYER_H) as f64 / LAYER_K as f64;
        }
        println!(
            "{name:<22}{:>16.0}{:>14.3}{:>10}{note}",
            wire,
            wire / base_packets,
            if ok { "OK" } else { "CORRUPT" }
        );
        assert!(ok);
    }
    println!("\nexpect the Figure 5 ordering: integrated < layered < no FEC at scale");
}
