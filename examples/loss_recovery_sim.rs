//! Compare the four recovery schemes of the paper under three loss
//! environments — a compact, runnable tour of Sections 3 and 4.
//!
//! For each environment (independent, shared full-binary-tree, Markov
//! burst) the example simulates no-FEC ARQ, layered FEC, and both
//! integrated FEC variants across receiver populations, printing E[M] —
//! the expected transmissions per data packet — plus the analytical values
//! where the paper has closed forms.
//!
//! ```sh
//! cargo run --release --example loss_recovery_sim [-- --trials 2000]
//! ```

use parity_multicast::analysis::{integrated, layered, nofec, Population};
use parity_multicast::sim::runner::{run_env, LossEnv, Scheme};
use parity_multicast::sim::SimConfig;

fn parse_trials() -> usize {
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--trials" {
            return it
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--trials takes a positive integer");
        }
    }
    1500
}

fn main() {
    let trials = parse_trials();
    let cfg = SimConfig::paper_timing(trials);
    let p = 0.01;
    let k = 7;
    let schemes = [
        Scheme::NoFec,
        Scheme::Layered { k, h: 1 },
        Scheme::Integrated1 { k },
        Scheme::Integrated2 { k },
    ];
    let envs = [
        ("independent loss (Section 3)", LossEnv::Independent { p }),
        (
            "shared FBT loss (Section 4.1)",
            LossEnv::FullBinaryTree { p },
        ),
        (
            "burst loss b=2 (Section 4.2)",
            LossEnv::Burst { p, mean_burst: 2.0 },
        ),
    ];
    let populations = [1usize, 16, 256, 4096];

    for (name, env) in envs {
        println!("\n=== {name}, p = {p}, k = {k}, {trials} trials");
        print!("{:>8}", "R");
        for s in &schemes {
            print!("{:>22}", s.label());
        }
        println!();
        for &r in &populations {
            print!("{r:>8}");
            for (i, &s) in schemes.iter().enumerate() {
                let res = run_env(&cfg, s, env, r, 0xC0FFEE ^ (i as u64) << 8);
                print!("{:>16.3} ±{:.3}", res.mean_transmissions, res.stderr);
            }
            println!();
        }
        if matches!(env, LossEnv::Independent { .. }) {
            println!("  analytical checks at R = 4096:");
            let pop = Population::homogeneous(p, 4096);
            println!(
                "    no-FEC     E[M] = {:.3}",
                nofec::expected_transmissions(&pop)
            );
            println!(
                "    layered    E[M] = {:.3}",
                layered::expected_transmissions(k, 1, &pop)
            );
            println!(
                "    integrated E[M] = {:.3}  (Eq. 6 lower bound)",
                integrated::lower_bound(k, 0, &pop)
            );
        }
    }
    println!("\nReadings to verify against the paper:");
    println!(" * independent loss: integrated < layered < no-FEC for large R (Fig. 5)");
    println!(
        " * shared loss: every scheme needs fewer transmissions; FEC's edge shrinks (Figs. 11-12)"
    );
    println!(" * burst loss: layered(7+1) is WORSE than no-FEC; integrated2 beats integrated1 (Figs. 15-16)");
}
