//! Compare the four recovery schemes of the paper under three loss
//! environments — a compact, runnable tour of Sections 3 and 4.
//!
//! For each environment (independent, shared full-binary-tree, Markov
//! burst) the example simulates no-FEC ARQ, layered FEC, and both
//! integrated FEC variants across receiver populations, printing E[M] —
//! the expected transmissions per data packet with its 95% confidence
//! half-width — plus the analytical values where the paper has closed
//! forms.
//!
//! Trials fan out across a worker pool by default (results are
//! bit-identical to a serial run at any worker count); each environment
//! sweep reports its wall-clock time.
//!
//! ```sh
//! cargo run --release --example loss_recovery_sim [-- --trials 2000]
//!     [--jobs 4]             # worker threads (default: all cores)
//!     [--serial]             # force single-threaded execution
//!     [--trace runs.jsonl]   # one sim_run JSONL event per simulation
//!     [--metrics]            # dump the run census to stderr at exit
//! ```

use std::sync::Arc;
use std::time::Instant;

use parity_multicast::analysis::{integrated, layered, nofec, Population};
use parity_multicast::obs::{JsonlRecorder, MetricsRegistry, Obs, Stopwatch};
use parity_multicast::par::Pool;
use parity_multicast::sim::runner::{run_env_par_traced, LossEnv, Scheme};
use parity_multicast::sim::SimConfig;

struct Options {
    trials: usize,
    jobs: Option<usize>,
    serial: bool,
    trace: Option<String>,
    metrics: bool,
}

fn parse_options() -> Options {
    let mut opts = Options {
        trials: 1500,
        jobs: None,
        serial: false,
        trace: None,
        metrics: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--trials" => {
                opts.trials = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--trials takes a positive integer");
            }
            "--jobs" => {
                opts.jobs = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .expect("--jobs takes a positive integer"),
                );
            }
            "--serial" => opts.serial = true,
            "--trace" => {
                opts.trace = Some(it.next().expect("--trace takes a file path"));
            }
            "--metrics" => opts.metrics = true,
            other => {
                panic!("unknown flag {other:?} (try --trials/--jobs/--serial/--trace/--metrics)")
            }
        }
    }
    opts
}

fn main() {
    let opts = parse_options();
    let pool = if opts.serial {
        Pool::serial()
    } else {
        match opts.jobs {
            Some(n) => Pool::new(n),
            None => Pool::auto(),
        }
    };
    let trace_rec = opts
        .trace
        .as_deref()
        .map(|path| Arc::new(JsonlRecorder::create(path).expect("cannot open trace file")));
    let obs = match &trace_rec {
        Some(rec) => Obs::new(rec.clone()),
        None => Obs::null(),
    };
    let clock = Stopwatch::start();
    let registry = MetricsRegistry::new();
    let runs = registry.counter("sim.runs");

    let trials = opts.trials;
    let cfg = SimConfig::paper_timing(trials);
    let p = 0.01;
    let k = 7;
    let schemes = [
        Scheme::NoFec,
        Scheme::Layered { k, h: 1 },
        Scheme::Integrated1 { k },
        Scheme::Integrated2 { k },
    ];
    let envs = [
        ("independent loss (Section 3)", LossEnv::Independent { p }),
        (
            "shared FBT loss (Section 4.1)",
            LossEnv::FullBinaryTree { p },
        ),
        (
            "burst loss b=2 (Section 4.2)",
            LossEnv::Burst { p, mean_burst: 2.0 },
        ),
    ];
    let populations = [1usize, 16, 256, 4096];

    println!(
        "worker pool: {} thread{}",
        pool.workers(),
        if pool.workers() == 1 { "" } else { "s" }
    );
    for (name, env) in envs {
        let sweep_start = Instant::now();
        println!("\n=== {name}, p = {p}, k = {k}, {trials} trials");
        print!("{:>8}", "R");
        for s in &schemes {
            print!("{:>22}", s.label());
        }
        println!();
        for &r in &populations {
            print!("{r:>8}");
            for (i, &s) in schemes.iter().enumerate() {
                let res = run_env_par_traced(
                    &cfg,
                    s,
                    env,
                    r,
                    0xC0FFEE ^ (i as u64) << 8,
                    &pool,
                    &obs,
                    clock.now(),
                );
                runs.inc();
                print!("{:>16.3} ±{:.3}", res.mean_transmissions, res.ci95);
            }
            println!();
        }
        println!(
            "  sweep wall-clock: {:.2}s",
            sweep_start.elapsed().as_secs_f64()
        );
        if matches!(env, LossEnv::Independent { .. }) {
            println!("  analytical checks at R = 4096:");
            let pop = Population::homogeneous(p, 4096);
            println!(
                "    no-FEC     E[M] = {:.3}",
                nofec::expected_transmissions(&pop)
            );
            println!(
                "    layered    E[M] = {:.3}",
                layered::expected_transmissions(k, 1, &pop)
            );
            println!(
                "    integrated E[M] = {:.3}  (Eq. 6 lower bound)",
                integrated::lower_bound(k, 0, &pop)
            );
        }
    }
    println!("\nReadings to verify against the paper:");
    println!(" * independent loss: integrated < layered < no-FEC for large R (Fig. 5)");
    println!(
        " * shared loss: every scheme needs fewer transmissions; FEC's edge shrinks (Figs. 11-12)"
    );
    println!(" * burst loss: layered(7+1) is WORSE than no-FEC; integrated2 beats integrated1 (Figs. 15-16)");

    if opts.metrics {
        eprintln!("\n{}", registry.render_text());
    }
    if let Some(rec) = &trace_rec {
        rec.flush();
        eprintln!("trace written to {}", opts.trace.as_deref().unwrap());
    }
}
