//! Quickstart: erasure-code a transmission group, lose packets, recover —
//! then do the same through the full NP protocol on an in-memory multicast
//! group.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::time::Duration;

use parity_multicast::net::{FaultConfig, FaultyTransport, MemHub};
use parity_multicast::protocol::runtime::{drive_receiver, drive_sender, RuntimeConfig};
use parity_multicast::protocol::{CompletionPolicy, NpConfig, NpReceiver, NpSender};
use parity_multicast::rse::{CodeSpec, RseDecoder, RseEncoder};

fn codec_demo() {
    println!("== 1. Raw RSE codec (Section 2 of the paper)");
    // A transmission group of k = 7 packets protected by h = 3 parities.
    let spec = CodeSpec::new(7, 3).expect("7 + 3 <= 255");
    let encoder = RseEncoder::new(spec).expect("valid spec");
    let decoder = RseDecoder::from_encoder(&encoder);

    let group: Vec<Vec<u8>> = (0..7)
        .map(|i| format!("data packet {i} ~~~~~~~~~~~~~~~").into_bytes())
        .collect();
    let parities = encoder.encode_all(&group).expect("equal-size packets");
    println!(
        "   encoded {} parities for k = {} data packets",
        parities.len(),
        spec.k()
    );

    // The network eats packets 0, 3 and 6 — the worst the code tolerates.
    let mut shares: Vec<(usize, &[u8])> = group
        .iter()
        .enumerate()
        .filter(|(i, _)| ![0usize, 3, 6].contains(i))
        .map(|(i, d)| (i, d.as_slice()))
        .collect();
    for (j, p) in parities.iter().enumerate() {
        shares.push((7 + j, p.as_slice()));
    }
    let recovered = decoder.decode(&shares).expect("any 7 of 10 decode");
    assert_eq!(recovered, group);
    println!(
        "   lost packets 0, 3, 6 -> recovered all {} packets bit-exactly",
        recovered.len()
    );
}

fn protocol_demo() {
    println!("== 2. Protocol NP over a lossy in-memory multicast group");
    let hub = MemHub::new();
    let payload: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();

    let mut cfg = NpConfig::small(CompletionPolicy::KnownReceivers(3));
    cfg.payload_len = 1024;
    cfg.k = 7;
    let rt = RuntimeConfig {
        packet_spacing: Duration::from_micros(30),
        stall_timeout: Duration::from_secs(10),
        complete_linger: Duration::from_millis(300),
        ..RuntimeConfig::default()
    };

    let mut sender_tp = hub.join();
    let to_send = payload.clone();
    let sender_cfg = cfg.clone();
    let sender = std::thread::spawn(move || {
        let mut s = NpSender::new(99, &to_send, sender_cfg).expect("valid config");
        drive_sender(&mut s, &mut sender_tp, &rt).expect("sender completes")
    });

    // Three receivers, each independently dropping 10% of packets.
    let receivers: Vec<_> = (0..3)
        .map(|id| {
            let endpoint = hub.join();
            std::thread::spawn(move || {
                let mut tp =
                    FaultyTransport::new(endpoint, FaultConfig::drop_only(0.10), id as u64);
                let mut r = NpReceiver::new(id, 99, 0.001, id as u64);
                drive_receiver(&mut r, &mut tp, &rt).expect("receiver completes")
            })
        })
        .collect();

    let sender_report = sender.join().expect("sender thread");
    for (id, r) in receivers.into_iter().enumerate() {
        let report = r.join().expect("receiver thread");
        assert_eq!(report.data, payload, "receiver {id} data mismatch");
        println!(
            "   receiver {id}: {} bytes OK, {} pkts received, {} decoded by parity, {} unneeded",
            report.data.len(),
            report.counters.packets_received,
            report.counters.packets_decoded,
            report.counters.unneeded_receptions,
        );
    }
    let c = sender_report.counters;
    println!(
        "   sender: {} data + {} parity transmissions ({} NAKs heard) in {:?}",
        c.data_sent, c.repairs_sent, c.feedback_received, sender_report.elapsed,
    );
    println!(
        "   E[M] achieved = {:.3} transmissions per data packet",
        (c.data_sent + c.repairs_sent) as f64 / c.data_sent as f64
    );
}

fn main() {
    codec_demo();
    protocol_demo();
    println!("quickstart complete");
}
