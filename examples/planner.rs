//! FEC planning assistant: given a target receiver population, loss rate
//! and transmission-group size, report what the paper's models predict —
//! expected transmissions per packet for every scheme, feedback rounds,
//! end-host processing rates and achievable throughput — so an application
//! can pick `(k, h)` before deploying.
//!
//! ```sh
//! cargo run --example planner -- --receivers 100000 --loss 0.01 --k 20
//! cargo run --example planner -- --receivers 1000000 --loss 0.01 --k 7 --high-loss 0.01
//! ```

use parity_multicast::analysis::endhost::{n2_rates, np_rates, NpOptions};
use parity_multicast::analysis::{integrated, layered, nofec, rounds, CostModel, Population};

struct Args {
    receivers: u64,
    loss: f64,
    k: usize,
    /// Fraction of receivers in the paper's "high loss" class (p = 0.25).
    high_loss: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        receivers: 10_000,
        loss: 0.01,
        k: 20,
        high_loss: 0.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--receivers" => args.receivers = val().parse().expect("--receivers takes a count"),
            "--loss" => args.loss = val().parse().expect("--loss takes a probability"),
            "--k" => args.k = val().parse().expect("--k takes a group size"),
            "--high-loss" => args.high_loss = val().parse().expect("--high-loss takes a fraction"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn main() {
    let a = parse_args();
    let pop = if a.high_loss > 0.0 {
        Population::two_class(a.receivers, a.high_loss, a.loss, 0.25)
    } else {
        Population::homogeneous(a.loss, a.receivers)
    };
    println!(
        "plan for R = {} receivers, p = {}{}, k = {}",
        a.receivers,
        a.loss,
        if a.high_loss > 0.0 {
            format!(" (+{}% high-loss @ 0.25)", a.high_loss * 100.0)
        } else {
            String::new()
        },
        a.k
    );

    println!("\n-- network cost: E[M], transmissions per data packet");
    let arq = nofec::expected_transmissions(&pop);
    println!("   no FEC (pure ARQ)            {arq:>8.3}");
    for h in [1usize, 2, 3, 5, 7] {
        let m = layered::expected_transmissions(a.k, h, &pop);
        println!("   layered FEC h = {h}            {m:>8.3}");
    }
    let bound = integrated::lower_bound(a.k, 0, &pop);
    println!("   integrated FEC (bound)       {bound:>8.3}");
    for h in [1usize, 2, 3, 5] {
        let m = integrated::finite(a.k, h, 0, &pop);
        let tag = if (m - bound) / bound < 0.02 {
            "  <- at the bound"
        } else {
            ""
        };
        println!("   integrated FEC h = {h}         {m:>8.3}{tag}");
    }
    println!(
        "   bandwidth saving vs ARQ:     {:>7.1}%  (integrated bound)",
        (1.0 - bound / arq) * 100.0
    );

    // Homogeneous-only metrics (the round/throughput models take scalar p).
    if a.high_loss == 0.0 {
        println!("\n-- feedback: expected transmission rounds per group");
        println!("   E[T]  = {:.3}", rounds::expected_rounds(a.k, &pop));
        println!(
            "   E[Tr] = {:.3} (single receiver)",
            rounds::receiver_expected_rounds(a.k, a.loss)
        );

        println!("\n-- end-host processing (paper cost table, 2KB packets)");
        let cost = CostModel::paper_defaults();
        let n2 = n2_rates(a.loss, a.receivers, &cost);
        let np = np_rates(a.k, a.loss, a.receivers, &cost, NpOptions::default());
        let np_pre = np_rates(
            a.k,
            a.loss,
            a.receivers,
            &cost,
            NpOptions {
                preencode: true,
                ..Default::default()
            },
        );
        println!("   protocol   sender[pkt/ms]  receiver[pkt/ms]  throughput[pkt/ms]");
        for (name, r) in [("N2", n2), ("NP", np), ("NP preenc", np_pre)] {
            println!(
                "   {name:<10} {:>13.3} {:>17.3} {:>19.3}",
                r.sender / 1e3,
                r.receiver / 1e3,
                r.throughput() / 1e3
            );
        }
        println!(
            "   NP pre-encode vs N2 throughput: {:.2}x",
            np_pre.throughput() / n2.throughput()
        );
    }

    println!("\n-- recommendation");
    let three_parity = integrated::finite(a.k, 3, 0, &pop);
    if (three_parity - bound) / bound < 0.02 {
        println!(
            "   integrated FEC with h = 3 on-demand parities already sits on the lower bound;"
        );
        println!("   budget 3 parities per group of k = {} and pre-encode if the sender CPU is the bottleneck.", a.k);
    } else {
        println!(
            "   population is large/lossy enough that h = 3 is not at the bound; size h so that"
        );
        println!("   integrated::finite(k, h) approaches {bound:.3}, or enlarge k — E[M] falls with k (Fig. 7).");
    }
}
